"""Ablation benchmarks: isolate each mechanism the paper credits.

Not figures from the paper — these quantify the design choices its text
discusses: the Accelerated window setting (§IV-A), the token priority
method (§III-D/E), the role of switch buffering (§I), and jumbo frames
(§IV-B).
"""

from repro.bench.ablations import (
    accelerated_window_sweep,
    jumbo_frame_comparison,
    priority_method_comparison,
    switch_buffer_sweep,
)
from repro.bench.runner import run_figure


def test_ablation_accelerated_window(benchmark):
    title, series = run_figure(benchmark, accelerated_window_sweep, "ablation_window.txt")
    latencies = {name: points[0].latency_us for name, points in series.items()}
    ordered = [latencies[name] for name in sorted(latencies, key=lambda n: int(n.split("=")[1].split("/")[0]))]
    # more acceleration never hurts at this operating point, and the full
    # window beats the original protocol by a wide margin
    assert ordered[-1] < ordered[0] * 0.6


def test_ablation_priority_method(benchmark):
    title, series = run_figure(benchmark, priority_method_comparison, "ablation_priority.txt")
    aggressive = series["aggressive"]
    post_token = series["post_token"]
    # both sustain the offered load; the aggressive method is at least as
    # fast at every rate (it is the prototypes' default for a reason)
    for fast, safe in zip(aggressive, post_token):
        assert fast.latency_us <= safe.latency_us * 1.15


def test_ablation_switch_buffering(benchmark):
    title, series = run_figure(benchmark, switch_buffer_sweep, "ablation_buffers.txt")
    deep_accel = series["accel-256KiB"][0]
    shallow_accel = series["accel-4KiB"][0]
    # shallow buffers force drops/retransmissions on the overlapped bursts
    assert shallow_accel.retransmissions > deep_accel.retransmissions
    # and erode the accelerated protocol's saturation throughput
    assert shallow_accel.goodput_mbps < deep_accel.goodput_mbps * 0.85
    # with deep buffers the accelerated protocol beats the original
    deep_orig = series["orig-256KiB"][0]
    assert deep_accel.goodput_mbps > deep_orig.goodput_mbps


def test_ablation_jumbo_frames(benchmark):
    title, series = run_figure(benchmark, jumbo_frame_comparison, "ablation_jumbo.txt")
    fragmented = series["mtu1500-fragmented"][0]
    jumbo = series["mtu9000-jumbo"][0]
    # jumbo frames avoid per-fragment overheads: at least as much goodput
    assert jumbo.goodput_mbps >= fragmented.goodput_mbps * 0.98
