"""Figure 1: the example execution schedule.

Three participants send a total of twenty messages with Personal
window 5 and Accelerated window 3.  The paper's figure shows the
original protocol emitting ``1 2 3 4 5 [token]`` per participant while
the accelerated protocol emits ``1 2 [token] 3 4 5`` — the token carries
exactly the same sequence numbers in both.
"""

from repro.bench.report import format_table, save_results
from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.cluster import build_cluster
from repro.sim.profiles import LIBRARY
from repro.sim.trace import ScheduleTrace


def _run_schedule(accelerated: bool):
    config = ProtocolConfig(
        personal_window=5,
        accelerated_window=3 if accelerated else 0,
        global_window=100,
    )
    cluster = build_cluster(
        num_hosts=3,
        accelerated=accelerated,
        profile=LIBRARY,
        params=GIGABIT,
        config=config,
    )
    trace = ScheduleTrace()
    trace.attach(cluster)
    # Participant A sends twice (rounds 1 and 2); B and C once each.
    submissions = {0: 10, 1: 5, 2: 5}
    for pid, count in submissions.items():
        for _ in range(count):
            cluster.driver(pid).client_submit(payload_size=1350)
    cluster.start()
    cluster.run(0.01)
    return trace


def test_fig01_schedule(benchmark):
    traces = benchmark.pedantic(
        lambda: (_run_schedule(False), _run_schedule(True)), rounds=1, iterations=1
    )
    original, accelerated = traces
    rows = []
    for pid in range(3):
        rows.append(
            [
                f"participant {pid}",
                " ".join(original.sequence_of(pid)[:8]),
                " ".join(accelerated.sequence_of(pid)[:8]),
            ]
        )
    text = format_table(
        "Fig 1: transmit schedules (T<n> = token carrying seq n)",
        ["participant", "original", "accelerated"],
        rows,
    )
    save_results("fig01.txt", text)
    print("\n" + text)

    # The paper's defining property: in the original protocol every data
    # message precedes the token; accelerated sends 3 of 5 after it.
    orig_a = original.sequence_of(0)
    accel_a = accelerated.sequence_of(0)
    assert orig_a[:6] == ["1", "2", "3", "4", "5", "T5"]
    assert accel_a[:6] == ["1", "2", "T5", "3", "4", "5"]
    # Token sequence numbers are identical in both protocols.
    orig_tokens = [e.seq for e in original.events if e.kind == "token"]
    accel_tokens = [e.seq for e in accelerated.events if e.kind == "token"]
    assert orig_tokens[:6] == accel_tokens[:6]
