"""Fig. 2: Agreed delivery latency vs. throughput on the 1 GbE fabric, all three implementations, original vs accelerated.

Regenerates the series of the paper's Figure 2; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig02_agreed_1g
from repro.bench.runner import run_figure


def test_fig02_agreed_1g(benchmark):
    title, series = run_figure(benchmark, fig02_agreed_1g, "fig02.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
