"""Fig. 3: Safe delivery latency vs. throughput on the 1 GbE fabric.

Regenerates the series of the paper's Figure 3; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig03_safe_1g
from repro.bench.runner import run_figure


def test_fig03_safe_1g(benchmark):
    title, series = run_figure(benchmark, fig03_safe_1g, "fig03.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
