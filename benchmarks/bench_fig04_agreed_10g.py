"""Fig. 4: Agreed delivery latency vs. throughput on the 10 GbE fabric.

Regenerates the series of the paper's Figure 4; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig04_agreed_10g
from repro.bench.runner import run_figure


def test_fig04_agreed_10g(benchmark):
    title, series = run_figure(benchmark, fig04_agreed_10g, "fig04.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
