"""Fig. 5: Agreed delivery latency for 1350-byte vs 8850-byte payloads, 10 GbE, accelerated protocol.

Regenerates the series of the paper's Figure 5; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig05_agreed_payload_10g
from repro.bench.runner import run_figure


def test_fig05_agreed_payload_10g(benchmark):
    title, series = run_figure(benchmark, fig05_agreed_payload_10g, "fig05.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
