"""Fig. 6: Safe delivery latency vs. throughput on the 10 GbE fabric.

Regenerates the series of the paper's Figure 6; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig06_safe_10g
from repro.bench.runner import run_figure


def test_fig06_safe_10g(benchmark):
    title, series = run_figure(benchmark, fig06_safe_10g, "fig06.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
