"""Fig. 8: Safe delivery latency at low throughputs on 10 GbE - the regime where the original protocol beats the accelerated one (extra aru round).

Regenerates the series of the paper's Figure 8; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig08_safe_low_10g
from repro.bench.runner import run_figure


def test_fig08_safe_low_10g(benchmark):
    title, series = run_figure(benchmark, fig08_safe_low_10g, "fig08.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
