"""Fig. 9: Latency vs per-daemon loss rate at 480 Mbps goodput on 10 GbE (mean and worst-5%).

Regenerates the series of the paper's Figure 9; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig09_loss_480_10g
from repro.bench.runner import run_figure


def test_fig09_loss_480_10g(benchmark):
    title, series = run_figure(benchmark, fig09_loss_480_10g, "fig09.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
