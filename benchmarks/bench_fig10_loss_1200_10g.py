"""Fig. 10: Latency vs loss at 1200 Mbps goodput on 10 GbE.

Regenerates the series of the paper's Figure 10; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig10_loss_1200_10g
from repro.bench.runner import run_figure


def test_fig10_loss_1200_10g(benchmark):
    title, series = run_figure(benchmark, fig10_loss_1200_10g, "fig10.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
