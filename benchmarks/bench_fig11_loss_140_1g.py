"""Fig. 11: Latency vs loss at 140 Mbps goodput on 1 GbE.

Regenerates the series of the paper's Figure 11; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig11_loss_140_1g
from repro.bench.runner import run_figure


def test_fig11_loss_140_1g(benchmark):
    title, series = run_figure(benchmark, fig11_loss_140_1g, "fig11.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
