"""Fig. 12: Latency vs loss at 350 Mbps goodput on 1 GbE.

Regenerates the series of the paper's Figure 12; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig12_loss_350_1g
from repro.bench.runner import run_figure


def test_fig12_loss_350_1g(benchmark):
    title, series = run_figure(benchmark, fig12_loss_350_1g, "fig12.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
