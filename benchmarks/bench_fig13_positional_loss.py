"""Fig. 13: Latency vs ring distance between the losing daemon and its source (20% positional loss).

Regenerates the series of the paper's Figure 13; the simulation is
deterministic, so the benchmark runs one round.  Results are saved under
benchmarks/results/.
"""

from repro.bench.figures import fig13_positional_loss
from repro.bench.runner import run_figure


def test_fig13_positional_loss(benchmark):
    title, series = run_figure(benchmark, fig13_positional_loss, "fig13.txt")
    for name, points in series.items():
        assert points, f"empty series {name}"
        assert all(p.latency_us > 0 for p in points)
