"""Headline numbers of the paper's abstract and Section IV.

Maximum goodput per implementation, protocol, fabric, and payload size,
measured with closed-loop senders: the counterpart of "Spread reaches
over 920 Mbps on 1 GbE", "the daemon- and library-based prototypes reach
3.3 and 4.6 Gbps", and "with 8850-byte payloads, throughput reaches
5.2 / 6 / 7.3 Gbps".
"""

from repro.bench.figures import headline_max_throughput
from repro.bench.runner import run_figure


def test_headline_max_throughput(benchmark):
    title, series = run_figure(benchmark, headline_max_throughput, "headline.txt")
    best = {name: points[0].goodput_mbps for name, points in series.items()}
    # Accelerated beats original on every implementation and fabric.
    for net in ("1g", "10g"):
        for impl in ("library", "daemon", "spread"):
            assert best[f"{net}-{impl}-accel"] > best[f"{net}-{impl}-orig"]
    # The implementation hierarchy on 10 GbE: library > daemon > spread.
    assert best["10g-library-accel"] > best["10g-daemon-accel"] > best["10g-spread-accel"]
    # Large payloads raise maximum throughput substantially.
    for impl in ("library", "daemon", "spread"):
        assert best[f"10g-{impl}-accel-8850B"] > best[f"10g-{impl}-accel"] * 1.2
