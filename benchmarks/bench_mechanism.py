"""Mechanism benchmark: token rotation time and dead air (paper §III-A).

Quantifies the causal chain behind every figure: the accelerated
protocol completes token rotations faster and leaves the wire idle less,
at identical offered load.
"""

from repro.analysis import RoundAnalyzer, WireAnalyzer
from repro.bench.report import format_table, save_results
from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.cluster import build_cluster
from repro.sim.profiles import SPREAD
from repro.util.units import Mbps, seconds_to_usec
from repro.workloads.generators import FixedRateWorkload

RATES = (300, 500, 700)


def _measure(accelerated: bool, rate: float):
    config = ProtocolConfig(
        personal_window=30,
        accelerated_window=30 if accelerated else 0,
        global_window=240,
    )
    cluster = build_cluster(
        num_hosts=8, accelerated=accelerated, profile=SPREAD,
        params=GIGABIT, config=config,
    )
    rounds, wire = RoundAnalyzer(), WireAnalyzer()
    rounds.attach(cluster)
    wire.attach(cluster)
    workload = FixedRateWorkload(payload_size=1350, aggregate_rate_bps=Mbps(rate))
    workload.attach(cluster, start=0.001, stop=0.06)
    cluster.start()
    cluster.run(0.06)
    return (
        seconds_to_usec(rounds.stats().mean),
        100.0 * wire.stats(0.02, 0.06).dead_air_fraction,
    )


def test_mechanism_rounds_and_dead_air(benchmark):
    def job():
        rows = []
        for rate in RATES:
            orig_round, orig_idle = _measure(False, rate)
            accel_round, accel_idle = _measure(True, rate)
            rows.append(
                [
                    f"{rate:.0f}",
                    f"{orig_round:.1f}",
                    f"{accel_round:.1f}",
                    f"{orig_idle:.1f}",
                    f"{accel_idle:.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    text = format_table(
        "Mechanism: token rotation time and dead air (Spread, 1 GbE)",
        ["rate_mbps", "round_orig_us", "round_accel_us",
         "idle_orig_%", "idle_accel_%"],
        rows,
    )
    save_results("mechanism.txt", text)
    print("\n" + text)
    for row in rows:
        assert float(row[2]) < float(row[1])  # faster rotations
        assert float(row[4]) <= float(row[3]) + 1e-9  # no more dead air
