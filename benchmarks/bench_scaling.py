"""Extension benchmark: scaling with ring size and with ring count.

The paper evaluates 8 servers (its testbed).  Token rings have an
inherent scaling trade-off — rotation time grows with the number of
participants — so this extension sweeps the ring size at a fixed
aggregate rate.  The accelerated protocol's advantage should *grow* with
ring size: every extra hop in the original protocol adds a full
"finish-multicasting, then pass" serialization, while the accelerated
token overlaps them.

The second dimension is the multi-ring layer's answer to the same
ceiling: instead of growing one ring, shard groups over N independent
rings (docs/PROTOCOL.md §11).  Saturated closed-loop senders on N rings
should order close to N× the work of one ring in the same simulated
window — measured on the deterministic metrics (``events_processed``,
aggregate ``goodput_mbps``), which the baseline gate holds bit-stable;
wall-clock cannot speed up on a single interpreter and is not asserted.
"""

from repro.bench.experiments import MEASURE, WARMUP, _run_cluster
from repro.bench.harness import SUITES, run_case
from repro.bench.report import format_table, save_results
from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.build import ClusterBuilder
from repro.sim.profiles import DAEMON
from repro.util.units import Mbps
from repro.workloads.generators import FixedRateWorkload

RING_SIZES = (2, 4, 8, 12, 16)
RATE_MBPS = 400


def _measure(num_hosts: int, accelerated: bool):
    config = ProtocolConfig(
        personal_window=30,
        accelerated_window=30 if accelerated else 0,
        global_window=30 * num_hosts,
    )
    cluster = (
        ClusterBuilder()
        .hosts(num_hosts)
        .accelerated(accelerated)
        .profile(DAEMON)
        .network(GIGABIT)
        .config(config)
        .build_ring()
    )
    workload = FixedRateWorkload(payload_size=1350,
                                 aggregate_rate_bps=Mbps(RATE_MBPS))
    return _run_cluster(cluster, workload, WARMUP, MEASURE)


def test_scaling_with_ring_size(benchmark):
    def job():
        rows = []
        for size in RING_SIZES:
            orig = _measure(size, accelerated=False)
            accel = _measure(size, accelerated=True)
            rows.append(
                [
                    f"{size}",
                    f"{orig.latency_us:.1f}",
                    f"{accel.latency_us:.1f}",
                    f"{orig.latency_us / accel.latency_us:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    text = format_table(
        f"Scaling: ring size at {RATE_MBPS} Mbps aggregate (daemon, 1 GbE)",
        ["ring_size", "orig_lat_us", "accel_lat_us", "advantage"],
        rows,
    )
    save_results("scaling.txt", text)
    print("\n" + text)
    # Latency grows with ring size for both protocols...
    orig_latencies = [float(row[1]) for row in rows]
    accel_latencies = [float(row[2]) for row in rows]
    assert orig_latencies[-1] > orig_latencies[0]
    assert accel_latencies[-1] > accel_latencies[0]
    # ...and the accelerated protocol wins at every size, by a growing
    # margin from small to large rings.
    for orig, accel in zip(orig_latencies[1:], accel_latencies[1:]):
        assert accel < orig
    assert (orig_latencies[-1] / accel_latencies[-1]) > (
        orig_latencies[0] / accel_latencies[0]
    )


def test_scaling_with_ring_count(benchmark):
    """Sharding over N rings orders near-N× the work of one ring."""

    def job():
        return {
            case.name: run_case(case, repeats=1)
            for case in SUITES["scaling"]
        }

    results = benchmark.pedantic(job, rounds=1, iterations=1)
    rows = []
    base = results["rings-1"]
    for rings in (1, 2, 4):
        result = results[f"rings-{rings}"]
        rows.append(
            [
                f"{rings}",
                f"{result.events_processed}",
                f"{result.goodput_mbps:.1f}",
                f"{result.events_processed / base.events_processed:.2f}x",
                f"{result.goodput_mbps / base.goodput_mbps:.2f}x",
            ]
        )
    text = format_table(
        "Scaling: ring count, closed-loop senders (library, 1 GbE)",
        ["rings", "events", "goodput_mbps", "event_scale", "goodput_scale"],
        rows,
    )
    save_results("scaling_rings.txt", text)
    print("\n" + text)
    events = {n: results[f"rings-{n}"].events_processed for n in (1, 2, 4)}
    goodput = {n: results[f"rings-{n}"].goodput_mbps for n in (1, 2, 4)}
    # The acceptance gate: >= 1.7x at two rings, still growing at four.
    assert events[2] >= 1.7 * events[1]
    assert goodput[2] >= 1.7 * goodput[1]
    assert events[4] > events[2]
    assert goodput[4] > goodput[2]
