"""Extension benchmark: scaling with ring size.

The paper evaluates 8 servers (its testbed).  Token rings have an
inherent scaling trade-off — rotation time grows with the number of
participants — so this extension sweeps the ring size at a fixed
aggregate rate.  The accelerated protocol's advantage should *grow* with
ring size: every extra hop in the original protocol adds a full
"finish-multicasting, then pass" serialization, while the accelerated
token overlaps them.
"""

from repro.bench.experiments import MEASURE, WARMUP, _run_cluster
from repro.bench.report import format_table, save_results
from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.cluster import build_cluster
from repro.sim.profiles import DAEMON
from repro.util.units import Mbps
from repro.workloads.generators import FixedRateWorkload

RING_SIZES = (2, 4, 8, 12, 16)
RATE_MBPS = 400


def _measure(num_hosts: int, accelerated: bool):
    config = ProtocolConfig(
        personal_window=30,
        accelerated_window=30 if accelerated else 0,
        global_window=30 * num_hosts,
    )
    cluster = build_cluster(
        num_hosts=num_hosts,
        accelerated=accelerated,
        profile=DAEMON,
        params=GIGABIT,
        config=config,
    )
    workload = FixedRateWorkload(payload_size=1350,
                                 aggregate_rate_bps=Mbps(RATE_MBPS))
    return _run_cluster(cluster, workload, WARMUP, MEASURE)


def test_scaling_with_ring_size(benchmark):
    def job():
        rows = []
        for size in RING_SIZES:
            orig = _measure(size, accelerated=False)
            accel = _measure(size, accelerated=True)
            rows.append(
                [
                    f"{size}",
                    f"{orig.latency_us:.1f}",
                    f"{accel.latency_us:.1f}",
                    f"{orig.latency_us / accel.latency_us:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(job, rounds=1, iterations=1)
    text = format_table(
        f"Scaling: ring size at {RATE_MBPS} Mbps aggregate (daemon, 1 GbE)",
        ["ring_size", "orig_lat_us", "accel_lat_us", "advantage"],
        rows,
    )
    save_results("scaling.txt", text)
    print("\n" + text)
    # Latency grows with ring size for both protocols...
    orig_latencies = [float(row[1]) for row in rows]
    accel_latencies = [float(row[2]) for row in rows]
    assert orig_latencies[-1] > orig_latencies[0]
    assert accel_latencies[-1] > accel_latencies[0]
    # ...and the accelerated protocol wins at every size, by a growing
    # margin from small to large rings.
    for orig, accel in zip(orig_latencies[1:], accel_latencies[1:]):
        assert accel < orig
    assert (orig_latencies[-1] / accel_latencies[-1]) > (
        orig_latencies[0] / accel_latencies[0]
    )
