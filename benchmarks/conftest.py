"""Benchmark-suite configuration.

The benchmarks regenerate the paper's figures; each runs its simulation
once (deterministic) under ``benchmark.pedantic``.  Rendered series are
saved to ``benchmarks/results/`` and printed (visible with ``pytest -s``).
"""
