#!/usr/bin/env python
"""Thin wrapper so the harness can run without installing the package:

    PYTHONPATH=src python benchmarks/harness.py --suite smoke --check-baseline

Equivalent to ``repro bench`` with the same arguments.
"""

import sys

from repro.bench.harness import main

if __name__ == "__main__":
    sys.exit(main())
