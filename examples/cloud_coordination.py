#!/usr/bin/env python3
"""Cloud-management coordination with groups (the Spread architecture).

A small "cloud control plane": node agents join a ``heartbeat`` group and
per-service groups; a scheduler multicasts placement decisions to the
services they affect using multi-group multicast with open-group
semantics (the scheduler is not a member of any service group, exactly
the pattern Spread's client-daemon architecture enables).  All agents see
decisions in the same total order, so there are no conflicting placements.

Runs the full stack over real loopback sockets: Spread-like daemons, unix
socket clients, group directory replicated via the total order.

Run:  python examples/cloud_coordination.py
"""

import asyncio
import os
import tempfile

from repro.core.messages import DeliveryService
from repro.runtime.transport import local_ring_addresses
from repro.spread.client_api import SpreadClient
from repro.spread.daemon import SpreadDaemon


async def main() -> None:
    peers = local_ring_addresses(range(3), base_port=32600)
    tmp = tempfile.mkdtemp(prefix="accelring-")
    daemons = [
        SpreadDaemon(pid, peers, os.path.join(tmp, f"daemon{pid}.sock"))
        for pid in range(3)
    ]
    for daemon in daemons:
        await daemon.start()
    while not all(len(d.node.members) == 3 for d in daemons):
        await asyncio.sleep(0.05)
    print("daemon ring:", daemons[0].node.members)

    # One node agent per server, plus a scheduler client at daemon 0.
    agents = [
        SpreadClient(daemons[pid].socket_path, name=f"agent{pid}")
        for pid in range(3)
    ]
    scheduler = SpreadClient(daemons[0].socket_path, name="scheduler")
    for client in agents + [scheduler]:
        await client.connect()

    # Agents join the groups for the services they host.
    await agents[0].join("svc-web")
    await agents[1].join("svc-web")
    await agents[1].join("svc-db")
    await agents[2].join("svc-db")
    view = await agents[0].wait_for_view("svc-web", 2)
    print("svc-web members:", view.members)
    view = await agents[2].wait_for_view("svc-db", 2)
    print("svc-db  members:", view.members)

    # The scheduler (not a member of anything) multicasts a decision that
    # affects both services; agreed delivery gives a single global order
    # of placement decisions across all agents.
    scheduler.multicast(
        ["svc-web", "svc-db"],
        b"placement: move shard 7 from agent1 to agent2",
        DeliveryService.AGREED,
    )
    scheduler.multicast(
        ["svc-web"],
        b"scale: svc-web +1 replica",
        DeliveryService.AGREED,
    )

    # agent1 hosts both services but receives each decision exactly once.
    decisions = await asyncio.wait_for(agents[1].receive_messages(2), 10)
    for message in decisions:
        print(f"agent1 <- {message.groups}: {message.payload.decode()}")
    assert decisions[0].payload.startswith(b"placement")

    # Losing an agent: its daemon-side disconnect leaves its groups, and
    # every remaining agent learns the new view through the same order.
    await agents[0].close()
    view = await agents[1].wait_for_view("svc-web", 1)
    print("svc-web after agent0 left:", view.members)

    for client in agents[1:] + [scheduler]:
        await client.close()
    for daemon in daemons:
        await daemon.stop()
    print("done: all placement decisions were observed in one global order.")


if __name__ == "__main__":
    asyncio.run(main())
