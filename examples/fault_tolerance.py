#!/usr/bin/env python3
"""Crashes, partitions, and merges under Extended Virtual Synchrony.

Drives the full membership algorithm in the simulated testbed through
the paper's fault model (§II: "tolerates message loss, process crashes
and recoveries, and network partitions and merges") and verifies every
EVS guarantee on the recorded delivery traces with the independent
checker.

Run:  python examples/fault_tolerance.py
"""

from repro.core.messages import DeliveryService
from repro.sim.membership_driver import MembershipCluster


def show(cluster: MembershipCluster, label: str) -> None:
    rings = cluster.rings()
    unique = sorted(set(rings.values()))
    print(f"{label:28s} rings: {unique}")


def main() -> None:
    cluster = MembershipCluster(num_hosts=5)
    cluster.start()
    cluster.run(0.08)
    show(cluster, "boot")

    # Normal traffic: a mix of Agreed and Safe messages.
    for host in cluster.hosts.values():
        for index in range(10):
            host.submit(
                payload_size=200,
                service=DeliveryService.SAFE if index % 3 == 0
                else DeliveryService.AGREED,
            )
    cluster.run(0.05)
    print(f"{'traffic':28s} delivered:",
          {p: len(h.delivered) for p, h in cluster.hosts.items()})

    # Crash one daemon: the token stops, the loss timeout fires, and the
    # survivors gather a new ring.
    cluster.crash(4)
    cluster.run(0.3)
    show(cluster, "after crash of 4")

    # Partition the survivors 2 + 2: each side forms its own ring and
    # keeps making progress (EVS is a partitionable model).
    cluster.partition({0, 1}, {2, 3})
    cluster.run(0.4)
    show(cluster, "partitioned {0,1} | {2,3}")
    cluster.hosts[0].submit(payload_size=100, service=DeliveryService.SAFE)
    cluster.hosts[2].submit(payload_size=100, service=DeliveryService.SAFE)
    cluster.run(0.1)

    # Heal: beacons reveal the foreign ring; both sides gather and merge,
    # exchanging whatever messages the other side missed.
    cluster.heal()
    cluster.run(1.0)
    show(cluster, "healed")

    cluster.hosts[3].submit(payload_size=100, service=DeliveryService.SAFE)
    cluster.run(0.2)
    print(f"{'final':28s} delivered:",
          {p: len(h.delivered) for p, h in cluster.hosts.items()})
    print(f"{'':28s} view changes:",
          {p: h.controller.view_changes for p, h in cluster.hosts.items()})

    # The independent checker validates agreed total order, safe delivery,
    # configuration agreement, virtual synchrony, and self-delivery.
    cluster.checker.check(crashed={4})
    print()
    print("EVS checker: all guarantees hold across crash, partition, and merge.")


if __name__ == "__main__":
    main()
