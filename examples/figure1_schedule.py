#!/usr/bin/env python3
"""Reproduce the paper's Figure 1: the example transmit schedule.

Three participants send twenty messages with Personal window 5 and
Accelerated window 3.  The original protocol sends all five data messages
before the token; the accelerated protocol sends two, releases the token,
then sends the remaining three — while the token carries exactly the same
sequence numbers.

Run:  python examples/figure1_schedule.py
"""

from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.cluster import build_cluster
from repro.sim.profiles import LIBRARY
from repro.sim.trace import ScheduleTrace


def run_schedule(accelerated: bool) -> ScheduleTrace:
    config = ProtocolConfig(
        personal_window=5,
        accelerated_window=3 if accelerated else 0,
        global_window=100,
    )
    cluster = build_cluster(
        num_hosts=3, accelerated=accelerated, profile=LIBRARY,
        params=GIGABIT, config=config,
    )
    trace = ScheduleTrace()
    trace.attach(cluster)
    # Participant A sends in rounds 1 and 2; B and C once each (20 total).
    for pid, count in {0: 10, 1: 5, 2: 5}.items():
        for _ in range(count):
            cluster.driver(pid).client_submit(payload_size=1350)
    cluster.start()
    cluster.run(0.01)
    return trace


def main() -> None:
    for accelerated, title in ((False, "(a) Original Ring Protocol"),
                               (True, "(b) Accelerated Ring Protocol")):
        trace = run_schedule(accelerated)
        print(title)
        for pid, label in enumerate("ABC"):
            schedule = trace.sequence_of(pid)[:8]
            cells = " ".join(f"{cell:>4s}" for cell in schedule)
            print(f"  {label}: {cells}")
        print()
    print("T<n> marks the token leaving a participant with seq field n.")
    print("Note (b): A emits '1 2 T5 3 4 5' — the token, carrying seq 5, departs")
    print("before messages 3-5 are multicast, so B starts sending 6-10 earlier.")


if __name__ == "__main__":
    main()
