#!/usr/bin/env python3
"""A miniature Figure 2/4: latency vs. throughput for both protocols.

Sweeps the injection rate on the chosen fabric and prints the latency
profile of the original and accelerated protocols side by side — the
paper's core methodology (§IV-A) in one script.

Run:  python examples/latency_profile.py [1g|10g]
"""

import sys

from repro import DAEMON, GIGABIT, TEN_GIGABIT
from repro.bench.experiments import run_point
from repro.core.messages import DeliveryService


def main() -> None:
    fabric = sys.argv[1] if len(sys.argv) > 1 else "1g"
    params = TEN_GIGABIT if fabric == "10g" else GIGABIT
    rates = (100, 300, 500, 700, 850) if fabric == "1g" else (250, 1000, 2000, 2800)
    print(f"Daemon prototype, {fabric} fabric, 1350-byte payloads, Agreed delivery")
    print()
    print(f"{'rate (Mbps)':>12s}  {'original (us)':>14s}  {'accelerated (us)':>17s}")
    for rate in rates:
        row = []
        for accelerated in (False, True):
            point = run_point(
                profile=DAEMON,
                accelerated=accelerated,
                params=params,
                rate_mbps=rate,
                service=DeliveryService.AGREED,
                warmup=0.02,
                measure=0.05,
            )
            row.append(point.latency_us)
        print(f"{rate:>12.0f}  {row[0]:>14.1f}  {row[1]:>17.1f}")
    print()
    print("The accelerated protocol's curve stays flat while the original's")
    print("climbs toward its saturation knee (paper Figs. 2 and 4).")


if __name__ == "__main__":
    main()
