#!/usr/bin/env python3
"""Quickstart: totally ordered multicast in the simulated testbed.

Builds the paper's 8-server cluster twice — once with the original Totem
Ring protocol and once with the Accelerated Ring protocol — drives the
same 300 Mbps workload through both, and prints the latency/throughput
comparison that motivates the paper.

Run:  python examples/quickstart.py
"""

from repro import build_cluster, GIGABIT, SPREAD
from repro.core.config import ProtocolConfig
from repro.core.messages import DeliveryService
from repro.util.units import Mbps, seconds_to_usec
from repro.workloads import FixedRateWorkload


def run_protocol(accelerated: bool) -> dict:
    config = ProtocolConfig(personal_window=30,
                            accelerated_window=30 if accelerated else 0,
                            global_window=240)
    cluster = build_cluster(
        num_hosts=8,
        accelerated=accelerated,
        profile=SPREAD,          # production-Spread cost model
        params=GIGABIT,          # 1-gigabit fabric
        config=config,
    )
    workload = FixedRateWorkload(
        payload_size=1350,
        aggregate_rate_bps=Mbps(300),
        service=DeliveryService.AGREED,
    )
    workload.attach(cluster, start=0.005, stop=0.15)
    cluster.set_measure_from(0.05)   # skip warm-up
    cluster.start()
    cluster.run(0.16)
    stats = cluster.aggregate()
    return {
        "goodput_mbps": stats.goodput_bps / 1e6,
        "latency_us": seconds_to_usec(stats.mean_latency),
        "token_rounds": stats.token_rounds,
    }


def main() -> None:
    print("Accelerated Ring quickstart — 8 daemons, 1 GbE, 300 Mbps, Agreed delivery")
    print()
    original = run_protocol(accelerated=False)
    accelerated = run_protocol(accelerated=True)
    print(f"{'':24s}{'original':>12s}{'accelerated':>14s}")
    for key, label in (
        ("goodput_mbps", "goodput (Mbps)"),
        ("latency_us", "mean latency (us)"),
        ("token_rounds", "token rounds"),
    ):
        print(f"{label:24s}{original[key]:>12.1f}{accelerated[key]:>14.1f}")
    improvement = 100 * (1 - accelerated["latency_us"] / original["latency_us"])
    print()
    print(f"Accelerated Ring cuts latency by {improvement:.0f}% at the same throughput —")
    print("the effect of releasing the token before the multicasts finish (paper Fig. 2).")


if __name__ == "__main__":
    main()
