#!/usr/bin/env python3
"""Replicated financial ledger over real sockets.

The paper's introduction motivates totally ordered multicast with
"maintaining consistent distributed state in systems as diverse as
financial systems, distributed storage systems, cloud management...".
This example builds the financial one: three ledger replicas apply
transfer commands in total order, so balances stay identical everywhere
— even though each replica submits commands concurrently and one replica
crashes mid-run.

Transfers use **Safe delivery**: a replica only applies (and would only
acknowledge) a transfer once every replica is known to have received it,
the property an audit trail needs.

This runs the real asyncio/UDP runtime over loopback, not the simulator.

Run:  python examples/replicated_ledger.py
"""

import asyncio
import json
from typing import Dict

from repro.core.messages import DataMessage, DeliveryService
from repro.runtime.node import RingNode
from repro.runtime.transport import local_ring_addresses


class LedgerReplica:
    """One state-machine replica: a dict of account balances."""

    def __init__(self, node: RingNode) -> None:
        self.node = node
        self.balances: Dict[str, int] = {}
        self.applied = 0
        node.on_deliver = self._apply

    def _apply(self, message: DataMessage, config_id: int) -> None:
        command = json.loads(message.payload)
        if command["op"] == "open":
            self.balances[command["account"]] = command["amount"]
        elif command["op"] == "transfer":
            src, dst, amount = command["src"], command["dst"], command["amount"]
            # deterministic rule: reject overdrafts identically everywhere
            if self.balances.get(src, 0) >= amount:
                self.balances[src] -= amount
                self.balances[dst] = self.balances.get(dst, 0) + amount
        self.applied += 1

    def submit(self, command: dict) -> None:
        self.node.submit(
            payload=json.dumps(command).encode(),
            service=DeliveryService.SAFE,
        )


async def main() -> None:
    peers = local_ring_addresses(range(3), base_port=31800)
    replicas = [LedgerReplica(RingNode(pid, peers)) for pid in range(3)]
    for replica in replicas:
        await replica.node.start()

    # Wait for the ring to form.
    while not all(len(r.node.members) == 3 for r in replicas):
        await asyncio.sleep(0.05)
    print("ring formed:", replicas[0].node.members)

    # Seed accounts from replica 0 and wait until every replica applied them.
    for account in ("alice", "bob", "carol"):
        replicas[0].submit({"op": "open", "account": account, "amount": 1000})
    while not all(r.applied >= 3 for r in replicas):
        await asyncio.sleep(0.05)

    # Concurrent conflicting transfers from different replicas — the total
    # order decides who wins the race on alice's balance.
    replicas[0].submit({"op": "transfer", "src": "alice", "dst": "bob", "amount": 800})
    replicas[1].submit({"op": "transfer", "src": "alice", "dst": "carol", "amount": 800})
    replicas[2].submit({"op": "transfer", "src": "bob", "dst": "carol", "amount": 100})

    while not all(r.applied >= 6 for r in replicas):
        await asyncio.sleep(0.05)

    print("balances per replica:")
    for index, replica in enumerate(replicas):
        print(f"  replica {index}: {dict(sorted(replica.balances.items()))}")
    assert replicas[0].balances == replicas[1].balances == replicas[2].balances
    print("replicas agree: exactly one of the conflicting 800-transfers applied.")

    # Crash replica 2; the survivors keep processing.
    await replicas[2].node.stop()
    while not all(r.node.members == (0, 1) for r in replicas[:2]):
        await asyncio.sleep(0.05)
    print("replica 2 crashed; ring reformed:", replicas[0].node.members)

    replicas[1].submit({"op": "transfer", "src": "carol", "dst": "alice", "amount": 50})
    while not all(r.applied >= 7 for r in replicas[:2]):
        await asyncio.sleep(0.05)
    assert replicas[0].balances == replicas[1].balances
    print("post-crash transfer applied consistently:",
          dict(sorted(replicas[0].balances.items())))

    for replica in replicas[:2]:
        await replica.node.stop()


if __name__ == "__main__":
    asyncio.run(main())
