#!/usr/bin/env python3
"""Anatomy of a token round: why the accelerated protocol wins.

Instruments the simulated cluster with the analysis package and prints
the mechanism quantities behind the paper's §III-A argument, side by
side for both protocols at the same offered load:

* token rotation time (the accelerated token comes back sooner),
* dead-air fraction (periods in which nobody is sending shrink),
* single-core CPU utilization (the budget the paper insists on).

Run:  python examples/round_anatomy.py
"""

from repro.analysis import CpuAnalyzer, RoundAnalyzer, WireAnalyzer
from repro.core.config import ProtocolConfig
from repro.net.params import GIGABIT
from repro.sim.cluster import build_cluster
from repro.sim.profiles import SPREAD
from repro.util.units import Mbps, seconds_to_usec
from repro.workloads import FixedRateWorkload

RATE_MBPS = 600
DURATION = 0.06


def measure(accelerated: bool) -> dict:
    config = ProtocolConfig(
        personal_window=30,
        accelerated_window=30 if accelerated else 0,
        global_window=240,
    )
    cluster = build_cluster(
        num_hosts=8, accelerated=accelerated, profile=SPREAD,
        params=GIGABIT, config=config,
    )
    rounds, wire, cpu = RoundAnalyzer(), WireAnalyzer(), CpuAnalyzer()
    for analyzer in (rounds, wire, cpu):
        analyzer.attach(cluster)
    workload = FixedRateWorkload(payload_size=1350,
                                 aggregate_rate_bps=Mbps(RATE_MBPS))
    workload.attach(cluster, start=0.001, stop=DURATION)
    cluster.set_measure_from(0.02)
    cluster.start()
    cluster.sim.run(until=0.02)
    cpu.mark()
    cluster.run(DURATION - 0.02)
    stats = cluster.aggregate()
    round_stats = rounds.stats()
    wire_stats = wire.stats(0.02, DURATION)
    return {
        "round_mean_us": seconds_to_usec(round_stats.mean),
        "round_p99_us": seconds_to_usec(round_stats.quantile(0.99)),
        "dead_air_pct": 100 * wire_stats.dead_air_fraction,
        "longest_gap_us": seconds_to_usec(wire_stats.longest_gap),
        "cpu_peak_pct": 100 * cpu.stats().peak,
        "latency_us": seconds_to_usec(stats.mean_latency),
    }


def main() -> None:
    print(f"Spread profile, 1 GbE, {RATE_MBPS} Mbps offered, 1350 B payloads")
    print()
    original = measure(False)
    accelerated = measure(True)
    rows = (
        ("token rotation mean (us)", "round_mean_us"),
        ("token rotation p99 (us)", "round_p99_us"),
        ("dead air (% of time)", "dead_air_pct"),
        ("longest send gap (us)", "longest_gap_us"),
        ("peak CPU (% of one core)", "cpu_peak_pct"),
        ("delivery latency (us)", "latency_us"),
    )
    print(f"{'':28s}{'original':>12s}{'accelerated':>14s}")
    for label, key in rows:
        print(f"{label:28s}{original[key]:>12.1f}{accelerated[key]:>14.1f}")
    print()
    print("Same messages, same wire — the accelerated token simply never waits")
    print("behind a participant's own multicasts (paper §III-A).")


if __name__ == "__main__":
    main()
