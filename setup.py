import setuptools; setuptools.setup()
