"""Accelerated Ring: fast total ordering for modern data centers.

This package is a full reproduction of Babay & Amir, *Fast Total Ordering
for Modern Data Centers* (ICDCS 2015).  It provides:

* :mod:`repro.core` — the Accelerated Ring ordering protocol and the
  original Totem Ring baseline, written sans-io so the same engine runs in
  the simulator and over real sockets.
* :mod:`repro.net` — a discrete-event network substrate (buffered switch,
  links, host CPU model, loss models) standing in for the paper's 1/10 GbE
  testbed.
* :mod:`repro.membership` — a Totem-style membership algorithm (gather /
  commit / recovery) supporting crashes, partitions, and merges.
* :mod:`repro.evs` — Extended Virtual Synchrony configurations and a trace
  checker for the delivery guarantees.
* :mod:`repro.sim` — drivers binding protocol engines to simulated hosts,
  plus the LIBRARY / DAEMON / SPREAD implementation profiles.
* :mod:`repro.runtime` — a real asyncio/UDP runtime (library mode and
  daemon/client mode).
* :mod:`repro.spread` — a Spread-like toolkit layer: groups, multi-group
  multicast, message packing and fragmentation.
* :mod:`repro.workloads` / :mod:`repro.bench` — workload generators and the
  benchmark harness that regenerates every figure in the paper.
* :mod:`repro.obs` — protocol observability: observer hooks on every
  engine event, metric registries, and JSON/table exporters.
* :mod:`repro.faults` — deterministic fault injection: typed fault
  plans, a seeded injector over first-class injection points, and an
  EVS-checked chaos-scenario library (``repro chaos``).
"""

from repro.core.config import ProtocolConfig, TokenPriorityMethod
from repro.core.messages import DataMessage, DeliveryService
from repro.core.token import RegularToken
from repro.core.participant import AcceleratedRingParticipant
from repro.core.original import OriginalRingParticipant
from repro.obs.export import render_table, save_json, to_json
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import (
    CompositeObserver,
    MetricsObserver,
    NullObserver,
    ProtocolObserver,
)
from repro.faults import FaultInjector, FaultPlan, PlanBuilder, run_scenario
from repro.sim.cluster import RingCluster, build_cluster
from repro.sim.profiles import ImplementationProfile, LIBRARY, DAEMON, SPREAD
from repro.net.params import NetworkParams, GIGABIT, TEN_GIGABIT

__version__ = "1.0.0"

__all__ = [
    "ProtocolConfig",
    "TokenPriorityMethod",
    "DataMessage",
    "DeliveryService",
    "RegularToken",
    "AcceleratedRingParticipant",
    "OriginalRingParticipant",
    "RingCluster",
    "build_cluster",
    "ImplementationProfile",
    "LIBRARY",
    "DAEMON",
    "SPREAD",
    "NetworkParams",
    "GIGABIT",
    "TEN_GIGABIT",
    "ProtocolObserver",
    "NullObserver",
    "CompositeObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "to_json",
    "save_json",
    "render_table",
    "FaultInjector",
    "FaultPlan",
    "PlanBuilder",
    "run_scenario",
    "__version__",
]
