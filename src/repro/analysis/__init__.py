"""Trace analysis: measuring the mechanisms behind the numbers.

The paper explains *why* the Accelerated Ring protocol wins (§III-A):
the token completes each rotation sooner, and the periods in which no
participant is sending ("dead air") shrink or disappear.  This package
instruments a simulated cluster and extracts those quantities directly:

* :class:`RoundAnalyzer` — per-rotation token round times;
* :class:`WireAnalyzer` — wire busy/idle periods and dead-air fraction;
* :class:`CpuAnalyzer` — per-host CPU utilization (the paper's
  single-core budget).
"""

from repro.analysis.rounds import RoundAnalyzer, RoundStats
from repro.analysis.wire import WireAnalyzer, WireStats
from repro.analysis.cpu import CpuAnalyzer, CpuStats

__all__ = [
    "RoundAnalyzer",
    "RoundStats",
    "WireAnalyzer",
    "WireStats",
    "CpuAnalyzer",
    "CpuStats",
]
