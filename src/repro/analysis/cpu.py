"""Per-host CPU utilization.

The paper stresses that the implementations are single-threaded and must
not consume "the CPU of more than a single core" (§I).  The simulated
hosts account CPU busy-time exactly, so utilization is a direct readout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.cluster import RingCluster


@dataclass
class CpuStats:
    """Per-host CPU busy fractions over the run so far."""

    utilization: Dict[int, float]

    @property
    def peak(self) -> float:
        return max(self.utilization.values())

    @property
    def mean(self) -> float:
        values = list(self.utilization.values())
        return sum(values) / len(values)


class CpuAnalyzer:
    """Samples cumulative CPU busy-time against elapsed simulation time."""

    def __init__(self) -> None:
        self._cluster = None
        self._t0 = 0.0
        self._busy0: Dict[int, float] = {}

    def attach(self, cluster: RingCluster) -> None:
        self._cluster = cluster
        self.mark()

    def mark(self) -> None:
        """Start (or restart) the measurement window now."""
        assert self._cluster is not None
        self._t0 = self._cluster.sim.now
        self._busy0 = {
            pid: driver.host.cpu.busy_time
            for pid, driver in self._cluster.drivers.items()
        }

    def stats(self) -> CpuStats:
        assert self._cluster is not None
        elapsed = self._cluster.sim.now - self._t0
        if elapsed <= 0:
            raise ValueError("no time has elapsed since mark()")
        return CpuStats(
            utilization={
                pid: (driver.host.cpu.busy_time - self._busy0.get(pid, 0.0)) / elapsed
                for pid, driver in self._cluster.drivers.items()
            }
        )
