"""Token rotation timing.

Paper §III-A: "the accelerated protocol takes less time to complete a
token round than the original protocol ... improves throughput by
sending the same 15 messages in less time and improves latency by
getting the token back to Participant A faster."  The
:class:`RoundAnalyzer` observes the token leaving a reference host and
reports the rotation-time distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.token import RegularToken
from repro.net.packet import Frame, PortKind
from repro.sim.cluster import RingCluster
from repro.util.stats import percentile


@dataclass
class RoundStats:
    """Distribution of token rotation times (seconds)."""

    rotation_times: List[float]

    @property
    def count(self) -> int:
        return len(self.rotation_times)

    @property
    def mean(self) -> float:
        if not self.rotation_times:
            raise ValueError("no completed rotations observed")
        return sum(self.rotation_times) / len(self.rotation_times)

    def quantile(self, fraction: float) -> float:
        return percentile(self.rotation_times, fraction)


class RoundAnalyzer:
    """Measures the time between successive token departures from one
    reference host (one full rotation each)."""

    def __init__(self, reference_pid: int = 0, skip_first: int = 3) -> None:
        self.reference_pid = reference_pid
        self.skip_first = skip_first
        self._departures: List[float] = []
        self._chained = None

    def attach(self, cluster: RingCluster) -> None:
        driver = cluster.driver(self.reference_pid)
        previous_hook = driver.on_transmit
        sim = cluster.sim

        def hook(frame: Frame) -> None:
            if previous_hook is not None:
                previous_hook(frame)
            if frame.kind is PortKind.TOKEN and isinstance(frame.payload, RegularToken):
                self._departures.append(sim.now)

        driver.on_transmit = hook

    def stats(self) -> RoundStats:
        """Rotation times, excluding the warm-up rotations."""
        departures = self._departures[self.skip_first :]
        times = [
            later - earlier
            for earlier, later in zip(departures, departures[1:])
        ]
        return RoundStats(rotation_times=times)
