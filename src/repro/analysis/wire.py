"""Wire occupancy and dead air.

Paper §I/§III-A: in a standard token-based protocol "no new messages can
be sent from the time that one participant finishes multicasting to the
time that the next participant receives the token, processes it, and
begins sending new messages" — dead air.  The accelerated protocol
"reduces or eliminates periods in which no participant is sending".

The :class:`WireAnalyzer` watches every data-frame transmission start
and end (at the sending NICs) and computes the fraction of the
measurement window during which *no* participant was putting data on the
wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.net.packet import Frame, PortKind
from repro.sim.cluster import RingCluster


@dataclass
class WireStats:
    """Aggregate wire-activity measurements over a window."""

    window: float
    busy_time: float
    idle_time: float
    idle_gaps: List[float]

    @property
    def dead_air_fraction(self) -> float:
        if self.window <= 0:
            raise ValueError("empty measurement window")
        return self.idle_time / self.window

    @property
    def longest_gap(self) -> float:
        return max(self.idle_gaps) if self.idle_gaps else 0.0


class WireAnalyzer:
    """Tracks intervals during which at least one NIC is sending data."""

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        self._cluster = None

    def attach(self, cluster: RingCluster) -> None:
        self._cluster = cluster
        for pid, driver in cluster.drivers.items():
            previous_hook = driver.on_transmit
            params = cluster.topology.params

            def hook(frame: Frame, _prev=previous_hook, _params=params) -> None:
                if _prev is not None:
                    _prev(frame)
                if frame.kind is PortKind.DATA:
                    start = cluster.sim.now
                    end = start + _params.serialization_delay(frame.size)
                    self._intervals.append((start, end))

            driver.on_transmit = hook

    def stats(self, start: float, stop: float) -> WireStats:
        """Busy/idle accounting over ``[start, stop]``.

        Transmission intervals are approximate (hook time to hook time
        plus serialization) but the bias is identical for both protocols,
        so the comparison is fair.
        """
        if stop <= start:
            raise ValueError("stop must exceed start")
        window = [
            (max(s, start), min(e, stop))
            for s, e in self._intervals
            if e > start and s < stop
        ]
        window.sort()
        busy = 0.0
        gaps: List[float] = []
        cursor = start
        for s, e in window:
            if s > cursor:
                gaps.append(s - cursor)
            busy += max(0.0, e - max(s, cursor))
            cursor = max(cursor, e)
        if cursor < stop:
            gaps.append(stop - cursor)
        total = stop - start
        return WireStats(
            window=total,
            busy_time=busy,
            idle_time=total - busy,
            idle_gaps=gaps,
        )
