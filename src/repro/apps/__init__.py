"""Replicated applications consuming the totally ordered stream.

Total order exists to serve state-machine replication: every subsystem
below this package *produces* an Agreed/Safe delivery stream; the
modules here *consume* one.  Each application is a deterministic state
machine — identical replicas applying the identical per-group order —
plus the durability and recovery machinery a real service needs (WAL,
snapshots, state transfer composed with EVS configuration changes).

Current applications:

* :mod:`repro.apps.kv` — a partitioned, durable key-value /
  transaction store with crash recovery and a linearizability checker.
"""
