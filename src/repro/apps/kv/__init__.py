"""``repro.apps.kv`` — a durable replicated KV store on the ordered stream.

The store is a textbook state-machine-replication application over the
Accelerated Ring stack (docs/PROTOCOL.md §13):

* **Commands** (:mod:`~repro.apps.kv.commands`) — GET/PUT/DELETE/CAS
  and atomic multi-op transactions, encoded as the payloads of ordered
  messages.
* **Store** (:mod:`~repro.apps.kv.store`) — the deterministic state
  machine every replica applies, with idempotence watermarks and a
  byte-stable state digest for convergence checking.
* **WAL + snapshots** (:mod:`~repro.apps.kv.wal`,
  :mod:`~repro.apps.kv.snapshot`) — redo logging in the
  append-before-apply discipline, periodic compaction, torn-tail-safe
  recovery.
* **Replica + cluster** (:mod:`~repro.apps.kv.replica`,
  :mod:`~repro.apps.kv.cluster`) — replicas applying the per-ring
  delivery stream of a :class:`~repro.multiring.cluster.
  MultiRingCluster`, primary-component semantics under partitions, and
  crash recovery that composes local WAL replay with peer state
  transfer at EVS configuration changes.
* **Checker** (:mod:`~repro.apps.kv.checker`) — a per-partition
  linearizability checker over client-observed histories.
* **Chaos + bench** (:mod:`~repro.apps.kv.chaos`,
  :mod:`~repro.apps.kv.bench`) — seeded fault scenarios (including
  crash-between-WAL-append-and-apply) with byte-identical JSON
  reports, and a skewed-workload benchmark.
"""

from repro.apps.kv.commands import (
    CAS,
    DELETE,
    GET,
    PUT,
    CommandError,
    KvCommand,
    KvResult,
    Op,
    cas,
    decode_command,
    delete,
    encode_command,
    get,
    put,
)
from repro.apps.kv.store import KvStore
from repro.apps.kv.wal import (
    FileWalStorage,
    MemoryWalStorage,
    WalRecord,
    WriteAheadLog,
)
from repro.apps.kv.snapshot import decode_snapshot, encode_snapshot
from repro.apps.kv.replica import DurableMedium, KvReplica
from repro.apps.kv.cluster import KvClient, KvCluster
from repro.apps.kv.history import History, Operation
from repro.apps.kv.checker import CheckResult, check_history, check_partition

__all__ = [
    "GET",
    "PUT",
    "DELETE",
    "CAS",
    "CommandError",
    "KvCommand",
    "KvResult",
    "Op",
    "get",
    "put",
    "delete",
    "cas",
    "encode_command",
    "decode_command",
    "KvStore",
    "WalRecord",
    "WriteAheadLog",
    "MemoryWalStorage",
    "FileWalStorage",
    "encode_snapshot",
    "decode_snapshot",
    "DurableMedium",
    "KvReplica",
    "KvClient",
    "KvCluster",
    "History",
    "Operation",
    "CheckResult",
    "check_history",
    "check_partition",
]
