"""KV benchmark suite: skewed workloads against store and cluster.

Two tiers, because the interesting costs live at different depths:

* **store tier** — commands stream straight into a :class:`~repro.apps.
  kv.store.KvStore` through the WAL append-before-apply path (no
  network, no simulator).  This is the state-machine hot path, so it
  can afford *multi-million-key* Zipfian keyspaces and hundreds of
  thousands of operations; it measures apply throughput, WAL byte
  volume, and snapshot cadence under realistic skew.
* **cluster tier** — the same workload shape driven end-to-end through
  a :class:`~repro.apps.kv.cluster.KvCluster`: ordering ring, replica
  apply, response capture.  Simulated metrics here (ops applied,
  completion counts, store digest) are deterministic per seed and
  byte-stable in the report; only wall-clock throughput varies by
  machine.

Reports follow the ``repro bench`` conventions: deterministic metrics
are exact per seed (a drift is a behavior change), wall metrics are
informational.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.apps.kv.cluster import KvCluster
from repro.apps.kv.commands import KvCommand, put
from repro.apps.kv.replica import DurableMedium
from repro.apps.kv.store import KvStore
from repro.apps.kv.wal import WalRecord, WriteAheadLog
from repro.apps.kv.snapshot import encode_snapshot
from repro.workloads.kv import DiurnalArrivals, KvOpMix, ZipfianKeys, drive_schedule

_BOOT = 0.08


@dataclass(frozen=True)
class KvBenchCase:
    """One named benchmark case."""

    name: str
    run: Callable[[int], Dict[str, Any]]
    summary: str


# ----------------------------------------------------------------------
# Store tier
# ----------------------------------------------------------------------

def _store_case(
    num_keys: int,
    operations: int,
    zipf_s: float,
    snapshot_every: int = 4096,
) -> Callable[[int], Dict[str, Any]]:
    def run(seed: int) -> Dict[str, Any]:
        keys = ZipfianKeys(num_keys=num_keys, s=zipf_s, seed=seed + 11)
        store = KvStore()
        durable = DurableMedium()
        wal = WriteAheadLog(durable.wal_storage)
        group = "kv00"
        since_snapshot = 0
        snapshots = 0
        t0 = time.perf_counter()
        for index in range(operations):
            command = KvCommand(
                client_id=index % 8,
                request_id=index // 8 + 1,
                ops=(put(keys.draw(), b"%d" % index),),
            )
            wal.append(WalRecord(group=group, command=command))
            store.apply(group, command)
            since_snapshot += 1
            if since_snapshot >= snapshot_every:
                durable.write_snapshot(encode_snapshot(store))
                wal.reset()
                since_snapshot = 0
                snapshots += 1
        wall = time.perf_counter() - t0
        return {
            "deterministic": {
                "operations": operations,
                "keyspace": num_keys,
                "zipf_s": zipf_s,
                "distinct_keys": sum(len(part) for part in store.data.values()),
                "snapshots_taken": snapshots,
                "wal_records_tail": wal.records_appended - snapshots * snapshot_every,
                "digest": store.digest(),
            },
            "wall": {
                "wall_time_s": round(wall, 4),
                "ops_per_sec": round(operations / wall, 1) if wall > 0 else 0.0,
            },
        }

    return run


# ----------------------------------------------------------------------
# Cluster tier
# ----------------------------------------------------------------------

def _cluster_case(
    rings: int,
    hosts_per_ring: int,
    partitions: int,
    num_keys: int,
    duration: float,
    peak_rate: float,
) -> Callable[[int], Dict[str, Any]]:
    def run(seed: int) -> Dict[str, Any]:
        kv = KvCluster(
            rings=rings,
            hosts_per_ring=hosts_per_ring,
            partitions=partitions,
            snapshot_every=256,
        )
        kv.start()
        kv.run(_BOOT)
        keys = ZipfianKeys(num_keys=num_keys, s=0.99, seed=seed + 21)
        arrivals = DiurnalArrivals(
            trough_rate=peak_rate / 4.0,
            peak_rate=peak_rate,
            period=duration,
            seed=seed + 22,
        )
        mix = KvOpMix(keys=keys, num_clients=hosts_per_ring, seed=seed + 23)
        base = kv.sim.now
        scheduled = drive_schedule(kv, mix.schedule(arrivals.times(duration)), base)
        t0 = time.perf_counter()
        kv.run(duration + 0.2)
        wall = time.perf_counter() - t0
        digests = kv.store_digests()
        applies = sum(
            replica.applies for replica in kv.replicas.values()
        )
        return {
            "deterministic": {
                "rings": rings,
                "hosts_per_ring": hosts_per_ring,
                "partitions": partitions,
                "ops_scheduled": scheduled,
                "ops_completed": kv.history.completed,
                "ops_incomplete": kv.history.incomplete,
                "replica_applies": applies,
                "stores_converged": kv.stores_converged(),
                "digest": {
                    str(ring): sorted(set(per.values()))[0]
                    for ring, per in sorted(digests.items())
                    if per
                },
                "sim_time": round(kv.sim.now, 9),
            },
            "wall": {
                "wall_time_s": round(wall, 4),
                "ops_per_sec": round(scheduled / wall, 1) if wall > 0 else 0.0,
            },
        }

    return run


CASES: Dict[str, KvBenchCase] = {
    case.name: case
    for case in (
        KvBenchCase(
            name="store-2m-zipf",
            run=_store_case(num_keys=2_000_000, operations=200_000, zipf_s=0.99),
            summary="200k skewed puts over a 2M-key space, WAL+snapshot path",
        ),
        KvBenchCase(
            name="store-2m-uniform",
            run=_store_case(num_keys=2_000_000, operations=200_000, zipf_s=0.0),
            summary="200k uniform puts over a 2M-key space (cold-key regime)",
        ),
        KvBenchCase(
            name="cluster-2x4",
            run=_cluster_case(
                rings=2,
                hosts_per_ring=4,
                partitions=8,
                num_keys=10_000,
                duration=0.5,
                peak_rate=800.0,
            ),
            summary="end-to-end ordered KV on 2 rings x 4 replicas",
        ),
    )
}

#: The fast subset CI runs (the kv-smoke job).
SMOKE_CASES = ("store-2m-zipf", "cluster-2x4")


def run_kv_bench(
    seed: int = 0,
    case_names: Optional[List[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the named cases (default: all) and return the report doc."""
    if case_names is None:
        case_names = sorted(CASES)
    unknown = sorted(set(case_names) - set(CASES))
    if unknown:
        raise ValueError(f"unknown bench case(s) {unknown}; have {sorted(CASES)}")
    cases: Dict[str, Any] = {}
    for name in case_names:
        if progress is not None:
            progress(f"running kv/{name}...")
        result = CASES[name].run(seed)
        cases[name] = result
        if progress is not None:
            wall = result["wall"]
            progress(
                f"  {name}: {wall['ops_per_sec']:,.0f} ops/s "
                f"({wall['wall_time_s']:.2f}s wall)"
            )
    return {"suite": "kv", "seed": seed, "cases": cases}


def to_json(report: Dict[str, Any], indent: int = 2) -> str:
    return json.dumps(report, indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Baseline gate (repro bench conventions, kv report shape)
# ----------------------------------------------------------------------

#: Allowed fractional drop in ops/sec before a wall regression (mirrors
#: the harness's REPRO_BENCH_WALL_TOL default).
WALL_TOL = 0.5

#: The committed baseline is recorded at this seed; the gate refuses to
#: compare reports recorded at any other (their deterministic metrics
#: legitimately differ).
BASELINE_SEED = 0


def baseline_path(root: Optional[Any] = None):
    """``benchmarks/baselines/BENCH_kv.json`` under ``root`` (cwd default)."""
    from pathlib import Path

    base = Path(root) if root is not None else Path(".")
    return base / "benchmarks" / "baselines" / "BENCH_kv.json"


def compare_report(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    wall_tol: float = WALL_TOL,
) -> List[str]:
    """Compare a kv report against a baseline report.

    Deterministic blocks must match exactly — they are byte-stable per
    seed, so any drift means store/ordering behavior changed.  Wall
    metrics only fail on an ops/sec drop beyond ``wall_tol``.  Returns
    human-readable regression messages; empty means within tolerance.
    """
    problems: List[str] = []
    if current.get("seed") != baseline.get("seed"):
        problems.append(
            f"seed mismatch: run has {current.get('seed')}, baseline has "
            f"{baseline.get('seed')} — deterministic metrics are per-seed"
        )
        return problems
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        expected = base.get("deterministic", {})
        actual = cur.get("deterministic", {})
        for metric in sorted(set(expected) | set(actual)):
            if expected.get(metric) != actual.get(metric):
                problems.append(
                    f"{name}: {metric} changed (baseline "
                    f"{expected.get(metric)!r}, got {actual.get(metric)!r}) — "
                    f"deterministic kv metrics must match the baseline"
                )
        expected_rate = base.get("wall", {}).get("ops_per_sec")
        if expected_rate:
            actual_rate = cur.get("wall", {}).get("ops_per_sec", 0.0)
            floor = expected_rate * (1.0 - wall_tol)
            if actual_rate < floor:
                problems.append(
                    f"{name}: ops_per_sec regressed to {actual_rate:,.0f} "
                    f"(baseline {expected_rate:,.0f}, floor {floor:,.0f})"
                )
    return problems
