"""Named KV chaos scenarios with machine-checked outcomes.

The application-level mirror of :mod:`repro.faults.scenarios`: build a
:class:`~repro.apps.kv.cluster.KvCluster`, drive a seeded skewed
workload (:mod:`repro.workloads.kv`), inject faults — including the
crash window the WAL exists for, *between durable append and apply* —
then heal and check everything the subsystem promises:

* membership re-converged and every live replica serving;
* **store convergence** — byte-identical state digests per ring;
* **EVS** — every ring's checker clean (crashed incarnations waived);
* **linearizability** — the client-observed history checks out.

Reports are byte-identical JSON per ``(name, seed)``: the workload is
seeded, fault times are fixed, and the simulator is deterministic — a
violation is a diffable artifact carrying its own repro seed, which is
what the nightly seed-bank job uploads.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.apps.kv.cluster import KvCluster
from repro.util.errors import FaultError
from repro.workloads.kv import DiurnalArrivals, KvOpMix, ZipfianKeys, drive_schedule

#: Boot window before the workload is armed (matches repro.faults).
_BOOT = 0.08
_CONVERGE_SLICE = 0.25
_CONVERGE_SLICES = 16


@dataclass
class KvScenarioSpec:
    """Declarative description of one KV chaos scenario."""

    name: str
    summary: str
    rings: int
    hosts_per_ring: int
    partitions: int
    #: Simulated seconds of workload + faults after boot.
    duration: float
    #: Schedule faults on the cluster; returns the event log entries.
    faults: Callable[[KvCluster, float, random.Random], List[Dict[str, Any]]]
    num_keys: int = 64
    num_clients: int = 4
    zipf_s: float = 0.99
    trough_rate: float = 150.0
    peak_rate: float = 600.0
    snapshot_every: int = 16
    txn_weight: float = 0.05


@dataclass
class KvChaosReport:
    """The checked outcome of one KV scenario run."""

    name: str
    seed: int
    rings: int
    hosts_per_ring: int
    partitions: int
    ok: bool
    converged: bool
    stores_converged: bool
    evs_violations: Dict[int, str]
    linearizability: Dict[str, Any]
    violations: List[str]
    digests: Dict[int, Dict[int, str]]
    history: Dict[str, int]
    counters: Dict[str, Any]
    events: List[Dict[str, Any]]
    sim_time: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "topology": {
                "rings": self.rings,
                "hosts_per_ring": self.hosts_per_ring,
                "partitions": self.partitions,
            },
            "ok": self.ok,
            "converged": self.converged,
            "stores_converged": self.stores_converged,
            "evs_violations": {
                str(ring): text for ring, text in sorted(self.evs_violations.items())
            },
            "linearizability": self.linearizability,
            "violations": self.violations,
            "digests": {
                str(ring): {str(pid): digest for pid, digest in sorted(per.items())}
                for ring, per in sorted(self.digests.items())
            },
            "history": self.history,
            "counters": self.counters,
            "events": self.events,
            "sim_time": round(self.sim_time, 9),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# The scenario library
# ----------------------------------------------------------------------

def _event(kind: str, at: float, **details: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"kind": kind, "at": round(at, 9)}
    entry.update(details)
    return entry


def _crash_mid_txn(kv: KvCluster, base: float, rng: random.Random) -> List[Dict[str, Any]]:
    """The acceptance scenario: a replica dies between WAL append and
    apply of a transaction, recovers via snapshot+WAL replay, rejoins
    through EVS, and resyncs the suffix it missed from a peer."""
    ring, victim = 0, 2
    kv.sim.schedule_at(
        base + 0.05,
        kv.arm_crash_between_append_and_apply,
        ring,
        victim,
        True,  # only_transactions: die on the next ordered transaction
    )
    kv.sim.schedule_at(base + 0.45, kv.restart, ring, victim)
    return [
        _event("arm-crash-between-append-and-apply", 0.05, ring=ring, pid=victim,
               only_transactions=True),
        _event("restart", 0.45, ring=ring, pid=victim),
    ]


def _partition_minority(kv: KvCluster, base: float, rng: random.Random) -> List[Dict[str, Any]]:
    """Split ring 0 into a majority and a stalled minority under load;
    minority-ordered commands must be dropped everywhere (clients see
    incomplete operations, never wrong answers), then heal."""
    majority = set(range(kv.hosts_per_ring))
    minority = {kv.hosts_per_ring - 1}
    majority -= minority
    kv.sim.schedule_at(base + 0.06, kv.partition, 0, majority, minority)
    kv.sim.schedule_at(base + 0.5, kv.heal, 0)
    return [
        _event("partition", 0.06, ring=0,
               groups=[sorted(majority), sorted(minority)]),
        _event("heal", 0.5, ring=0),
    ]


def _cascade_replicas(kv: KvCluster, base: float, rng: random.Random) -> List[Dict[str, Any]]:
    """Cascading crash-recover across two rings: each victim recovers
    from its own WAL and catches the missed suffix by peer transfer."""
    plan = [
        ("crash", 0.05, 0, 1),
        ("crash", 0.12, 1, 2),
        ("restart", 0.4, 0, 1),
        ("restart", 0.55, 1, 2),
    ]
    events = []
    for kind, at, ring, pid in plan:
        action = kv.crash if kind == "crash" else kv.restart
        kv.sim.schedule_at(base + at, action, ring, pid)
        events.append(_event(kind, at, ring=ring, pid=pid))
    return events


def _full_ring_outage(kv: KvCluster, base: float, rng: random.Random) -> List[Dict[str, Any]]:
    """Crash *every* replica of ring 0, then recover all of them: no
    primary survives, so the majority must elect the longest durable
    log and resync from it (the durability story with no live donor)."""
    events = []
    for pid in range(kv.hosts_per_ring):
        at = 0.08 + 0.015 * pid
        kv.sim.schedule_at(base + at, kv.crash, 0, pid)
        events.append(_event("crash", at, ring=0, pid=pid))
    for pid in range(kv.hosts_per_ring):
        at = 0.4 + 0.02 * pid
        kv.sim.schedule_at(base + at, kv.restart, 0, pid)
        events.append(_event("restart", at, ring=0, pid=pid))
    return events


SCENARIOS: Dict[str, KvScenarioSpec] = {
    spec.name: spec
    for spec in (
        KvScenarioSpec(
            name="kv-crash-mid-txn",
            summary="kill a replica between WAL append and apply of a "
                    "transaction; recover, resync, converge",
            rings=2,
            hosts_per_ring=4,
            partitions=8,
            duration=0.8,
            faults=_crash_mid_txn,
            txn_weight=0.25,
            snapshot_every=8,
        ),
        KvScenarioSpec(
            name="kv-partition",
            summary="majority/minority split of one ring under load; "
                    "minority stalls, no divergence, heal and converge",
            rings=2,
            hosts_per_ring=4,
            partitions=8,
            duration=0.9,
            faults=_partition_minority,
        ),
        KvScenarioSpec(
            name="kv-cascade",
            summary="cascading crash-recover across both rings",
            rings=2,
            hosts_per_ring=4,
            partitions=8,
            duration=1.0,
            faults=_cascade_replicas,
        ),
        KvScenarioSpec(
            name="kv-ring-outage",
            summary="crash every replica of one ring; recover all; the "
                    "longest durable WAL wins the election",
            rings=2,
            hosts_per_ring=3,
            partitions=6,
            duration=1.1,
            faults=_full_ring_outage,
            snapshot_every=8,
        ),
    )
}


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_kv_scenario(name: str, seed: int = 0) -> KvChaosReport:
    """Run one named KV scenario; byte-identical JSON per (name, seed)."""
    spec = SCENARIOS.get(name)
    if spec is None:
        raise FaultError(
            f"unknown KV scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    rng = random.Random(seed)
    kv = KvCluster(
        rings=spec.rings,
        hosts_per_ring=spec.hosts_per_ring,
        partitions=spec.partitions,
        snapshot_every=spec.snapshot_every,
    )
    kv.start()
    kv.run(_BOOT)
    _wait_converged(kv)

    base = kv.sim.now
    keys = ZipfianKeys(num_keys=spec.num_keys, s=spec.zipf_s, seed=seed * 7 + 1)
    arrivals = DiurnalArrivals(
        trough_rate=spec.trough_rate,
        peak_rate=spec.peak_rate,
        period=spec.duration,
        burst_factor=2.0,
        burst_width=spec.duration / 10.0,
        seed=seed * 7 + 2,
    )
    mix = KvOpMix(
        keys=keys,
        num_clients=spec.num_clients,
        txn_weight=spec.txn_weight,
        seed=seed * 7 + 3,
    )
    scheduled = drive_schedule(kv, mix.schedule(arrivals.times(spec.duration)), base)
    events = spec.faults(kv, base, rng)
    kv.run(spec.duration)

    # Quiesce: heal leftover partitions, let membership and the
    # transfer/election machinery settle.
    kv.heal()
    converged = _wait_converged(kv)

    stores_converged = kv.stores_converged()
    evs_violations = kv.check_evs()
    lin = kv.check_linearizability()

    violations: List[str] = []
    if not converged:
        violations.append("cluster failed to reconverge to serving replicas")
    if not stores_converged:
        violations.append(
            f"replica stores diverged after heal: digests={kv.store_digests()}"
        )
    violations.extend(
        f"ring {ring}: {text}" for ring, text in sorted(evs_violations.items())
    )
    violations.extend(lin.violations)

    counters = kv.counters()
    counters["ops_scheduled"] = scheduled
    return KvChaosReport(
        name=spec.name,
        seed=seed,
        rings=spec.rings,
        hosts_per_ring=spec.hosts_per_ring,
        partitions=spec.partitions,
        ok=not violations,
        converged=converged,
        stores_converged=stores_converged,
        evs_violations=evs_violations,
        linearizability=lin.to_dict(),
        violations=violations,
        digests=kv.store_digests(),
        history={
            "ops": len(kv.history),
            "completed": kv.history.completed,
            "incomplete": kv.history.incomplete,
        },
        counters=counters,
        events=events,
        sim_time=kv.sim.now,
    )


def run_all_kv(seed: int = 0) -> List[KvChaosReport]:
    """Run the whole KV scenario library (CI's kv-smoke job)."""
    return [run_kv_scenario(name, seed=seed) for name in sorted(SCENARIOS)]


def _wait_converged(kv: KvCluster) -> bool:
    """Deterministically poll until membership converges *and* every
    live replica is back to serving (synced into the primary lineage)."""
    for _ in range(_CONVERGE_SLICES):
        if kv.converged():
            return True
        kv.run(_CONVERGE_SLICE)
    return kv.converged()
