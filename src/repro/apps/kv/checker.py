"""Linearizability checking over client-observed histories.

The store's consistency claim (docs/PROTOCOL.md §13): within one
partition, client-observed operations are **linearizable** — there is
a total order of operations, consistent with real time (if A's
response precedes B's invocation, A orders before B), under which
every completed operation's recorded result matches a sequential
execution.  Partitions are independent total orders, so the history
factors: the checker runs Wing & Gong's algorithm per partition
(group), with memoization on (remaining-operation set, state) in the
style of Lowe's and Porcupine's implementations.

Incomplete operations (invoked, never answered) may be linearized at
any point after their invocation — their effects happen but their
unseen results are unconstrained — or omitted entirely (the command
was dropped in a minority component, or its response died with the
client's replica).  Both choices are explored.

The search is worst-case exponential; histories here have bounded
client concurrency, so in practice it is fast.  A node budget keeps
adversarial inputs from hanging CI: blowing the budget yields
``decided=False`` (and the chaos gate treats that as failure — an
undecided check is not a pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.apps.kv.commands import CAS, DELETE, GET, PUT
from repro.apps.kv.history import History, Operation

#: Default DFS node budget per partition.
DEFAULT_BUDGET = 500_000

_INFINITY = float("inf")


@dataclass
class CheckResult:
    """Outcome of checking one history (or one partition of one)."""

    ok: bool
    decided: bool
    checked_ops: int
    violations: List[str] = field(default_factory=list)
    #: group -> "ok" | "violation" | "undecided"
    partitions: Dict[str, str] = field(default_factory=dict)

    def merge(self, group: str, other: "CheckResult") -> None:
        self.checked_ops += other.checked_ops
        self.violations.extend(other.violations)
        self.ok = self.ok and other.ok
        self.decided = self.decided and other.decided
        self.partitions[group] = (
            "ok" if other.ok and other.decided
            else ("undecided" if not other.decided else "violation")
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "decided": self.decided,
            "checked_ops": self.checked_ops,
            "violations": self.violations,
            "partitions": dict(sorted(self.partitions.items())),
        }


State = Tuple[Tuple[str, bytes], ...]


def _apply(state_dict: Dict[str, bytes], operation: Operation):
    """Sequentially execute ``operation`` against ``state_dict``.

    Returns ``(ok, values, applied)`` mirroring
    :class:`~repro.apps.kv.commands.KvResult`; mutates ``state_dict``
    only on success (transactions stage, like the real store).
    """
    staged = dict(state_dict)
    values: List[Optional[bytes]] = []
    applied: List[bool] = []
    ok = True
    for op in operation.ops:
        current = staged.get(op.key)
        if op.kind == GET:
            values.append(current)
            applied.append(False)
        elif op.kind == PUT:
            staged[op.key] = op.value or b""
            values.append(op.value)
            applied.append(True)
        elif op.kind == DELETE:
            existed = op.key in staged
            if existed:
                del staged[op.key]
            values.append(current)
            applied.append(existed)
        elif op.kind == CAS:
            if current == op.expected:
                staged[op.key] = op.value or b""
                values.append(op.value)
                applied.append(True)
            else:
                values.append(current)
                applied.append(False)
                ok = False
                break
    if ok:
        state_dict.clear()
        state_dict.update(staged)
    return ok, tuple(values), tuple(applied)


def _matches(operation: Operation, ok: bool, values, applied) -> bool:
    """Does the sequential outcome match what the client observed?"""
    result = operation.result
    if result is None:
        return True  # incomplete: any outcome is consistent
    return result.ok == ok and result.values == values and result.applied == applied


def check_partition(
    operations: Sequence[Operation],
    budget: int = DEFAULT_BUDGET,
    watermarks: Optional[Dict[int, int]] = None,
) -> CheckResult:
    """Wing & Gong DFS over one partition's operations.

    ``watermarks`` (client_id → highest applied request_id) is an
    optional oracle hint taken from the converged store's idempotence
    watermarks.  Incomplete *write* operations above their client's
    watermark were never applied by the surviving lineage, so omitting
    them is exact, not a search choice — without the hint, a mass
    outage leaves enough concurrent incomplete writes to blow any
    budget.  With the hint the check is differential (history plus
    implementation metadata) rather than purely black-box; a lying
    watermark cannot hide a violation that any completed operation
    observed, because applied-but-omitted effects contradict the reads
    the DFS must still satisfy.

    Incomplete operations containing only GETs are always dropped:
    they have no effect on state and no observed result, so any
    linearization extends to one that includes or excludes them.
    """
    ops = []
    for op in sorted(operations, key=lambda op: (op.invoke, op.op_id)):
        if not op.complete:
            if all(o.kind == GET for o in op.ops):
                continue
            if watermarks is not None and op.request_id > watermarks.get(
                op.client_id, -1
            ):
                continue
        ops.append(op)
    n = len(ops)
    if n == 0:
        return CheckResult(ok=True, decided=True, checked_ops=0)

    responses = [
        op.response if op.response is not None else _INFINITY for op in ops
    ]
    invokes = [op.invoke for op in ops]
    memo: set = set()
    nodes = 0

    def state_key(state_dict: Dict[str, bytes]) -> State:
        return tuple(sorted(state_dict.items()))

    def dfs(remaining: FrozenSet[int], state_dict: Dict[str, bytes]) -> Optional[bool]:
        """True = linearizable; False = dead end; None = out of budget."""
        nonlocal nodes
        if all(responses[i] == _INFINITY for i in remaining):
            # Only incomplete operations left: legal to drop them all.
            return True
        nodes += 1
        if nodes > budget:
            return None
        key = (remaining, state_key(state_dict))
        if key in memo:
            return False
        first_return = min(responses[i] for i in remaining)
        for i in sorted(remaining):
            if invokes[i] > first_return:
                continue
            trial = dict(state_dict)
            ok, values, applied = _apply(trial, ops[i])
            if not _matches(ops[i], ok, values, applied):
                continue
            verdict = dfs(remaining - {i}, trial)
            if verdict is not False:
                return verdict
        memo.add(key)
        return False

    verdict = dfs(frozenset(range(n)), {})
    if verdict is None:
        return CheckResult(
            ok=False,
            decided=False,
            checked_ops=n,
            violations=[
                f"linearizability undecided: DFS budget of {budget} nodes "
                f"exhausted over {n} operations"
            ],
        )
    if verdict:
        return CheckResult(ok=True, decided=True, checked_ops=n)
    witness = "; ".join(
        f"op{op.op_id} c{op.client_id}#{op.request_id} "
        f"{'+'.join(o.kind_name for o in op.ops)} "
        f"[{op.invoke:.6f},{'∞' if op.response is None else format(op.response, '.6f')}]"
        for op in ops[:12]
    )
    return CheckResult(
        ok=False,
        decided=True,
        checked_ops=n,
        violations=[
            f"no linearization of {n} operation(s) exists; "
            f"history prefix: {witness}"
        ],
    )


def check_history(
    history: History,
    budget: int = DEFAULT_BUDGET,
    watermarks: Optional[Dict[Tuple[str, int], int]] = None,
) -> CheckResult:
    """Check every partition of ``history`` independently.

    Sound because partitions (groups) never share keys: a composite
    linearization interleaves the per-partition ones.  Cross-partition
    transactions do not exist (commands bind to one group), so there is
    no cross-partition atomicity to check — see the §13 non-promises.

    ``watermarks`` is the store-level ``(group, client_id) → request_id``
    map (see :meth:`~repro.apps.kv.store.KvStore.watermarks`); it is
    split per partition and passed to :func:`check_partition` as the
    applied-operations oracle hint.
    """
    total = CheckResult(ok=True, decided=True, checked_ops=0)
    for group, operations in sorted(history.by_group().items()):
        per_group = None
        if watermarks is not None:
            per_group = {
                client: reqid
                for (g, client), reqid in watermarks.items()
                if g == group
            }
        result = check_partition(operations, budget=budget, watermarks=per_group)
        if not result.ok:
            result.violations = [
                f"group {group!r}: {violation}" for violation in result.violations
            ]
        total.merge(group, result)
    return total
