"""The replicated KV service: replicas, clients, and recovery wiring.

:class:`KvCluster` owns a membership-mode :class:`~repro.multiring.
cluster.MultiRingCluster` and runs one :class:`~repro.apps.kv.replica.
KvReplica` per (ring, pid).  Keys hash onto ``partitions`` groups
(``kv00``, ``kv01``, …) and groups shard onto rings through the
cluster's :class:`~repro.multiring.shard_map.ShardMap` — so every
replica of a ring applies exactly that ring's groups, in the ring's
total order, and replicas of one ring are byte-identical when healthy.

Clients (:class:`KvClient`) submit commands through their *home
daemon* on each ring (``client_id % hosts_per_ring``), which keeps a
client's per-group command sequence FIFO, and observe responses when
that home replica applies the command — the real-time intervals the
linearizability checker consumes.

Recovery orchestration (the cluster-level half of the replica-mode
machinery in :mod:`~repro.apps.kv.replica`):

* **peer state transfer** — when a replica is buffering in a majority
  configuration and a primary peer has installed the same
  configuration, the peer's snapshot is installed wholesale and the
  buffer drained (idempotence absorbs the overlap);
* **longest-log election** — when a majority configuration has *no*
  primary member (initial boot; every member crashed and recovered),
  once all its members installed it, the replica with the most applied
  commands (ties: lowest pid) adopts its state as the primary lineage
  and donates to the rest.

In a deployed system the transfer would ride a side channel with its
cut agreed through the ordered stream; here the simulator moves the
snapshot bytes directly at the triggering configuration event.  What
is *modelled* faithfully is the cut composition: transfers happen at
configuration installs, buffered deliveries overlap the snapshot, and
idempotence — not timing luck — makes the composition exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.kv.commands import (
    CommandError,
    KvCommand,
    KvResult,
    Op,
    cas as make_cas,
    decode_command,
    delete as make_delete,
    encode_command,
    get as make_get,
    put as make_put,
)
from repro.apps.kv.history import History
from repro.apps.kv.checker import CheckResult, check_history
from repro.apps.kv.replica import BUFFERING, DurableMedium, KvReplica
from repro.apps.kv.snapshot import encode_snapshot
from repro.apps.kv.store import KvStore
from repro.multiring.shard_map import stable_hash
from repro.sim.build import ClusterBuilder
from repro.util.errors import ConfigurationError


class _RingListener:
    """Bridges one ring's delivery tap to that ring's replicas."""

    def __init__(self, cluster: "KvCluster", ring_index: int) -> None:
        self.cluster = cluster
        self.ring_index = ring_index

    def on_deliver(self, pid, group, payload, config_id, origin_ring) -> None:
        if group is None:
            return  # not a group-framed frame; nothing of ours
        replica = self.cluster.replicas.get((self.ring_index, pid))
        if replica is not None:
            replica.on_ordered(group, payload, config_id)

    def on_config(self, pid, configuration) -> None:
        replica = self.cluster.replicas.get((self.ring_index, pid))
        if replica is None:
            return
        replica.on_config(configuration, self.cluster.hosts_per_ring)
        self.cluster._maybe_sync(self.ring_index)

    def on_restart(self, pid) -> None:
        replica = self.cluster.replicas.get((self.ring_index, pid))
        if replica is not None:
            replica.local_recover()


class KvClient:
    """A client handle: issues commands, owns a request-id sequence."""

    def __init__(self, cluster: "KvCluster", client_id: int) -> None:
        self.cluster = cluster
        self.client_id = client_id
        self._next_request = 0

    def _request_id(self) -> int:
        self._next_request += 1
        return self._next_request

    def get(self, key: str) -> None:
        self._submit((make_get(key),))

    def put(self, key: str, value: bytes) -> None:
        self._submit((make_put(key, value),))

    def delete(self, key: str) -> None:
        self._submit((make_delete(key),))

    def cas(self, key: str, expected: Optional[bytes], value: bytes) -> None:
        self._submit((make_cas(key, expected, value),))

    def transact(self, ops: Sequence[Op]) -> None:
        """An atomic multi-op command; all keys must share a partition."""
        self._submit(tuple(ops))

    def _submit(self, ops: Tuple[Op, ...]) -> None:
        self.cluster.submit_command(self.client_id, self._request_id(), ops)


class KvCluster:
    """A partitioned, replicated, durable KV store on N rings."""

    def __init__(
        self,
        rings: int = 2,
        hosts_per_ring: int = 4,
        partitions: int = 8,
        snapshot_every: int = 64,
        accelerated: bool = True,
        config=None,
        timeouts=None,
        observer=None,
        loss_model=None,
        media: Optional[Dict[Tuple[int, int], DurableMedium]] = None,
    ) -> None:
        if partitions < 1:
            raise ConfigurationError(f"need at least one partition, got {partitions}")
        self.partitions = partitions
        self.hosts_per_ring = hosts_per_ring
        builder = (
            ClusterBuilder()
            .rings(rings)
            .hosts(hosts_per_ring)
            .membership()
            .accelerated(accelerated)
        )
        if config is not None:
            builder = builder.config(config)
        if timeouts is not None:
            builder = builder.timeouts(timeouts)
        if observer is not None:
            builder = builder.observe(observer)
        if loss_model is not None:
            builder = builder.loss(loss_model)
        self.net = builder.build_multiring()
        self.history = History()
        self.replicas: Dict[Tuple[int, int], KvReplica] = {}
        self.transfers_sent = 0
        self.elections_held = 0
        self._crashed_incarnations: Dict[int, set] = {}
        self._clients: Dict[int, KvClient] = {}
        for ring_index in range(self.net.num_rings):
            for pid in range(hosts_per_ring):
                key = (ring_index, pid)
                durable = (media or {}).get(key)
                self.replicas[key] = KvReplica(
                    ring_index=ring_index,
                    pid=pid,
                    durable=durable,
                    snapshot_every=snapshot_every,
                    apply_listener=self._on_apply,
                )
            self.net.taps[ring_index].add_listener(
                _RingListener(self, ring_index)
            )

    # -- lifecycle -----------------------------------------------------

    @property
    def sim(self):
        return self.net.sim

    def start(self) -> None:
        self.net.start()

    def run(self, duration: float) -> None:
        self.net.run(duration)

    # -- keyspace ------------------------------------------------------

    def group_of(self, key: str) -> str:
        return f"kv{stable_hash('kv:' + key) % self.partitions:02d}"

    def groups(self) -> List[str]:
        return [f"kv{index:02d}" for index in range(self.partitions)]

    def ring_groups(self, ring_index: int) -> List[str]:
        return [
            group
            for group in self.groups()
            if self.net.ring_of(group) == ring_index
        ]

    # -- client path ---------------------------------------------------

    def client(self, client_id: int) -> KvClient:
        if client_id not in self._clients:
            self._clients[client_id] = KvClient(self, client_id)
        return self._clients[client_id]

    def home_pid(self, client_id: int) -> int:
        return client_id % self.hosts_per_ring

    def submit_command(
        self, client_id: int, request_id: int, ops: Tuple[Op, ...]
    ) -> None:
        groups = {self.group_of(op.key) for op in ops}
        if len(groups) != 1:
            raise CommandError(
                f"transaction spans partitions {sorted(groups)}; commands "
                f"bind to one partition (cross-shard transactions are a "
                f"documented non-promise, docs/PROTOCOL.md §13)"
            )
        group = groups.pop()
        command = KvCommand(client_id=client_id, request_id=request_id, ops=ops)
        self.history.invoke(client_id, request_id, group, ops, self.sim.now)
        self.net.submit(
            group,
            encode_command(command),
            sender=self.home_pid(client_id),
        )

    def _on_apply(
        self, replica: KvReplica, group: str, command: KvCommand, result: KvResult
    ) -> None:
        # The client observes its response at its home replica only.
        if replica.pid == self.home_pid(command.client_id):
            self.history.respond(
                command.client_id, command.request_id, result, self.sim.now
            )

    # -- recovery orchestration ----------------------------------------

    def _host_alive(self, ring_index: int, pid: int) -> bool:
        host = self.net.ring(ring_index).hosts.get(pid)
        return host is not None and not host.host.crashed

    def _maybe_sync(self, ring_index: int) -> None:
        """Confirm-and-promote pending configurations on one ring.

        Called at every regular configuration install.  A majority
        configuration is **confirmed** only once every listed member
        has installed that exact configuration — the stand-in for the
        in-configuration confirmation round of dynamic-voting primary-
        component protocols.  Member-count majority alone is unsafe:
        under churn, two majority-member-list configurations can be
        installed by disjoint installer sets, and serving on the count
        would run two primary components concurrently (a real fork this
        subsystem's chaos suite caught).  An unconfirmed configuration
        never serves; its buffered deliveries die with it.

        On confirmation, the donor is chosen among lineage candidates
        (``primary`` holders, falling back to all installers on
        bootstrap or total loss): longest applied prefix, ties to the
        lowest pid.  The donor's state transfers to every other member,
        and everyone serves.
        """
        replicas = [
            replica
            for (ring, _pid), replica in self.replicas.items()
            if ring == ring_index
        ]
        live = [
            replica
            for replica in replicas
            if replica.alive and self._host_alive(ring_index, replica.pid)
        ]
        pending: Dict[int, List[KvReplica]] = {}
        for replica in live:
            if replica.mode == BUFFERING and replica.latest_config is not None:
                pending.setdefault(replica.latest_config.config_id, []).append(replica)
        for config_id, waiting in sorted(pending.items()):
            config = waiting[0].latest_config
            installed = [
                peer
                for peer in live
                if peer.latest_config is not None
                and peer.latest_config.config_id == config_id
            ]
            if {peer.pid for peer in installed} < set(config.members):
                continue  # unconfirmed: some member has not installed yet
            candidates = [peer for peer in installed if peer.primary] or installed
            chosen = max(
                candidates,
                key=lambda peer: (peer.store.total_applied(), -peer.pid),
            )
            self.elections_held += 1
            if chosen.mode == BUFFERING:
                chosen.become_primary()
            snapshot = encode_snapshot(chosen.store)
            for peer in installed:
                if peer is not chosen and peer.mode == BUFFERING:
                    peer.receive_transfer(snapshot)
                    self.transfers_sent += 1

    # -- fault surface -------------------------------------------------

    def crash(self, ring_index: int, pid: int) -> None:
        """Fail-stop a daemon and its replica (volatile state lost)."""
        self.replicas[(ring_index, pid)].crash()
        self._crashed_incarnations.setdefault(ring_index, set()).add(pid)
        self.net.crash(ring_index, pid)

    def restart(self, ring_index: int, pid: int) -> None:
        """Recover a crashed daemon; the replica replays snapshot+WAL
        (via the restart tap event) and resyncs before serving."""
        self.net.restart(ring_index, pid)

    def arm_crash_between_append_and_apply(
        self, ring_index: int, pid: int, only_transactions: bool = False
    ) -> None:
        """Arm the chaos hook: on its next qualifying command, the
        replica WAL-appends, then dies before applying.

        The host's fail-stop is scheduled at the current sim instant
        (it runs right after the in-flight delivery batch — crashing a
        host from inside its own delivery callback would let the rest
        of the batch execute on a corpse); the replica's volatile state
        is discarded immediately, so nothing past the armed command is
        applied or logged.
        """
        replica = self.replicas[(ring_index, pid)]

        def action() -> None:
            replica.crash()
            self._crashed_incarnations.setdefault(ring_index, set()).add(pid)
            self.sim.schedule_at(
                self.sim.now, self.net.crash, ring_index, pid
            )

        when = (lambda cmd: cmd.is_transaction) if only_transactions else None
        replica.arm_crash(action, when=when)

    def partition(self, ring_index: int, *groups) -> None:
        self.net.partition(ring_index, *groups)

    def heal(self, ring_index: Optional[int] = None) -> None:
        self.net.heal(ring_index)

    # -- verification surface ------------------------------------------

    def converged(self) -> bool:
        """Membership converged and every live replica is serving."""
        if not self.net.converged():
            return False
        for (ring_index, pid), replica in self.replicas.items():
            if not self._host_alive(ring_index, pid):
                continue
            if not (replica.alive and replica.primary and replica.mode == "serving"):
                return False
        return True

    def check_evs(self) -> Dict[int, str]:
        """Per-ring EVS violations, with crashed incarnations waived."""
        return self.net.check_evs(crashed=self._crashed_incarnations)

    def store_digests(self) -> Dict[int, Dict[int, str]]:
        """ring -> pid -> state digest over the ring's groups, for
        every replica whose host is up."""
        digests: Dict[int, Dict[int, str]] = {}
        for (ring_index, pid), replica in sorted(self.replicas.items()):
            if not (replica.alive and self._host_alive(ring_index, pid)):
                continue
            digests.setdefault(ring_index, {})[pid] = replica.store.digest(
                self.ring_groups(ring_index)
            )
        return digests

    def stores_converged(self) -> bool:
        """Every ring's live replicas hold byte-identical store state."""
        return all(
            len(set(per_ring.values())) == 1
            for per_ring in self.store_digests().values()
            if per_ring
        )

    def check_linearizability(self, budget: Optional[int] = None) -> CheckResult:
        """Check the client-observed history, with the converged
        stores' idempotence watermarks as the applied-ops oracle hint
        (see :func:`~repro.apps.kv.checker.check_partition`)."""
        watermarks: Dict[Tuple[str, int], int] = {}
        for ring_index in range(self.net.num_rings):
            serving = [
                replica
                for (ring, _pid), replica in sorted(self.replicas.items())
                if ring == ring_index
                and replica.alive
                and self._host_alive(ring_index, replica.pid)
                and replica.mode == "serving"
            ]
            if not serving:
                continue  # no hint for this ring's groups: full search
            best = max(serving, key=lambda r: r.store.total_applied())
            watermarks.update(best.store.watermarks)
        kwargs = {} if budget is None else {"budget": budget}
        return check_history(
            self.history, watermarks=watermarks or None, **kwargs
        )

    def cross_shard_snapshot(
        self,
        groups: Optional[Iterable[str]] = None,
        vantage: Optional[int] = None,
    ) -> KvStore:
        """A read-only store built from the deterministic cross-shard
        merge order — the state a subscriber of ``groups`` computes.

        Every vantage yields the identical store (the §11 merge
        guarantee).  Fault-free convenience: the merge reads raw
        delivered streams, so it does not apply the primary-component
        filtering replicas do under partitions.
        """
        wanted = list(groups) if groups is not None else self.groups()
        store = KvStore()
        for group, payload in self.net.merged_stream(wanted, vantage=vantage):
            store.apply(group, decode_command(payload))
        return store

    def counters(self) -> Dict[str, object]:
        return {
            "replicas": {
                f"r{ring}p{pid}": replica.counters()
                for (ring, pid), replica in sorted(self.replicas.items())
            },
            "transfers_sent": self.transfers_sent,
            "elections_held": self.elections_held,
            "history_ops": len(self.history),
            "history_completed": self.history.completed,
        }
