"""KV command and result model with a byte-stable binary codec.

Commands are the *application payloads* of ordered messages: a client
encodes a command, hands it to the ordering layer for its partition's
group, and every replica of that partition decodes and applies it in
the group's total order.  Because replicas never exchange results —
each computes its own, identically — only commands need a wire format.

The codec is deliberately boring: fixed-width network-byte-order
headers and length-prefixed fields, no compression, no varints.  Byte
stability across processes and Python versions is a correctness
property (WAL files and snapshots embed these bytes; the property
tests pin golden encodings), so cleverness is a liability.

Layout (all integers big-endian)::

    command   := header op*
    header    := client_id:u32  request_id:u64  op_count:u16
    op        := kind:u8 body
    GET/DEL   := klen:u16 key
    PUT       := klen:u16 key vlen:u32 value
    CAS       := klen:u16 key  has_expected:u8 [elen:u32 expected]
                 vlen:u32 value

A command with ``op_count > 1`` is a **transaction**: its ops apply
atomically, in order, against one partition (all keys must live in the
same group — the encoder enforces it given a partitioner; cross-shard
transactions are an explicit non-promise, docs/PROTOCOL.md §13).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.util.errors import ConfigurationError

#: Op kinds (wire values — never renumber).
GET, PUT, DELETE, CAS = 1, 2, 3, 4

_KIND_NAMES = {GET: "get", PUT: "put", DELETE: "delete", CAS: "cas"}

_HEADER = struct.Struct("!IQH")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

#: Upper bounds baked into the wire format.
MAX_KEY_LEN = 0xFFFF
MAX_VALUE_LEN = 0xFFFFFFFF


class CommandError(ConfigurationError):
    """A malformed command (encode- or decode-side)."""


@dataclass(frozen=True)
class Op:
    """One key operation inside a command.

    ``expected`` is meaningful only for CAS: the value the key must
    currently hold for the swap to succeed, with ``None`` meaning the
    key must be absent (compare-and-create).
    """

    kind: int
    key: str
    value: Optional[bytes] = None
    expected: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_NAMES:
            raise CommandError(f"unknown op kind {self.kind}")
        if self.kind in (PUT, CAS) and self.value is None:
            raise CommandError(f"{_KIND_NAMES[self.kind]} needs a value")
        if self.kind in (GET, DELETE) and self.value is not None:
            raise CommandError(f"{_KIND_NAMES[self.kind]} carries no value")
        if self.kind != CAS and self.expected is not None:
            raise CommandError("expected= is a CAS field")

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES[self.kind]

    @property
    def is_write(self) -> bool:
        return self.kind != GET


def get(key: str) -> Op:
    return Op(GET, key)


def put(key: str, value: bytes) -> Op:
    return Op(PUT, key, value=value)


def delete(key: str) -> Op:
    return Op(DELETE, key)


def cas(key: str, expected: Optional[bytes], value: bytes) -> Op:
    return Op(CAS, key, value=value, expected=expected)


@dataclass(frozen=True)
class KvCommand:
    """An ordered unit of work: one op, or an atomic multi-op txn.

    ``(client_id, request_id)`` uniquely identifies the command within
    a group; replicas use it both to match responses to invocations
    and as the idempotence watermark that makes WAL/snapshot/state-
    transfer recovery safely re-appliable (:mod:`repro.apps.kv.store`).
    """

    client_id: int
    request_id: int
    ops: Tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise CommandError("a command needs at least one op")
        if not 0 <= self.client_id <= 0xFFFFFFFF:
            raise CommandError(f"client_id out of range: {self.client_id}")
        if not 0 <= self.request_id <= 0xFFFFFFFFFFFFFFFF:
            raise CommandError(f"request_id out of range: {self.request_id}")

    @property
    def is_transaction(self) -> bool:
        return len(self.ops) > 1

    @property
    def is_write(self) -> bool:
        return any(op.is_write for op in self.ops)


@dataclass(frozen=True)
class KvResult:
    """The deterministic outcome of applying one command.

    Never serialized: every replica computes the identical result, and
    only the submitting client's home replica reports it back into the
    observed history.  ``values`` lines up with the command's ops:
    ``None`` for absent keys (GET/DELETE) and for failed CAS slots.
    ``ok`` is False only when a CAS comparison failed (which aborts the
    whole transaction — no partial writes).
    """

    ok: bool
    values: Tuple[Optional[bytes], ...]
    #: Per-op applied flags: True where the op mutated state.
    applied: Tuple[bool, ...]


def _pack_bytes(out: List[bytes], data: bytes, wide: bool) -> None:
    limit = MAX_VALUE_LEN if wide else MAX_KEY_LEN
    if len(data) > limit:
        raise CommandError(f"field too long: {len(data)} > {limit}")
    out.append((_U32 if wide else _U16).pack(len(data)))
    out.append(data)


def encode_command(command: KvCommand) -> bytes:
    """Serialize ``command``; the inverse of :func:`decode_command`."""
    out: List[bytes] = [
        _HEADER.pack(command.client_id, command.request_id, len(command.ops))
    ]
    for op in command.ops:
        out.append(_U8.pack(op.kind))
        _pack_bytes(out, op.key.encode("utf-8"), wide=False)
        if op.kind == PUT:
            _pack_bytes(out, op.value or b"", wide=True)
        elif op.kind == CAS:
            if op.expected is None:
                out.append(_U8.pack(0))
            else:
                out.append(_U8.pack(1))
                _pack_bytes(out, op.expected, wide=True)
            _pack_bytes(out, op.value or b"", wide=True)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CommandError(
                f"truncated command: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def field(self, wide: bool) -> bytes:
        fmt = _U32 if wide else _U16
        (length,) = fmt.unpack(self.take(fmt.size))
        return self.take(length)


def decode_command(data: bytes) -> KvCommand:
    """Parse a command; raises :class:`CommandError` on malformed input."""
    reader = _Reader(data)
    client_id, request_id, op_count = _HEADER.unpack(reader.take(_HEADER.size))
    if op_count == 0:
        raise CommandError("command with zero ops")
    ops: List[Op] = []
    for _ in range(op_count):
        kind = reader.u8()
        if kind not in _KIND_NAMES:
            raise CommandError(f"unknown op kind {kind} on the wire")
        key = reader.field(wide=False).decode("utf-8")
        if kind == PUT:
            ops.append(Op(PUT, key, value=reader.field(wide=True)))
        elif kind == CAS:
            expected = reader.field(wide=True) if reader.u8() else None
            ops.append(Op(CAS, key, value=reader.field(wide=True), expected=expected))
        else:
            ops.append(Op(kind, key))
    if reader.pos != len(data):
        raise CommandError(
            f"{len(data) - reader.pos} trailing byte(s) after command"
        )
    return KvCommand(client_id=client_id, request_id=request_id, ops=tuple(ops))
