"""Client-observed operation histories.

A :class:`History` records what *clients* saw: each operation's
invocation time (the moment the command was handed to the ordering
layer) and, if it ever arrived, its response time and result (the
moment the client's home replica applied the command).  This is the
input contract of the linearizability checker — real-time intervals
around each operation, nothing about internal protocol state.

Operations that never received a response stay **incomplete**.  The
checker treats them the standard way: an incomplete operation may have
taken effect at any point after its invocation, or never at all (e.g.
a command submitted in a minority component and dropped, or one whose
home replica died first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.kv.commands import KvCommand, KvResult, Op


@dataclass
class Operation:
    """One client operation and what the client observed of it."""

    op_id: int
    client_id: int
    request_id: int
    group: str
    ops: Tuple[Op, ...]
    invoke: float
    response: Optional[float] = None
    result: Optional[KvResult] = None

    @property
    def complete(self) -> bool:
        return self.response is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op_id": self.op_id,
            "client_id": self.client_id,
            "request_id": self.request_id,
            "group": self.group,
            "ops": [
                {
                    "kind": op.kind_name,
                    "key": op.key,
                    "value": None if op.value is None else op.value.hex(),
                    "expected": None if op.expected is None else op.expected.hex(),
                }
                for op in self.ops
            ],
            "invoke": round(self.invoke, 9),
            "response": None if self.response is None else round(self.response, 9),
            "ok": None if self.result is None else self.result.ok,
        }


class History:
    """An append-only record of invocations and responses."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._open: Dict[Tuple[int, int], Operation] = {}

    def invoke(
        self,
        client_id: int,
        request_id: int,
        group: str,
        ops: Tuple[Op, ...],
        when: float,
    ) -> Operation:
        operation = Operation(
            op_id=len(self.operations),
            client_id=client_id,
            request_id=request_id,
            group=group,
            ops=ops,
            invoke=when,
        )
        self.operations.append(operation)
        self._open[(client_id, request_id)] = operation
        return operation

    def respond(
        self, client_id: int, request_id: int, result: KvResult, when: float
    ) -> None:
        """Attach a response; double responses are ignored.

        A duplicate can only come from a replayed command at a
        recovered home replica — the first response the client saw is
        the one the history keeps.
        """
        operation = self._open.pop((client_id, request_id), None)
        if operation is None:
            return
        operation.response = when
        operation.result = result

    def command_of(self, operation: Operation) -> KvCommand:
        return KvCommand(
            client_id=operation.client_id,
            request_id=operation.request_id,
            ops=operation.ops,
        )

    # ------------------------------------------------------------------

    def by_group(self) -> Dict[str, List[Operation]]:
        grouped: Dict[str, List[Operation]] = {}
        for operation in self.operations:
            grouped.setdefault(operation.group, []).append(operation)
        return grouped

    @property
    def completed(self) -> int:
        return sum(1 for op in self.operations if op.complete)

    @property
    def incomplete(self) -> int:
        return len(self.operations) - self.completed

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [operation.to_dict() for operation in self.operations]

    def __len__(self) -> int:
        return len(self.operations)
