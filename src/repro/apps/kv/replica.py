"""One KV replica: a state machine riding one ring's delivery stream.

Normal case (the tippers-commit append-before-apply idiom):

1. an ordered message arrives (``on_ordered``);
2. the decoded command is appended to the WAL — *durable first*;
3. the command is applied to the in-memory store;
4. every ``snapshot_every`` appended records, the store is snapshotted
   and the WAL reset (snapshot installation is atomic in both storage
   backends, so a crash anywhere in the cycle recovers consistently).

A crash between steps 2 and 3 is the classic recovery window: the WAL
holds a command memory never saw.  Replay is idempotent (store
watermarks), so recovery applies it exactly once.

Replica modes compose the store with EVS configuration changes:

* ``serving`` — in a *confirmed* primary-component configuration
  (majority member list, and every listed member actually installed
  it), synced with the lineage: apply deliveries directly.
* ``buffering`` — in a majority configuration that is not yet
  confirmed and promoted by the cluster orchestrator (every install
  starts here, as does a freshly recovered replica): deliveries are
  buffered, scoped to this configuration; watermark idempotence makes
  the buffer/transfer overlap harmless.
* ``stalled`` — in a minority configuration: deliveries are *dropped*.
  Commands ordered in non-primary components are never applied by
  anyone (their clients see no response), which is what keeps two
  sides of a partition from diverging.

Transitional configurations change nothing: their deliveries belong to
the closed regular configuration and are handled under its mode — that
is precisely the guarantee transitional views exist to provide.

The cluster layer (:mod:`~repro.apps.kv.cluster`) drives the
cross-replica parts: who donates state transfer, and the
longest-WAL election when a majority forms with no primary survivor.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.apps.kv.commands import KvCommand, KvResult, decode_command
from repro.apps.kv.snapshot import decode_snapshot, encode_snapshot
from repro.apps.kv.store import KvStore
from repro.apps.kv.wal import MemoryWalStorage, WalRecord, WriteAheadLog

SERVING, BUFFERING, STALLED = "serving", "buffering", "stalled"


class DurableMedium:
    """A replica's 'disk': WAL bytes plus the latest snapshot image.

    Owned by the cluster, not the replica, so it survives process
    crashes exactly like a filesystem survives a killed daemon.  The
    default in-memory backends model the disk inside the simulator;
    file-backed storage (:class:`~repro.apps.kv.wal.FileWalStorage`)
    drops in for the CLI's durable runs.
    """

    def __init__(
        self,
        wal_storage: Optional[object] = None,
        snapshot_storage: Optional[object] = None,
    ) -> None:
        self.wal_storage = wal_storage if wal_storage is not None else MemoryWalStorage()
        self.snapshot_storage = (
            snapshot_storage if snapshot_storage is not None else MemoryWalStorage()
        )

    def write_snapshot(self, data: bytes) -> None:
        self.snapshot_storage.replace(data)

    def read_snapshot(self) -> bytes:
        return self.snapshot_storage.read()


def recover_store(durable: DurableMedium) -> Tuple[KvStore, int]:
    """Rebuild a store from a medium: snapshot, then WAL redo replay.

    Returns ``(store, wal_records_replayed)``.  Standalone so the CLI's
    ``recover-replay`` can run the exact code path a replica runs.
    """
    store = decode_snapshot(durable.read_snapshot())
    if store is None:
        store = KvStore()
    replayed = 0
    for record in WriteAheadLog(durable.wal_storage).records():
        store.apply(record.group, record.command)
        replayed += 1
    return store, replayed


class KvReplica:
    """The per-(ring, pid) application state machine."""

    def __init__(
        self,
        ring_index: int,
        pid: int,
        durable: Optional[DurableMedium] = None,
        snapshot_every: int = 64,
        apply_listener: Optional[
            Callable[["KvReplica", str, KvCommand, KvResult], None]
        ] = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.ring_index = ring_index
        self.pid = pid
        self.durable = durable if durable is not None else DurableMedium()
        self.snapshot_every = snapshot_every
        self.apply_listener = apply_listener

        self.store: KvStore = KvStore()
        self.wal = WriteAheadLog(self.durable.wal_storage)
        self.alive = True
        self.primary = False
        self.mode = BUFFERING
        self.latest_config = None  # latest *regular* Configuration seen
        self.buffer: List[Tuple[str, bytes]] = []

        # Counters (exported into chaos / bench reports).
        self.applies = 0
        self.duplicates_skipped = 0
        self.dropped_minority = 0
        self.snapshots_taken = 0
        self.recoveries = 0
        self.transfers_received = 0
        self._records_since_snapshot = 0

        # Chaos hook: crash between WAL append and apply (see arm_crash).
        self._crash_when: Optional[Callable[[KvCommand], bool]] = None
        self._crash_action: Optional[Callable[[], None]] = None

    # -- delivery path -------------------------------------------------

    def on_ordered(self, group: str, payload: bytes, config_id: int) -> None:
        """One ordered message for this replica, in delivery order."""
        if not self.alive:
            return
        if self.mode == STALLED:
            self.dropped_minority += 1
            return
        if self.mode == BUFFERING:
            self.buffer.append((group, payload))
            return
        self._ingest(group, payload)

    def _ingest(self, group: str, payload: bytes) -> None:
        command = decode_command(payload)
        self.wal.append(WalRecord(group=group, command=command))
        self._records_since_snapshot += 1
        if self._crash_when is not None and self._crash_when(command):
            # The armed chaos crash: durable append done, apply never
            # happens.  Disarm first — the action tears this process
            # down and must not recurse.
            self._crash_when = None
            action, self._crash_action = self._crash_action, None
            if action is not None:
                action()
            return
        result = self.store.apply(group, command)
        if result is None:
            self.duplicates_skipped += 1
        else:
            self.applies += 1
            if self.apply_listener is not None:
                self.apply_listener(self, group, command, result)
        if self._records_since_snapshot >= self.snapshot_every:
            self.take_snapshot()

    def drain(self) -> None:
        buffered, self.buffer = self.buffer, []
        for group, payload in buffered:
            self._ingest(group, payload)

    # -- configuration path --------------------------------------------

    def on_config(self, configuration, ring_size: int) -> None:
        """A new configuration installed at this replica.

        ``ring_size`` is the ring's nominal full membership count; only
        a configuration holding a strict majority of it can become the
        primary component.  But a member-count majority is *claimed*
        membership, not actual: under churn, two configurations with
        majority member lists can be installed by disjoint installer
        sets (a listed member that fails mid-install lands in a
        different configuration instead).  Serving on member count
        alone therefore forks the lineage — so every install, even at a
        current primary, drops to ``buffering`` until the cluster
        orchestrator confirms that *all* listed members installed this
        exact configuration (the dynamic-voting confirmation round) and
        promotes it.

        The buffer is scoped to the new configuration: deliveries
        buffered under a configuration that never confirms die with it
        (nobody applied them; their clients see incomplete operations).
        ``primary`` survives as the lineage-candidacy flag — it marks
        state that was part of the last confirmed primary component and
        weighs into the next promotion's donor choice.
        """
        if not self.alive or configuration.transitional:
            return
        self.latest_config = configuration
        self.buffer.clear()
        if len(configuration.members) * 2 <= ring_size:
            self.mode = STALLED
        else:
            self.mode = BUFFERING

    # -- durability / recovery -----------------------------------------

    def take_snapshot(self) -> None:
        self.durable.write_snapshot(encode_snapshot(self.store))
        self.wal.reset()
        self._records_since_snapshot = 0
        self.snapshots_taken += 1

    def crash(self) -> None:
        """Process death: volatile state gone, the medium stays."""
        self.alive = False
        self.primary = False
        self.store = KvStore()
        self.buffer.clear()
        self.mode = BUFFERING
        self.latest_config = None
        self._crash_when = None
        self._crash_action = None

    def local_recover(self) -> int:
        """Restart: rebuild from snapshot + WAL; returns records replayed.

        The recovered replica is *not* primary — its local state covers
        only what it had durably logged before dying.  It buffers until
        the cluster resyncs it (peer transfer or election).
        """
        self.store, replayed = recover_store(self.durable)
        self.wal = WriteAheadLog(self.durable.wal_storage)
        self._records_since_snapshot = 0
        self.alive = True
        self.primary = False
        self.mode = BUFFERING
        self.buffer.clear()
        self.recoveries += 1
        return replayed

    # -- resync (cluster-driven) ---------------------------------------

    def become_primary(self) -> None:
        """Adopt own state as the primary lineage (election winner, or
        sole bootstrap case); drain anything buffered meanwhile."""
        self.primary = True
        if self.mode == BUFFERING:
            self.mode = SERVING
            self.drain()

    def receive_transfer(self, snapshot_bytes: bytes) -> None:
        """Install a donor's snapshot and catch up from the buffer.

        The donor state supersedes local history wholesale (it is a
        superset prefix of the same per-group orders), so it also
        becomes the new durable snapshot and the WAL resets — exactly
        as if this replica had just taken that snapshot itself.
        """
        store = decode_snapshot(snapshot_bytes)
        if store is None:
            raise ValueError("state transfer carried an empty snapshot")
        self.store = store
        self.durable.write_snapshot(snapshot_bytes)
        self.wal.reset()
        self._records_since_snapshot = 0
        self.transfers_received += 1
        self.become_primary()

    # -- chaos hook ----------------------------------------------------

    def arm_crash(
        self,
        action: Callable[[], None],
        when: Optional[Callable[[KvCommand], bool]] = None,
    ) -> None:
        """Crash this replica between WAL append and apply.

        ``when`` selects the triggering command (default: the next
        one); ``action`` performs the actual teardown (the cluster
        crashes the underlying host so membership sees a real
        fail-stop, then calls :meth:`crash`).
        """
        self._crash_when = when if when is not None else (lambda _command: True)
        self._crash_action = action

    def counters(self) -> dict:
        return {
            "applies": self.applies,
            "duplicates_skipped": self.duplicates_skipped,
            "dropped_minority": self.dropped_minority,
            "snapshots_taken": self.snapshots_taken,
            "recoveries": self.recoveries,
            "transfers_received": self.transfers_received,
            "wal_records": self.wal.records_appended,
        }

    def __repr__(self) -> str:
        return (
            f"KvReplica(ring={self.ring_index}, pid={self.pid}, "
            f"mode={self.mode}, primary={self.primary}, "
            f"applied={self.store.total_applied()})"
        )
