"""Snapshot codec: a full :class:`~repro.apps.kv.store.KvStore` image.

Snapshots serve two roles with one format:

* **compaction** — a replica periodically writes its state and resets
  the WAL, so recovery replays a bounded suffix;
* **state transfer** — a rejoining replica receives a peer's snapshot
  bytes to cover the prefix it missed while down (:mod:`~repro.apps.
  kv.cluster`).

The encoding is canonical (groups, keys, and watermarks sorted), so
equal states produce equal bytes — ``encode_snapshot`` output is
directly comparable across replicas, and the property suite pins the
round-trip and the recovery-equivalence law
``replay(snapshot, wal_suffix) == full_replay``.

Layout::

    snapshot := magic:8  group_count:u32  group*
    group    := name_len:u16 name  applied:u64
                key_count:u32  (key_len:u16 key  value_len:u32 value)*
                mark_count:u32 (client_id:u32 request_id:u64)*

Integrity: the payload is framed with a CRC-32 like a WAL record, so a
torn snapshot write is detected and recovery falls back to the empty
store plus full WAL replay.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from repro.apps.kv.store import KvStore
from repro.util.errors import ConfigurationError

MAGIC = b"KVSNAP01"
_FRAME = struct.Struct("!II")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_MARK = struct.Struct("!IQ")


class SnapshotError(ConfigurationError):
    """A snapshot that cannot be decoded (corruption or bad magic)."""


def encode_snapshot(store: KvStore) -> bytes:
    """Serialize ``store`` canonically; inverse of :func:`decode_snapshot`."""
    out = [MAGIC]
    groups = sorted(set(store.data) | set(store.applied_counts))
    out.append(_U32.pack(len(groups)))
    for group in groups:
        gname = group.encode("utf-8")
        out.append(_U16.pack(len(gname)))
        out.append(gname)
        out.append(_U64.pack(store.applied_counts.get(group, 0)))
        partition = store.data.get(group, {})
        out.append(_U32.pack(len(partition)))
        for key in sorted(partition):
            kname = key.encode("utf-8")
            out.append(_U16.pack(len(kname)))
            out.append(kname)
            value = partition[key]
            out.append(_U32.pack(len(value)))
            out.append(value)
        marks = sorted(
            (client, reqid)
            for (g, client), reqid in store.watermarks.items()
            if g == group
        )
        out.append(_U32.pack(len(marks)))
        for client, reqid in marks:
            out.append(_MARK.pack(client, reqid))
    body = b"".join(out)
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def decode_snapshot(data: bytes) -> Optional[KvStore]:
    """Decode a snapshot; ``None`` for an empty or torn image.

    ``None`` (rather than an exception) on truncation mirrors the WAL's
    torn-tail semantics: an interrupted snapshot write means "no
    snapshot", and recovery proceeds from the WAL alone.  Structurally
    bad bytes beyond that raise :class:`SnapshotError`.
    """
    if not data:
        return None
    if len(data) < _FRAME.size:
        return None
    length, crc = _FRAME.unpack_from(data)
    if len(data) < _FRAME.size + length:
        return None
    body = data[_FRAME.size : _FRAME.size + length]
    if zlib.crc32(body) != crc:
        return None
    if len(data) > _FRAME.size + length:
        raise SnapshotError(
            f"{len(data) - _FRAME.size - length} trailing byte(s) "
            f"after snapshot frame"
        )
    if body[: len(MAGIC)] != MAGIC:
        raise SnapshotError(f"bad snapshot magic {body[:8]!r}")

    store = KvStore()
    pos = len(MAGIC)
    try:
        (group_count,) = _U32.unpack_from(body, pos)
        pos += _U32.size
        for _ in range(group_count):
            (glen,) = _U16.unpack_from(body, pos)
            pos += _U16.size
            group = body[pos : pos + glen].decode("utf-8")
            pos += glen
            (applied,) = _U64.unpack_from(body, pos)
            pos += _U64.size
            store.applied_counts[group] = applied
            (key_count,) = _U32.unpack_from(body, pos)
            pos += _U32.size
            partition = store.data.setdefault(group, {})
            for _ in range(key_count):
                (klen,) = _U16.unpack_from(body, pos)
                pos += _U16.size
                key = body[pos : pos + klen].decode("utf-8")
                pos += klen
                (vlen,) = _U32.unpack_from(body, pos)
                pos += _U32.size
                partition[key] = body[pos : pos + vlen]
                pos += vlen
            (mark_count,) = _U32.unpack_from(body, pos)
            pos += _U32.size
            for _ in range(mark_count):
                client, reqid = _MARK.unpack_from(body, pos)
                pos += _MARK.size
                store.watermarks[(group, client)] = reqid
    except struct.error as exc:
        raise SnapshotError(f"snapshot body truncated at offset {pos}") from exc
    if pos != len(body):
        raise SnapshotError(
            f"{len(body) - pos} trailing byte(s) inside snapshot body"
        )
    return store
