"""The replicated state machine: a partitioned map with atomic commands.

One :class:`KvStore` instance is one replica's materialized state.
Determinism is the whole contract: ``apply`` is a pure function of
(current state, group, command), so replicas that apply the same
per-group command sequence — in any interleaving across groups — end
up byte-identical per group, which :meth:`digest` makes checkable.

Idempotence via watermarks
--------------------------

Recovery re-applies commands from three overlapping sources: the WAL
suffix past a snapshot, buffered live deliveries during a state
transfer, and the transferred snapshot itself.  Rather than make every
caller reason about exact cut points, ``apply`` is idempotent: each
command carries ``(client_id, request_id)``, request ids are issued
monotonically per client, and a client's commands for one group travel
FIFO through that group's total order.  The store therefore keeps a
per-``(group, client)`` high-watermark and silently skips any command
at or below it.  Overlapping replays become harmless; only genuinely
new commands mutate state.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.kv.commands import (
    CAS,
    DELETE,
    GET,
    PUT,
    KvCommand,
    KvResult,
)


class KvStore:
    """Deterministic partitioned key-value state."""

    def __init__(self) -> None:
        #: group -> key -> value.
        self.data: Dict[str, Dict[str, bytes]] = {}
        #: group -> commands actually applied (duplicates excluded).
        self.applied_counts: Dict[str, int] = {}
        #: (group, client_id) -> highest applied request_id.
        self.watermarks: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------

    def apply(self, group: str, command: KvCommand) -> Optional[KvResult]:
        """Apply ``command`` to ``group``; ``None`` means duplicate.

        Transactions are atomic: every CAS in the op list must pass
        against the state *as mutated by the preceding ops*; the first
        failure aborts the whole command with no writes (``ok=False``
        results still report the values each op observed).
        """
        mark = (group, command.client_id)
        if command.request_id <= self.watermarks.get(mark, -1):
            return None
        self.watermarks[mark] = command.request_id
        self.applied_counts[group] = self.applied_counts.get(group, 0) + 1

        partition = self.data.setdefault(group, {})
        # Mutate in place, logging per-key undo state so an aborted
        # transaction (a failed CAS) rolls back exactly.  Staging by
        # copying the whole partition would be O(partition size) per
        # command — quadratic over a run, and fatal at the bench's
        # multi-million-key scale; the undo log is O(keys touched).
        undo: List[Tuple[str, bool, Optional[bytes]]] = []
        values: List[Optional[bytes]] = []
        applied: List[bool] = []
        ok = True
        for op in command.ops:
            current = partition.get(op.key)
            if op.kind == GET:
                values.append(current)
                applied.append(False)
            elif op.kind == PUT:
                undo.append((op.key, op.key in partition, current))
                partition[op.key] = op.value or b""
                values.append(op.value)
                applied.append(True)
            elif op.kind == DELETE:
                existed = op.key in partition
                if existed:
                    undo.append((op.key, True, current))
                    del partition[op.key]
                values.append(current)
                applied.append(existed)
            elif op.kind == CAS:
                if current == op.expected:
                    undo.append((op.key, op.key in partition, current))
                    partition[op.key] = op.value or b""
                    values.append(op.value)
                    applied.append(True)
                else:
                    values.append(current)
                    applied.append(False)
                    ok = False
                    break
            else:  # pragma: no cover - encoder rejects unknown kinds
                raise AssertionError(f"unreachable op kind {op.kind}")
        if not ok:
            for key, existed, prior in reversed(undo):
                if existed:
                    partition[key] = prior  # type: ignore[assignment]
                else:
                    partition.pop(key, None)
        return KvResult(ok=ok, values=tuple(values), applied=tuple(applied))

    # ------------------------------------------------------------------

    def value(self, group: str, key: str) -> Optional[bytes]:
        return self.data.get(group, {}).get(key)

    def total_applied(self) -> int:
        """Commands applied across every group (the state-transfer
        donor-election ordering: states on one primary lineage are
        stream prefixes, so longer == strictly more complete)."""
        return sum(self.applied_counts.values())

    def digest(self, groups: Optional[Iterable[str]] = None) -> str:
        """A byte-stable hash of the store state.

        Covers values, applied counts, and watermarks over ``groups``
        (default: every group present), in sorted order — two replicas
        converged iff their digests over the same group set match.
        """
        wanted = (
            sorted(set(self.data) | set(self.applied_counts))
            if groups is None
            else sorted(groups)
        )
        hasher = hashlib.sha256()
        for group in wanted:
            gname = group.encode("utf-8")
            hasher.update(struct.pack("!H", len(gname)))
            hasher.update(gname)
            hasher.update(struct.pack("!Q", self.applied_counts.get(group, 0)))
            partition = self.data.get(group, {})
            hasher.update(struct.pack("!I", len(partition)))
            for key in sorted(partition):
                kname = key.encode("utf-8")
                hasher.update(struct.pack("!H", len(kname)))
                hasher.update(kname)
                value = partition[key]
                hasher.update(struct.pack("!I", len(value)))
                hasher.update(value)
            marks = sorted(
                (client, reqid)
                for (g, client), reqid in self.watermarks.items()
                if g == group
            )
            hasher.update(struct.pack("!I", len(marks)))
            for client, reqid in marks:
                hasher.update(struct.pack("!IQ", client, reqid))
        return hasher.hexdigest()

    def copy(self) -> "KvStore":
        """A deep, independent copy (state transfer hands these out)."""
        clone = KvStore()
        clone.data = {group: dict(items) for group, items in self.data.items()}
        clone.applied_counts = dict(self.applied_counts)
        clone.watermarks = dict(self.watermarks)
        return clone

    def __repr__(self) -> str:
        return (
            f"KvStore(groups={len(self.data)}, "
            f"keys={sum(len(p) for p in self.data.values())}, "
            f"applied={self.total_applied()})"
        )
