"""Write-ahead logging in the append-before-apply discipline.

A replica appends a redo record — the ordered command plus its target
group — *before* mutating in-memory state (:mod:`~repro.apps.kv.
replica`).  After a crash, replaying the snapshot plus the WAL suffix
reconstructs exactly the state the replica had durably committed to,
including commands appended but never applied in memory (the classic
crash-between-append-and-apply window the chaos suite exercises).

Record framing::

    record := length:u32  crc32(body):u32  body
    body   := group_len:u16 group  command_bytes

Recovery tolerates a torn tail: a record whose frame is truncated or
whose CRC does not match ends replay at the last good record — the
write simply never happened, which is the correct durability semantics
for an append that was racing a crash.  A bad record *followed by good
bytes* is different (that's corruption, not a torn write) and raises.

Two storage backends share the codec: :class:`MemoryWalStorage` models
the disk inside the simulator (it survives a replica crash/restart the
way a filesystem survives a process crash), and :class:`FileWalStorage`
writes real files for the CLI's ``recover-replay`` workflow.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.apps.kv.commands import (
    CommandError,
    KvCommand,
    decode_command,
    encode_command,
)
from repro.util.errors import ConfigurationError

_FRAME = struct.Struct("!II")
_U16 = struct.Struct("!H")


class WalCorruption(ConfigurationError):
    """Bad bytes in the *middle* of a WAL (not a torn tail)."""


@dataclass(frozen=True)
class WalRecord:
    """One redo record: an ordered command bound to its group."""

    group: str
    command: KvCommand


def encode_record(record: WalRecord) -> bytes:
    """Frame one record; byte-stable (pinned by the property tests)."""
    gname = record.group.encode("utf-8")
    if len(gname) > 0xFFFF:
        raise ConfigurationError(f"group name too long: {record.group!r}")
    body = _U16.pack(len(gname)) + gname + encode_command(record.command)
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def decode_body(body: bytes) -> WalRecord:
    (glen,) = _U16.unpack_from(body)
    if len(body) < _U16.size + glen:
        raise CommandError("record body shorter than its group name")
    group = body[_U16.size : _U16.size + glen].decode("utf-8")
    command = decode_command(body[_U16.size + glen :])
    return WalRecord(group=group, command=command)


def iter_records(data: bytes) -> Iterator[WalRecord]:
    """Yield records until the data ends or a torn tail is found.

    A frame that is incomplete, fails its CRC, or fails to parse stops
    iteration **iff it is the last frame** (a torn append).  Anywhere
    else it raises :class:`WalCorruption`.
    """
    pos = 0
    total = len(data)
    while pos < total:
        start = pos
        if pos + _FRAME.size > total:
            return  # torn: header itself incomplete
        length, crc = _FRAME.unpack_from(data, pos)
        pos += _FRAME.size
        if pos + length > total:
            return  # torn: body incomplete
        body = data[pos : pos + length]
        pos += length
        if zlib.crc32(body) != crc:
            if pos >= total:
                return  # torn: garbage tail
            raise WalCorruption(
                f"CRC mismatch at offset {start} with "
                f"{total - pos} byte(s) following"
            )
        try:
            record = decode_body(body)
        except CommandError as exc:
            if pos >= total:
                return
            raise WalCorruption(f"bad record at offset {start}: {exc}") from exc
        yield record


class MemoryWalStorage:
    """An in-memory 'disk': survives simulated process crashes."""

    def __init__(self, data: bytes = b"") -> None:
        self._buffer = bytearray(data)

    def append(self, data: bytes) -> None:
        self._buffer += data

    def read(self) -> bytes:
        return bytes(self._buffer)

    def replace(self, data: bytes) -> None:
        self._buffer = bytearray(data)

    def size(self) -> int:
        return len(self._buffer)


class FileWalStorage:
    """Real files for the CLI's durable runs and recover-replay."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, data: bytes) -> None:
        with open(self.path, "ab") as handle:
            handle.write(data)

    def read(self) -> bytes:
        try:
            return self.path.read_bytes()
        except FileNotFoundError:
            return b""

    def replace(self, data: bytes) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(self.path)

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0


class WriteAheadLog:
    """Append-only redo log over either storage backend."""

    def __init__(self, storage: Optional[object] = None) -> None:
        self.storage = storage if storage is not None else MemoryWalStorage()
        self.records_appended = 0

    def append(self, record: WalRecord) -> None:
        self.storage.append(encode_record(record))
        self.records_appended += 1

    def records(self) -> List[WalRecord]:
        """Every durable record, torn tail excluded."""
        return list(iter_records(self.storage.read()))

    def reset(self) -> None:
        """Drop the log (after its contents made it into a snapshot)."""
        self.storage.replace(b"")

    def size_bytes(self) -> int:
        return self.storage.size()
