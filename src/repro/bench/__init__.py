"""Benchmark harness regenerating every figure in the paper.

Each figure has a definition in :mod:`repro.bench.figures`, an execution
engine in :mod:`repro.bench.experiments`, and a pytest-benchmark target
under ``benchmarks/``.  Results are printed as paper-style series and
saved under ``benchmarks/results/``; EXPERIMENTS.md records paper-vs-
measured for each.
"""

from repro.bench.experiments import (
    ExperimentPoint,
    run_point,
    sweep_rates,
    run_max_throughput,
    run_loss_point,
    loss_sweep,
    positional_loss_sweep,
)
from repro.bench.report import format_table, save_results
from repro.bench.windows import window_for

__all__ = [
    "ExperimentPoint",
    "run_point",
    "sweep_rates",
    "run_max_throughput",
    "run_loss_point",
    "loss_sweep",
    "positional_loss_sweep",
    "format_table",
    "save_results",
    "window_for",
]
