"""Ablation experiments for the design choices the paper discusses.

These go beyond the paper's figures: each isolates one mechanism the
paper credits for the Accelerated Ring protocol's behaviour and measures
its contribution.

* **Accelerated window sweep** — §IV-A: "Accelerated windows of half to
  all of the Personal window yield good results"; sweeping the window
  from 0 (the original protocol) to the full personal window shows how
  much of the benefit each increment buys.
* **Priority method** — §III-D/E: the aggressive token-priority method
  vs. the production (post-token) method.
* **Switch buffering** — §I/§III-A: "The parallelism that gives us this
  performance improvement is enabled by the buffering of modern
  switches"; shrinking the per-port buffer should erode the accelerated
  protocol's advantage (overlapped bursts start dropping).
* **Jumbo frames** — §IV-B: carrying 8850-byte payloads in 9000-byte
  frames instead of fragmenting across 1500-byte frames "may improve
  performance further".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.bench.experiments import (
    NUM_HOSTS,
    ExperimentPoint,
    run_max_throughput,
    run_point,
)
from repro.core.config import ProtocolConfig, TokenPriorityMethod
from repro.net.params import GIGABIT, TEN_GIGABIT
from repro.sim.profiles import DAEMON, SPREAD
from repro.util.units import Mbps

Series = Dict[str, List[ExperimentPoint]]


def accelerated_window_sweep(
    personal_window: int = 30,
    rate_mbps: float = 600,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> Tuple[str, Series]:
    """Latency at a fixed rate as the Accelerated window grows from 0
    (the original protocol) to the full Personal window."""
    series: Series = {}
    for fraction in fractions:
        accel = int(round(personal_window * fraction))
        config = ProtocolConfig(
            personal_window=personal_window,
            accelerated_window=accel,
            global_window=personal_window * NUM_HOSTS,
            priority_method=TokenPriorityMethod.AGGRESSIVE
            if accel
            else TokenPriorityMethod.NEVER,
        )
        point = run_point(
            profile=SPREAD,
            accelerated=accel > 0,
            params=GIGABIT,
            rate_mbps=rate_mbps,
            config=config,
        )
        series[f"accel_window={accel}/{personal_window}"] = [point]
    return (
        f"Ablation: Accelerated window sweep (Spread, 1 GbE, {rate_mbps:.0f} Mbps, "
        f"Personal window {personal_window})",
        series,
    )


def priority_method_comparison(
    rates_mbps: Sequence[float] = (500, 1000, 1500, 2000),
) -> Tuple[str, Series]:
    """§III-D's two token-priority raising methods, on the 10 GbE fabric
    where token processing competes hardest with data processing."""
    series: Series = {}
    for method in (TokenPriorityMethod.AGGRESSIVE, TokenPriorityMethod.POST_TOKEN):
        config = ProtocolConfig(
            personal_window=30,
            accelerated_window=30,
            global_window=240,
            priority_method=method,
        )
        series[method.value] = [
            run_point(
                profile=DAEMON,
                accelerated=True,
                params=TEN_GIGABIT,
                rate_mbps=rate,
                config=config,
            )
            for rate in rates_mbps
        ]
    return ("Ablation: token priority method (daemon, 10 GbE)", series)


def switch_buffer_sweep(
    buffer_sizes: Sequence[int] = (4 * 1024, 8 * 1024, 32 * 1024, 64 * 1024, 256 * 1024),
) -> Tuple[str, Series]:
    """The accelerated protocol's dependence on switch buffering.

    Maximum throughput (closed-loop senders) as the per-port buffer
    shrinks: with deep buffers the overlapped pre/post-token bursts of
    consecutive senders interleave harmlessly; with shallow buffers they
    tail-drop, forcing retransmissions that erase the accelerated
    protocol's saturation advantage — the paper's "parallelism ...
    enabled by the buffering of modern switches" (§III-A), inverted.
    """
    series: Series = {}
    for buffer_bytes in buffer_sizes:
        params = replace(GIGABIT, switch_buffer_bytes=buffer_bytes)
        for accelerated in (False, True):
            name = f"{'accel' if accelerated else 'orig'}-{buffer_bytes // 1024}KiB"
            config = ProtocolConfig(
                personal_window=30,
                accelerated_window=30 if accelerated else 0,
                global_window=240,
            )
            series[name] = [
                run_max_throughput(
                    profile=SPREAD,
                    accelerated=accelerated,
                    params=params,
                    config=config,
                )
            ]
    return ("Ablation: switch buffer depth vs. max throughput (Spread, 1 GbE)", series)


def jumbo_frame_comparison() -> Tuple[str, Series]:
    """8850-byte payloads: kernel fragmentation over a 1500-byte MTU vs.
    9000-byte jumbo frames (paper §IV-B: jumbo frames "may improve
    performance further")."""
    series: Series = {}
    for mtu, label in ((1500, "mtu1500-fragmented"), (9000, "mtu9000-jumbo")):
        params = TEN_GIGABIT.with_mtu(mtu)
        series[label] = [
            run_max_throughput(
                profile=DAEMON,
                accelerated=True,
                params=params,
                payload_size=8850,
            )
        ]
    return ("Ablation: jumbo frames for 8850-byte payloads (daemon, 10 GbE)", series)
