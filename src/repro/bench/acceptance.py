"""Acceptance checks: do the regenerated figures match the paper's shapes?

DESIGN.md §4 lists the expected shape of every figure; this module
evaluates those criteria mechanically against the series saved under
``benchmarks/results/`` and produces a pass/fail report.  Run it after
``pytest benchmarks/ --benchmark-only`` via ``python -m repro verify``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.report import RESULTS_DIR


@dataclass(frozen=True)
class SeriesPoint:
    rate_mbps: float
    goodput_mbps: float
    latency_us: float
    worst5_us: float
    retransmissions: int


Series = Dict[str, List[SeriesPoint]]


def parse_results(text: str) -> Series:
    """Parse a saved figure file back into named series."""
    series: Series = {}
    current: Optional[str] = None
    lines = text.splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            current = None
            continue
        if set(stripped) == {"-"} and index > 0:
            name = lines[index - 1].strip()
            if name and not name.startswith("rate"):
                current = name
                series[current] = []
            continue
        if current is None or stripped.startswith(("rate", "=")):
            continue
        fields = stripped.split()
        if len(fields) != 5:
            continue
        try:
            series[current].append(
                SeriesPoint(
                    rate_mbps=float(fields[0]),
                    goodput_mbps=float(fields[1]),
                    latency_us=float(fields[2]),
                    worst5_us=float(fields[3]),
                    retransmissions=int(fields[4]),
                )
            )
        except ValueError:
            continue
    return {name: points for name, points in series.items() if points}


def load_figure(filename: str) -> Optional[Series]:
    path = os.path.join(RESULTS_DIR, filename)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return parse_results(handle.read())


def _max_goodput(points: List[SeriesPoint]) -> float:
    return max(point.goodput_mbps for point in points)


def _latency_at(points: List[SeriesPoint], rate: float) -> Optional[float]:
    for point in points:
        if abs(point.rate_mbps - rate) < 1.0:
            return point.latency_us
    return None


@dataclass(frozen=True)
class Criterion:
    figure: str
    description: str
    check: Callable[[Series], bool]


def _fig2_accel_dominates(series: Series) -> bool:
    """Every implementation's accelerated max goodput beats the original's."""
    for impl in ("library", "daemon", "spread"):
        if _max_goodput(series[f"{impl}-accel"]) <= _max_goodput(series[f"{impl}-orig"]):
            return False
    return True


def _fig2_simultaneous_win(series: Series) -> bool:
    """At 500 Mbps the accelerated protocol also has far lower latency."""
    orig = _latency_at(series["spread-orig"], 500)
    accel = _latency_at(series["spread-accel"], 500)
    return orig is not None and accel is not None and accel < orig * 0.7


def _fig4_hierarchy(series: Series) -> bool:
    """10 GbE separates the implementations: library > daemon > spread."""
    return (
        _max_goodput(series["library-accel"])
        > _max_goodput(series["daemon-accel"])
        > _max_goodput(series["spread-accel"])
    )


def _fig5_large_payloads_help_most_cpu_bound(series: Series) -> bool:
    gains = {}
    for impl in ("library", "daemon", "spread"):
        gains[impl] = _max_goodput(series[f"{impl}-8850B"]) / _max_goodput(
            series[f"{impl}-1350B"]
        )
    return gains["spread"] > gains["daemon"] > gains["library"] > 1.2


def _fig8_crossover(series: Series) -> bool:
    """Original wins at 100 Mbps; accelerated wins at 1000 Mbps."""
    low_orig = _latency_at(series["spread-orig"], 100)
    low_accel = _latency_at(series["spread-accel"], 100)
    high_orig = _latency_at(series["spread-orig"], 1000)
    high_accel = _latency_at(series["spread-accel"], 1000)
    return low_orig < low_accel and high_accel < high_orig


def _fig9_agreed_penalty_safe_parity(series: Series) -> bool:
    """Under loss at 480 Mbps/10GbE: accelerated Agreed pays a clear
    penalty; accelerated Safe stays within ~10% of the original."""
    agreed_orig = series["agreed-orig"][-1].latency_us
    agreed_accel = series["agreed-accel"][-1].latency_us
    safe_orig = series["safe-orig"][-1].latency_us
    safe_accel = series["safe-accel"][-1].latency_us
    return agreed_accel > agreed_orig * 1.2 and safe_accel < safe_orig * 1.10


def _fig12_accel_wins_under_loss_1g(series: Series) -> bool:
    """On 1 GbE at 350 Mbps the accelerated protocol wins at every loss
    rate for Safe delivery, by a large margin."""
    for orig, accel in zip(series["safe-orig"], series["safe-accel"]):
        if accel.latency_us >= orig.latency_us:
            return False
    return True


def _fig13_distance_monotone(series: Series) -> bool:
    """Latency grows with the ring distance between loser and source."""
    for points in series.values():
        if points[-1].latency_us <= points[0].latency_us:
            return False
    return True


def _headline_sanity(series: Series) -> bool:
    checks = [
        _max_goodput(series["1g-spread-accel"]) > 900,     # saturation
        _max_goodput(series["10g-library-accel"]) > 3800,
        _max_goodput(series["10g-spread-accel"]) > 1900,
        _max_goodput(series["10g-spread-accel-8850B"])
        > _max_goodput(series["10g-spread-accel"]) * 1.5,
    ]
    return all(checks)


CRITERIA: List[Criterion] = [
    Criterion("fig02.txt", "1GbE: accelerated max goodput beats original (all impls)",
              _fig2_accel_dominates),
    Criterion("fig02.txt", "1GbE @500Mbps: accelerated latency < 70% of original",
              _fig2_simultaneous_win),
    Criterion("fig04.txt", "10GbE hierarchy: library > daemon > spread",
              _fig4_hierarchy),
    Criterion("fig05.txt", "8850B gain ordered spread > daemon > library",
              _fig5_large_payloads_help_most_cpu_bound),
    Criterion("fig08.txt", "Safe/10GbE crossover: orig wins low rate, accel wins high",
              _fig8_crossover),
    Criterion("fig09.txt", "loss @480Mbps/10GbE: Agreed penalty, Safe parity",
              _fig9_agreed_penalty_safe_parity),
    Criterion("fig12.txt", "loss @350Mbps/1GbE: accelerated Safe wins at every rate",
              _fig12_accel_wins_under_loss_1g),
    Criterion("fig13.txt", "latency grows with loser-source ring distance",
              _fig13_distance_monotone),
    Criterion("headline.txt", "headline maxima in calibrated ranges",
              _headline_sanity),
]


def verify(results_dir: Optional[str] = None) -> Tuple[List[str], List[str], List[str]]:
    """Evaluate every criterion; returns (passed, failed, skipped) lines."""
    passed, failed, skipped = [], [], []
    for criterion in CRITERIA:
        if results_dir is not None:
            path = os.path.join(results_dir, criterion.figure)
            series = None
            if os.path.exists(path):
                with open(path) as handle:
                    series = parse_results(handle.read())
        else:
            series = load_figure(criterion.figure)
        label = f"{criterion.figure}: {criterion.description}"
        if series is None:
            skipped.append(label + " (no results file; run the benchmarks)")
            continue
        try:
            ok = criterion.check(series)
        except KeyError as exc:
            failed.append(label + f" (missing series {exc})")
            continue
        (passed if ok else failed).append(label)
    return passed, failed, skipped
