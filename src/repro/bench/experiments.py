"""Experiment execution: one simulated run per operating point.

Every run matches the paper's benchmark methodology (§IV-A): 8 servers,
one sending client per server injecting at a fixed aggregate rate, every
receiving client receiving all messages, average delivery latency
reported per throughput level; loss experiments additionally report the
mean over the worst 5% of messages from each sender.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.messages import DeliveryService
from repro.net.loss import LossModel, PositionalLoss, UniformLoss
from repro.net.params import NetworkParams
from repro.sim.build import ClusterBuilder
from repro.sim.cluster import RingCluster
from repro.sim.profiles import ImplementationProfile
from repro.util.units import Mbps, seconds_to_usec
from repro.workloads.generators import ClosedLoopWorkload, FixedRateWorkload

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

#: Setting REPRO_BENCH_FAST=1 shrinks measurement windows ~3x for smoke runs.
FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

WARMUP = 0.02 if FAST else 0.04
MEASURE = 0.03 if FAST else 0.08
NUM_HOSTS = 8


@dataclass(frozen=True)
class ExperimentPoint:
    """One operating point of one curve."""

    rate_mbps: float
    goodput_mbps: float
    latency_us: float
    worst5_us: float
    retransmissions: int
    token_rounds: int

    def row(self) -> List[str]:
        return [
            f"{self.rate_mbps:8.0f}",
            f"{self.goodput_mbps:9.1f}",
            f"{self.latency_us:9.1f}",
            f"{self.worst5_us:9.1f}",
            f"{self.retransmissions:7d}",
        ]


def _build_ring(
    accelerated: bool,
    profile: ImplementationProfile,
    params: NetworkParams,
    config: ProtocolConfig,
    loss_model: Optional[LossModel] = None,
    observer: Optional["ProtocolObserver"] = None,
) -> RingCluster:
    builder = (
        ClusterBuilder()
        .hosts(NUM_HOSTS)
        .accelerated(accelerated)
        .profile(profile)
        .network(params)
        .config(config)
    )
    if loss_model is not None:
        builder.loss(loss_model)
    if observer is not None:
        builder.observe(observer)
    return builder.build_ring()


def _run_cluster(
    cluster: RingCluster,
    workload,
    warmup: float,
    measure: float,
) -> ExperimentPoint:
    start = 0.002
    stop = start + warmup + measure
    workload.attach(cluster, start=start, stop=stop)
    cluster.set_measure_from(start + warmup)
    cluster.start()
    # Run past the injection stop so in-flight messages deliver.
    cluster.run(stop + 0.01)
    stats = cluster.aggregate()
    try:
        worst5 = seconds_to_usec(stats.per_sender_worst_5pct_mean)
    except ValueError:
        worst5 = 0.0
    rate = getattr(workload, "aggregate_rate_bps", 0.0) / 1e6
    return ExperimentPoint(
        rate_mbps=rate,
        goodput_mbps=stats.goodput_bps / 1e6,
        latency_us=seconds_to_usec(stats.mean_latency),
        worst5_us=worst5,
        retransmissions=stats.retransmissions,
        token_rounds=stats.token_rounds,
    )


def run_point(
    profile: ImplementationProfile,
    accelerated: bool,
    params: NetworkParams,
    rate_mbps: float,
    payload_size: int = 1350,
    service: DeliveryService = DeliveryService.AGREED,
    config: Optional[ProtocolConfig] = None,
    loss_model: Optional[LossModel] = None,
    warmup: float = WARMUP,
    measure: float = MEASURE,
    observer: Optional["ProtocolObserver"] = None,
) -> ExperimentPoint:
    """One fixed-rate run; returns the measured operating point.

    Pass an ``observer`` (e.g. :class:`~repro.obs.observer.MetricsObserver`)
    to collect protocol metrics alongside the benchmark numbers.
    """
    from repro.bench.windows import window_for

    config = config or window_for(profile, params, accelerated, payload_size)
    cluster = _build_ring(
        accelerated=accelerated,
        profile=profile,
        params=params,
        config=config,
        loss_model=loss_model,
        observer=observer,
    )
    workload = FixedRateWorkload(
        payload_size=payload_size,
        aggregate_rate_bps=Mbps(rate_mbps),
        service=service,
    )
    return _run_cluster(cluster, workload, warmup, measure)


def sweep_rates(
    profile: ImplementationProfile,
    accelerated: bool,
    params: NetworkParams,
    rates_mbps: Sequence[float],
    payload_size: int = 1350,
    service: DeliveryService = DeliveryService.AGREED,
) -> List[ExperimentPoint]:
    """The paper's core methodology: latency at increasing throughput."""
    return [
        run_point(
            profile=profile,
            accelerated=accelerated,
            params=params,
            rate_mbps=rate,
            payload_size=payload_size,
            service=service,
        )
        for rate in rates_mbps
    ]


def run_max_throughput(
    profile: ImplementationProfile,
    accelerated: bool,
    params: NetworkParams,
    payload_size: int = 1350,
    service: DeliveryService = DeliveryService.AGREED,
    config: Optional[ProtocolConfig] = None,
    observer: Optional["ProtocolObserver"] = None,
) -> ExperimentPoint:
    """Maximum sustainable goodput (closed-loop senders, §IV-A library
    methodology: send as much as flow control allows every round)."""
    from repro.bench.windows import window_for

    config = config or window_for(profile, params, accelerated, payload_size)
    cluster = _build_ring(
        accelerated=accelerated,
        profile=profile,
        params=params,
        config=config,
        observer=observer,
    )
    workload = ClosedLoopWorkload(payload_size=payload_size, service=service)
    return _run_cluster(cluster, workload, WARMUP, MEASURE)


def run_loss_point(
    accelerated: bool,
    params: NetworkParams,
    rate_mbps: float,
    loss_rate: float,
    profile: ImplementationProfile,
    service: DeliveryService = DeliveryService.AGREED,
    payload_size: int = 1350,
    seed: int = 7,
) -> ExperimentPoint:
    """One loss-experiment point (paper §IV-A4: each daemon drops a
    percentage of received data messages, independently)."""
    loss = UniformLoss(rate=loss_rate, seed=seed) if loss_rate > 0 else None
    # Loss needs longer measurement: retransmission latencies have heavy
    # tails and the worst-5% statistic needs samples.
    return run_point(
        profile=profile,
        accelerated=accelerated,
        params=params,
        rate_mbps=rate_mbps,
        payload_size=payload_size,
        service=service,
        loss_model=loss,
        warmup=WARMUP,
        measure=MEASURE * 2,
    )


def loss_sweep(
    accelerated: bool,
    params: NetworkParams,
    rate_mbps: float,
    loss_rates: Sequence[float],
    profile: ImplementationProfile,
    service: DeliveryService = DeliveryService.AGREED,
) -> List[ExperimentPoint]:
    return [
        run_loss_point(
            accelerated=accelerated,
            params=params,
            rate_mbps=rate_mbps,
            loss_rate=loss,
            profile=profile,
            service=service,
        )
        for loss in loss_rates
    ]


def positional_loss_sweep(
    accelerated: bool,
    params: NetworkParams,
    rate_mbps: float,
    distances: Sequence[int],
    profile: ImplementationProfile,
    service: DeliveryService = DeliveryService.AGREED,
    loss_rate: float = 0.2,
) -> List[ExperimentPoint]:
    """Fig. 13: each daemon loses ``loss_rate`` of the messages sent by
    the daemon ``distance`` ring positions before it."""
    from repro.bench.windows import window_for

    points = []
    ring_order = list(range(NUM_HOSTS))
    for distance in distances:
        loss = PositionalLoss(ring_order=ring_order, distance=distance, rate=loss_rate)
        config = window_for(profile, params, accelerated, 1350)
        cluster = _build_ring(
            accelerated=accelerated,
            profile=profile,
            params=params,
            config=config,
            loss_model=loss,
        )
        workload = FixedRateWorkload(
            payload_size=1350,
            aggregate_rate_bps=Mbps(rate_mbps),
            service=service,
        )
        point = _run_cluster(cluster, workload, WARMUP, MEASURE * 2)
        points.append(point)
    return points
