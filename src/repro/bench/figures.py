"""Per-figure experiment definitions.

One function per figure in the paper's evaluation (§IV).  Each returns
``(title, series)`` where ``series`` maps curve names to lists of
:class:`~repro.bench.experiments.ExperimentPoint`.  The benchmark files
under ``benchmarks/`` are thin wrappers that run these and save the
rendered tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.experiments import (
    ExperimentPoint,
    loss_sweep,
    positional_loss_sweep,
    run_max_throughput,
    sweep_rates,
)
from repro.core.messages import DeliveryService
from repro.net.params import GIGABIT, TEN_GIGABIT
from repro.sim.profiles import DAEMON, LIBRARY, SPREAD

Series = Dict[str, List[ExperimentPoint]]

_PROFILES = (LIBRARY, DAEMON, SPREAD)

#: 1 GbE rate axis (Mbps), Figs. 2-3.
RATES_1G: Sequence[float] = (100, 300, 500, 700, 800, 900)

#: 10 GbE rate axes per implementation (Mbps), Figs. 4-7 — each list runs
#: up to just past that implementation's knee.
RATES_10G = {
    "library": (100, 500, 1000, 2000, 3000, 3700, 4200),
    "daemon": (100, 500, 1000, 1500, 2000, 2500, 3000),
    "spread": (100, 500, 1000, 1500, 1800, 2100),
}

#: 10 GbE rate axes for 8850-byte payloads (Figs. 5/7).
RATES_10G_LARGE = {
    "library": (500, 2000, 4000, 6000, 7000),
    "daemon": (500, 2000, 3500, 5000, 5800),
    "spread": (500, 1500, 3000, 4500, 5200),
}

#: Fig. 8 fine-grained low-throughput axis.
RATES_FIG8: Sequence[float] = (100, 200, 300, 400, 500, 600, 800, 1000)

#: Per-daemon loss rates for Figs. 9-12.
LOSS_RATES: Sequence[float] = (0.0, 0.01, 0.05, 0.10, 0.15, 0.20, 0.25)

#: Ring distances for Fig. 13.
DISTANCES: Sequence[int] = (1, 2, 3, 4, 5, 6, 7)


def _latency_figure(params, service, payload=1350, rates=None) -> Series:
    series: Series = {}
    for profile in _PROFILES:
        profile_rates = rates if rates is not None else (
            RATES_1G if params is GIGABIT else RATES_10G[profile.name]
        )
        for accelerated in (False, True):
            name = f"{profile.name}-{'accel' if accelerated else 'orig'}"
            series[name] = sweep_rates(
                profile=profile,
                accelerated=accelerated,
                params=params,
                rates_mbps=profile_rates,
                payload_size=payload,
                service=service,
            )
    return series


def fig02_agreed_1g() -> Tuple[str, Series]:
    """Fig. 2: Agreed delivery latency vs throughput, 1 Gb network."""
    return (
        "Fig 2: Agreed delivery latency vs. throughput, 1 Gb network (1350 B)",
        _latency_figure(GIGABIT, DeliveryService.AGREED),
    )


def fig03_safe_1g() -> Tuple[str, Series]:
    """Fig. 3: Safe delivery latency vs throughput, 1 Gb network."""
    return (
        "Fig 3: Safe delivery latency vs. throughput, 1 Gb network (1350 B)",
        _latency_figure(GIGABIT, DeliveryService.SAFE),
    )


def fig04_agreed_10g() -> Tuple[str, Series]:
    """Fig. 4: Agreed delivery latency vs throughput, 10 Gb network."""
    return (
        "Fig 4: Agreed delivery latency vs. throughput, 10 Gb network (1350 B)",
        _latency_figure(TEN_GIGABIT, DeliveryService.AGREED),
    )


def fig06_safe_10g() -> Tuple[str, Series]:
    """Fig. 6: Safe delivery latency vs throughput, 10 Gb network."""
    return (
        "Fig 6: Safe delivery latency vs. throughput, 10 Gb network (1350 B)",
        _latency_figure(TEN_GIGABIT, DeliveryService.SAFE),
    )


def _payload_figure(service) -> Series:
    """Figs. 5/7: accelerated protocol, 1350 B vs 8850 B payloads, 10 GbE."""
    series: Series = {}
    for profile in _PROFILES:
        series[f"{profile.name}-1350B"] = sweep_rates(
            profile=profile,
            accelerated=True,
            params=TEN_GIGABIT,
            rates_mbps=RATES_10G[profile.name],
            payload_size=1350,
            service=service,
        )
        series[f"{profile.name}-8850B"] = sweep_rates(
            profile=profile,
            accelerated=True,
            params=TEN_GIGABIT,
            rates_mbps=RATES_10G_LARGE[profile.name],
            payload_size=8850,
            service=service,
        )
    return series


def fig05_agreed_payload_10g() -> Tuple[str, Series]:
    """Fig. 5: Agreed latency, 1350 B vs 8850 B, 10 Gb network."""
    return (
        "Fig 5: Agreed delivery latency vs. throughput, 1350 B vs 8850 B, 10 Gb",
        _payload_figure(DeliveryService.AGREED),
    )


def fig07_safe_payload_10g() -> Tuple[str, Series]:
    """Fig. 7: Safe latency, 1350 B vs 8850 B, 10 Gb network."""
    return (
        "Fig 7: Safe delivery latency vs. throughput, 1350 B vs 8850 B, 10 Gb",
        _payload_figure(DeliveryService.SAFE),
    )


def fig08_safe_low_10g() -> Tuple[str, Series]:
    """Fig. 8: Safe latency at low throughputs, 10 GbE — the crossover
    where the original protocol beats the accelerated one."""
    series: Series = {}
    for accelerated in (False, True):
        name = f"spread-{'accel' if accelerated else 'orig'}"
        series[name] = sweep_rates(
            profile=SPREAD,
            accelerated=accelerated,
            params=TEN_GIGABIT,
            rates_mbps=RATES_FIG8,
            payload_size=1350,
            service=DeliveryService.SAFE,
        )
    return ("Fig 8: Safe delivery latency for low throughputs, 10 Gb network", series)


def _loss_figure(params, rate_mbps: float) -> Series:
    series: Series = {}
    for service in (DeliveryService.AGREED, DeliveryService.SAFE):
        for accelerated in (False, True):
            name = f"{service.name.lower()}-{'accel' if accelerated else 'orig'}"
            series[name] = loss_sweep(
                accelerated=accelerated,
                params=params,
                rate_mbps=rate_mbps,
                loss_rates=LOSS_RATES,
                profile=DAEMON,
                service=service,
            )
    return series


def fig09_loss_480_10g() -> Tuple[str, Series]:
    """Fig. 9: Latency vs loss, 480 Mbps goodput, 10 Gb network."""
    return (
        "Fig 9: Latency vs. loss, 480 Mbps goodput, 10 Gb network (daemon)",
        _loss_figure(TEN_GIGABIT, 480),
    )


def fig10_loss_1200_10g() -> Tuple[str, Series]:
    """Fig. 10: Latency vs loss, 1200 Mbps goodput, 10 Gb network."""
    return (
        "Fig 10: Latency vs. loss, 1200 Mbps goodput, 10 Gb network (daemon)",
        _loss_figure(TEN_GIGABIT, 1200),
    )


def fig11_loss_140_1g() -> Tuple[str, Series]:
    """Fig. 11: Latency vs loss, 140 Mbps goodput, 1 Gb network."""
    return (
        "Fig 11: Latency vs. loss, 140 Mbps goodput, 1 Gb network (daemon)",
        _loss_figure(GIGABIT, 140),
    )


def fig12_loss_350_1g() -> Tuple[str, Series]:
    """Fig. 12: Latency vs loss, 350 Mbps goodput, 1 Gb network."""
    return (
        "Fig 12: Latency vs. loss, 350 Mbps goodput, 1 Gb network (daemon)",
        _loss_figure(GIGABIT, 350),
    )


def fig13_positional_loss() -> Tuple[str, Series]:
    """Fig. 13: effect of the ring distance between the daemon losing
    messages and the daemon it loses from (20% positional loss)."""
    series: Series = {}
    for service in (DeliveryService.AGREED, DeliveryService.SAFE):
        for accelerated in (False, True):
            name = f"{service.name.lower()}-{'accel' if accelerated else 'orig'}"
            series[name] = positional_loss_sweep(
                accelerated=accelerated,
                params=TEN_GIGABIT,
                rate_mbps=480,
                distances=DISTANCES,
                profile=DAEMON,
                service=service,
            )
    return (
        "Fig 13: Latency vs. ring distance between loser and source "
        "(20% positional loss, 480 Mbps, 10 Gb, daemon)",
        series,
    )


def headline_max_throughput() -> Tuple[str, Series]:
    """The §I/§IV headline numbers: maximum goodput per implementation,
    protocol, network, and payload size."""
    series: Series = {}
    for params, net in ((GIGABIT, "1g"), (TEN_GIGABIT, "10g")):
        for profile in _PROFILES:
            for accelerated in (False, True):
                name = f"{net}-{profile.name}-{'accel' if accelerated else 'orig'}"
                series[name] = [
                    run_max_throughput(
                        profile=profile,
                        accelerated=accelerated,
                        params=params,
                        payload_size=1350,
                    )
                ]
    for profile in _PROFILES:
        series[f"10g-{profile.name}-accel-8850B"] = [
            run_max_throughput(
                profile=profile,
                accelerated=True,
                params=TEN_GIGABIT,
                payload_size=8850,
            )
        ]
    return ("Headline maximum throughputs (closed-loop senders)", series)
