"""Regression-gated benchmark harness.

Runs a named *suite* of benchmark cases, emits a ``BENCH_<suite>.json``
results file, and optionally compares it against a committed baseline,
exiting nonzero on regression.  Designed to be run three ways:

* ``repro bench --suite smoke --check-baseline`` (the CLI subcommand),
* ``python benchmarks/harness.py --suite headline`` (thin wrapper),
* from CI, where the ``perf-smoke`` job gates merges on the smoke suite.

Two kinds of metric get two kinds of tolerance:

* **Deterministic simulation metrics** — ``events_processed``,
  ``goodput_mbps``, ``latency_us`` — are reproducible bit-for-bit on any
  machine (the simulator is seeded and single-threaded), so they are
  compared near-exactly (relative tolerance ``REPRO_BENCH_EXACT_TOL``,
  default 1e-6).  A drift here means the protocol or simulator *behavior*
  changed, not the hardware.
* **Wall-clock metrics** — ``events_per_sec``, ``wall_time_s`` — vary
  with the machine, so only large regressions fail: the run fails when
  ``events_per_sec`` drops more than ``REPRO_BENCH_WALL_TOL`` (default
  0.5, i.e. half) below the baseline.

Suites hardcode their measurement windows rather than reading
``REPRO_BENCH_FAST`` so the deterministic metrics in a committed baseline
mean the same thing on every machine and in CI.
"""

from __future__ import annotations

import gc
import json
import os
import resource
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.messages import DeliveryService
from repro.net.params import GIGABIT, TEN_GIGABIT, NetworkParams
from repro.sim.build import ClusterBuilder
from repro.sim.cluster import RingCluster
from repro.sim.profiles import LIBRARY, ImplementationProfile
from repro.util.units import Mbps
from repro.workloads.generators import ClosedLoopWorkload, FixedRateWorkload

#: Relative tolerance for deterministic simulation metrics.
EXACT_TOL = float(os.environ.get("REPRO_BENCH_EXACT_TOL", "1e-6"))
#: Allowed fractional drop in events/sec before a wall-clock regression.
WALL_TOL = float(os.environ.get("REPRO_BENCH_WALL_TOL", "0.5"))
#: Default repeat count per case (medians are reported).
DEFAULT_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

#: Metrics compared near-exactly (simulator-deterministic).
DETERMINISTIC_METRICS = ("events_processed", "goodput_mbps", "latency_us")

NUM_HOSTS = 8


@dataclass(frozen=True)
class BenchCase:
    """One benchmark case: a cluster/workload builder plus its windows."""

    name: str
    build: Callable[[], Tuple[RingCluster, object]]
    warmup: float
    measure: float


@dataclass(frozen=True)
class CaseResult:
    """Median-of-repeats measurements for one case."""

    name: str
    events_processed: int
    wall_time_s: float
    events_per_sec: float
    goodput_mbps: float
    latency_us: float
    peak_rss_kb: int
    repeats: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "events_processed": self.events_processed,
            "wall_time_s": round(self.wall_time_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "goodput_mbps": round(self.goodput_mbps, 3),
            "latency_us": round(self.latency_us, 3),
            "peak_rss_kb": self.peak_rss_kb,
            "repeats": self.repeats,
        }


# ----------------------------------------------------------------------
# Case builders
# ----------------------------------------------------------------------


def _closed_loop(
    profile: ImplementationProfile,
    params: NetworkParams,
    payload_size: int = 1350,
    service: DeliveryService = DeliveryService.AGREED,
) -> Callable[[], Tuple[RingCluster, object]]:
    def build() -> Tuple[RingCluster, object]:
        from repro.bench.windows import window_for

        config = window_for(profile, params, True, payload_size)
        cluster = (
            ClusterBuilder()
            .hosts(NUM_HOSTS)
            .profile(profile)
            .network(params)
            .config(config)
            .build_ring()
        )
        workload = ClosedLoopWorkload(payload_size=payload_size, service=service)
        return cluster, workload

    return build


def _fixed_rate(
    profile: ImplementationProfile,
    params: NetworkParams,
    rate_mbps: float,
    payload_size: int = 1350,
    service: DeliveryService = DeliveryService.AGREED,
) -> Callable[[], Tuple[RingCluster, object]]:
    def build() -> Tuple[RingCluster, object]:
        from repro.bench.windows import window_for

        config = window_for(profile, params, True, payload_size)
        cluster = (
            ClusterBuilder()
            .hosts(NUM_HOSTS)
            .profile(profile)
            .network(params)
            .config(config)
            .build_ring()
        )
        workload = FixedRateWorkload(
            payload_size=payload_size,
            aggregate_rate_bps=Mbps(rate_mbps),
            service=service,
        )
        return cluster, workload

    return build


def _coalesced_closed_loop(
    messages_per_datagram: int,
    params: NetworkParams = TEN_GIGABIT,
    payload_size: int = 1350,
) -> Callable[[], Tuple[RingCluster, object]]:
    """The max-throughput closed loop with wire coalescing enabled.

    Sweeping ``messages_per_datagram`` is the proof for the datagram
    coalescing layer: each step up collapses a run of per-message send
    and receive CPU tasks into one, so goodput rises and latency falls
    while the event loop does the same simulated window of work.
    """

    def build() -> Tuple[RingCluster, object]:
        from dataclasses import replace

        from repro.bench.windows import window_for

        config = replace(
            window_for(LIBRARY, params, True, payload_size),
            messages_per_datagram=messages_per_datagram,
        )
        cluster = (
            ClusterBuilder()
            .hosts(NUM_HOSTS)
            .profile(LIBRARY)
            .network(params)
            .config(config)
            .build_ring()
        )
        workload = ClosedLoopWorkload(payload_size=payload_size)
        return cluster, workload

    return build


def _multiring_closed_loop(
    num_rings: int,
    hosts_per_ring: int = 4,
    payload_size: int = 1350,
) -> Callable[[], Tuple[object, object]]:
    """N independent rings sharing one simulator, every sender saturated.

    The scaling proof: with closed-loop senders each ring runs at its
    maximum sustainable rate, so a cluster of N rings should process
    close to N× the simulated ordering work (``events_processed``,
    aggregate ``goodput_mbps``) of one ring in the same simulated
    window.  Those are deterministic metrics — the baseline gate holds
    them bit-stable — whereas wall-clock events/sec cannot double on a
    single interpreter and is gated only by the loose wall tolerance.
    """

    def build() -> Tuple[object, object]:
        from repro.bench.windows import window_for

        config = window_for(LIBRARY, GIGABIT, True, payload_size)
        cluster = (
            ClusterBuilder()
            .rings(num_rings)
            .hosts(hosts_per_ring)
            .protocol()
            .profile(LIBRARY)
            .network(GIGABIT)
            .config(config)
            .build_multiring()
        )
        workload = ClosedLoopWorkload(payload_size=payload_size)
        return cluster, workload

    return build


def _fabric_closed_loop(
    racks: int = 0,
    oversubscription: float = 2.0,
    impair_name: str = "",
    params: NetworkParams = GIGABIT,
    payload_size: int = 1350,
) -> Callable[[], Tuple[RingCluster, object]]:
    """The closed loop on a leaf–spine fabric (``racks == 0`` = star).

    The fabric suite's comparison: the same engine and windows on a
    single switch, across an oversubscribed two-rack fabric, and with a
    reordering impairment layered on top.  Everything except the network
    is held fixed, so the deltas isolate the fabric's trunk serialization
    and the protocol's tolerance of displaced arrivals.  The impairment
    model is constructed fresh inside ``build()`` — ``run_case`` repeats
    the case and asserts determinism, which a reused RNG would break.
    """

    def build() -> Tuple[RingCluster, object]:
        from repro.bench.windows import window_for

        config = window_for(LIBRARY, params, True, payload_size)
        builder = (
            ClusterBuilder()
            .hosts(NUM_HOSTS)
            .profile(LIBRARY)
            .network(params)
            .config(config)
        )
        if racks:
            from repro.net.fabric import LeafSpineSpec

            builder.fabric(
                LeafSpineSpec(
                    racks=racks,
                    hosts_per_rack=NUM_HOSTS // racks,
                    oversubscription=oversubscription,
                )
            )
        if impair_name:
            from repro.net.impair import impairment_from_name

            builder.impair(impairment_from_name(impair_name, seed=0))
        cluster = builder.build_ring()
        workload = ClosedLoopWorkload(payload_size=payload_size)
        return cluster, workload

    return build


SUITES: Dict[str, List[BenchCase]] = {
    # Fast enough for a CI gate (~seconds): short windows, two regimes.
    "smoke": [
        BenchCase(
            name="agreed-1g-200",
            build=_fixed_rate(LIBRARY, GIGABIT, rate_mbps=200.0),
            warmup=0.01,
            measure=0.02,
        ),
        BenchCase(
            name="closed-loop-10g",
            build=_closed_loop(LIBRARY, TEN_GIGABIT),
            warmup=0.005,
            measure=0.01,
        ),
    ],
    # The full-size engine benchmark: the paper's library methodology at
    # maximum sustainable throughput.  Its events_per_sec is the number
    # the hot-path optimization work is gated on.
    "headline": [
        BenchCase(
            name="max-throughput-10g",
            build=_closed_loop(LIBRARY, TEN_GIGABIT),
            warmup=0.04,
            measure=0.08,
        ),
        BenchCase(
            name="agreed-1g-500",
            build=_fixed_rate(LIBRARY, GIGABIT, rate_mbps=500.0),
            warmup=0.04,
            measure=0.08,
        ),
        BenchCase(
            name="safe-10g",
            build=_closed_loop(
                LIBRARY, TEN_GIGABIT, service=DeliveryService.SAFE
            ),
            warmup=0.04,
            measure=0.08,
        ),
        # The datagram-coalescing sweep (ISSUE 8): max-throughput-10g is
        # the messages_per_datagram=1 anchor of this curve; the gated
        # expectation is goodput rising monotonically along it.
        BenchCase(
            name="batch-10g-mpd2",
            build=_coalesced_closed_loop(2),
            warmup=0.04,
            measure=0.08,
        ),
        BenchCase(
            name="batch-10g-mpd4",
            build=_coalesced_closed_loop(4),
            warmup=0.04,
            measure=0.08,
        ),
        BenchCase(
            name="batch-10g-mpd8",
            build=_coalesced_closed_loop(8),
            warmup=0.04,
            measure=0.08,
        ),
    ],
    # Multi-ring scaling: the same closed-loop engine at 1, 2, and 4
    # rings.  Near-linear scaling of the deterministic work metrics is
    # the acceptance gate for the sharded-ordering layer (ISSUE 6);
    # benchmarks/bench_scaling.py asserts the ratios.
    # Fabric topologies (ISSUE 9): the identical closed loop on a single
    # switch, a 2:1-oversubscribed two-rack leaf–spine, and the fabric
    # with a reordering impairment — the deltas isolate trunk
    # serialization and reorder tolerance.
    "fabric": [
        BenchCase(
            name="star-1g",
            build=_fabric_closed_loop(racks=0),
            warmup=0.01,
            measure=0.02,
        ),
        BenchCase(
            name="leafspine-2x4",
            build=_fabric_closed_loop(racks=2, oversubscription=2.0),
            warmup=0.01,
            measure=0.02,
        ),
        BenchCase(
            name="leafspine-reorder",
            build=_fabric_closed_loop(
                racks=2, oversubscription=2.0, impair_name="reorder"
            ),
            warmup=0.01,
            measure=0.02,
        ),
    ],
    "scaling": [
        BenchCase(
            name="rings-1",
            build=_multiring_closed_loop(1),
            warmup=0.01,
            measure=0.02,
        ),
        BenchCase(
            name="rings-2",
            build=_multiring_closed_loop(2),
            warmup=0.01,
            measure=0.02,
        ),
        BenchCase(
            name="rings-4",
            build=_multiring_closed_loop(4),
            warmup=0.01,
            measure=0.02,
        ),
    ],
}


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def run_case(case: BenchCase, repeats: int = DEFAULT_REPEATS) -> CaseResult:
    """Run one case ``repeats`` times; report medians.

    The wall clock covers only ``cluster.run`` (the event loop), not
    cluster construction.  The deterministic metrics are identical across
    repeats by construction; this is asserted, since a repeat-to-repeat
    drift would mean hidden global state.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    walls: List[float] = []
    events: List[int] = []
    goodputs: List[float] = []
    latencies: List[float] = []
    for _ in range(repeats):
        cluster, workload = case.build()
        start = 0.002
        stop = start + case.warmup + case.measure
        workload.attach(cluster, start=start, stop=stop)
        cluster.set_measure_from(start + case.warmup)
        cluster.start()
        # Collect garbage from the previous repeat so its timing noise
        # does not land inside this repeat's measured window.
        gc.collect()
        t0 = time.perf_counter()
        cluster.run(stop + 0.01)
        walls.append(time.perf_counter() - t0)
        events.append(cluster.sim.events_processed)
        stats = cluster.aggregate()
        goodputs.append(stats.goodput_bps / 1e6)
        latencies.append(stats.mean_latency * 1e6)
    if len(set(events)) != 1:
        raise RuntimeError(
            f"case {case.name}: events_processed varied across repeats "
            f"({sorted(set(events))}) — the simulation is not deterministic"
        )
    wall = statistics.median(walls)
    return CaseResult(
        name=case.name,
        events_processed=events[0],
        wall_time_s=wall,
        events_per_sec=events[0] / wall if wall > 0 else 0.0,
        goodput_mbps=statistics.median(goodputs),
        latency_us=statistics.median(latencies),
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        repeats=repeats,
    )


def profile_case(case: BenchCase, path: Path, top: int = 25) -> None:
    """Run one extra, profiled repetition of ``case`` and dump the top
    ``top`` functions by cumulative time to ``path``.

    The profiled run is separate from the measured repeats — cProfile
    instrumentation roughly doubles the wall clock, so its numbers never
    land in the results document; it exists to show *where* the wall
    clock of the adjacent ``BENCH_<suite>.json`` went.
    """
    import cProfile
    import io
    import pstats

    cluster, workload = case.build()
    start = 0.002
    stop = start + case.warmup + case.measure
    workload.attach(cluster, start=start, stop=stop)
    cluster.set_measure_from(start + case.warmup)
    cluster.start()
    gc.collect()
    profiler = cProfile.Profile()
    profiler.enable()
    cluster.run(stop + 0.01)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buffer.getvalue())


def profile_path(suite: str, case_name: str, output: Path) -> Path:
    """Where the profile dump for ``case_name`` goes: next to the
    results JSON, named after it."""
    return output.parent / f"PROFILE_{suite}_{case_name}.txt"


def select_cases(suite: str, cases: Optional[List[str]] = None) -> List[BenchCase]:
    """The suite's cases, optionally restricted to named ones (in suite
    order).  Unknown names are an error, not a silent skip."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; have {sorted(SUITES)}")
    available = SUITES[suite]
    if cases is None:
        return list(available)
    known = {case.name for case in available}
    unknown = sorted(set(cases) - known)
    if unknown:
        raise ValueError(
            f"unknown case(s) {unknown} in suite {suite!r}; have {sorted(known)}"
        )
    wanted = set(cases)
    return [case for case in available if case.name in wanted]


def run_suite(
    suite: str,
    repeats: int = DEFAULT_REPEATS,
    progress: Optional[Callable[[str], None]] = None,
    case_names: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run every (selected) case in ``suite``; returns the results
    document."""
    cases: Dict[str, Dict[str, object]] = {}
    for case in select_cases(suite, case_names):
        if progress is not None:
            progress(f"running {suite}/{case.name} ({repeats} repeats)...")
        result = run_case(case, repeats=repeats)
        cases[case.name] = result.to_dict()
        if progress is not None:
            progress(
                f"  {case.name}: {result.events_per_sec:,.0f} events/s, "
                f"goodput {result.goodput_mbps:.1f} Mbps, "
                f"latency {result.latency_us:.1f} us"
            )
    return {"suite": suite, "repeats": repeats, "cases": cases}


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------


def compare_results(
    current: Dict[str, object],
    baseline: Dict[str, object],
    exact_tol: float = EXACT_TOL,
    wall_tol: float = WALL_TOL,
) -> List[str]:
    """Compare a results document against a baseline document.

    Returns a list of human-readable regression messages; empty means the
    run is within tolerance.  Deterministic metrics use a near-exact
    relative tolerance in both directions (any drift is a behavior
    change); wall-clock throughput only fails on a *drop* beyond
    ``wall_tol`` (getting faster is never a regression).
    """
    problems: List[str] = []
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for metric in DETERMINISTIC_METRICS:
            expected = base.get(metric)
            if expected is None:
                continue
            actual = cur.get(metric)
            if actual is None:
                problems.append(f"{name}: metric {metric} missing")
                continue
            if expected == 0:
                drift = abs(actual)
            else:
                drift = abs(actual - expected) / abs(expected)
            if drift > exact_tol:
                problems.append(
                    f"{name}: {metric} drifted {drift:.2%} "
                    f"(baseline {expected}, got {actual}) — deterministic "
                    f"metrics must match the committed baseline"
                )
        expected_rate = base.get("events_per_sec")
        if expected_rate:
            actual_rate = cur.get("events_per_sec", 0.0)
            floor = expected_rate * (1.0 - wall_tol)
            if actual_rate < floor:
                problems.append(
                    f"{name}: events_per_sec regressed to {actual_rate:,.0f} "
                    f"(baseline {expected_rate:,.0f}, floor {floor:,.0f} at "
                    f"tolerance {wall_tol:.0%})"
                )
    return problems


def results_path(suite: str, directory: Optional[Path] = None) -> Path:
    base = directory if directory is not None else Path(".")
    return base / f"BENCH_{suite}.json"


def baseline_path(suite: str, root: Optional[Path] = None) -> Path:
    base = root if root is not None else Path(".")
    return base / "benchmarks" / "baselines" / f"BENCH_{suite}.json"


def save_results(results: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


def load_results(path: Path) -> Dict[str, object]:
    return json.loads(path.read_text())


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``repro bench`` and ``benchmarks/harness.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="run a benchmark suite and gate on a committed baseline"
    )
    parser.add_argument(
        "--suite", default="smoke", choices=sorted(SUITES), help="suite to run"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repetitions per case (medians reported)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="results file (default BENCH_<suite>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default benchmarks/baselines/BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="compare against the baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the results over the baseline file as the new baseline",
    )
    parser.add_argument(
        "--cases",
        default=None,
        help="comma-separated case names to run (default: the whole "
        "suite); baseline comparison restricts itself to the selection",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after the measured repeats, run one cProfile'd repetition "
        "per case and write the top-25 cumulative functions to "
        "PROFILE_<suite>_<case>.txt next to the results file",
    )
    args = parser.parse_args(argv)
    return run_from_args(
        suite=args.suite,
        repeats=args.repeats,
        output=args.output,
        baseline=args.baseline,
        check_baseline=args.check_baseline,
        update_baseline=args.update_baseline,
        cases=args.cases.split(",") if args.cases else None,
        profile=args.profile,
    )


def run_from_args(
    suite: str,
    repeats: int = DEFAULT_REPEATS,
    output: Optional[Path] = None,
    baseline: Optional[Path] = None,
    check_baseline: bool = False,
    update_baseline: bool = False,
    cases: Optional[List[str]] = None,
    profile: bool = False,
) -> int:
    if suite not in SUITES:
        print(f"unknown suite {suite!r}; available: {', '.join(sorted(SUITES))}")
        return 2
    try:
        results = run_suite(suite, repeats=repeats, progress=print, case_names=cases)
    except ValueError as exc:
        print(str(exc))
        return 2
    out_path = output if output is not None else results_path(suite)
    save_results(results, out_path)
    print(f"wrote {out_path}")
    if profile:
        for case in select_cases(suite, cases):
            dump = profile_path(suite, case.name, out_path)
            print(f"profiling {suite}/{case.name} -> {dump}")
            profile_case(case, dump)
    base_path = baseline if baseline is not None else baseline_path(suite)
    if update_baseline:
        if cases is not None:
            print("--update-baseline needs the full suite, not --cases")
            return 2
        save_results(results, base_path)
        print(f"updated baseline {base_path}")
        return 0
    if check_baseline:
        if not base_path.exists():
            print(f"BASELINE MISSING: {base_path} — run with --update-baseline")
            return 1
        reference = load_results(base_path)
        if cases is not None:
            # A partial run is gated against the matching slice of the
            # committed baseline; the unselected cases are not "missing".
            reference = dict(reference)
            reference["cases"] = {
                name: metrics
                for name, metrics in reference.get("cases", {}).items()
                if name in set(cases)
            }
        problems = compare_results(results, reference)
        if problems:
            print(f"REGRESSIONS vs {base_path}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"within tolerance of baseline {base_path}")
    return 0
