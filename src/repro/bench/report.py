"""Benchmark reporting: paper-style series tables, saved to disk."""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.bench.experiments import ExperimentPoint

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Dict[str, List[ExperimentPoint]],
    x_label: str = "rate_mbps",
) -> str:
    """Render several curves of one figure as stacked tables."""
    blocks = [title, "=" * len(title)]
    headers = [x_label, "goodput", "lat_us", "worst5_us", "retrans"]
    for name, points in series.items():
        rows = [point.row() for point in points]
        blocks.append("")
        blocks.append(format_table(name, headers, rows))
    return "\n".join(blocks)


def save_results(filename: str, content: str) -> str:
    """Save a rendered figure under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    return path
