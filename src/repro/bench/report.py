"""Benchmark reporting: paper-style series tables, saved to disk.

Metrics collected by a :class:`~repro.obs.observer.MetricsObserver`
during a benchmark run can be rendered alongside the result tables
(:func:`format_metrics`) or saved as JSON next to the results
(:func:`save_metrics_json`).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.bench.experiments import ExperimentPoint
from repro.obs.export import render_table, save_json

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Dict[str, List[ExperimentPoint]],
    x_label: str = "rate_mbps",
) -> str:
    """Render several curves of one figure as stacked tables."""
    blocks = [title, "=" * len(title)]
    headers = [x_label, "goodput", "lat_us", "worst5_us", "retrans"]
    for name, points in series.items():
        rows = [point.row() for point in points]
        blocks.append("")
        blocks.append(format_table(name, headers, rows))
    return "\n".join(blocks)


def save_results(filename: str, content: str) -> str:
    """Save a rendered figure under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    return path


def format_metrics(source, title: str = "protocol metrics") -> str:
    """Render an observer's metrics (a :class:`~repro.obs.metrics.MetricsRegistry`
    or a snapshot dict) as a table matching the benchmark report style."""
    return render_table(source, title=title)


def save_metrics_json(filename: str, source) -> str:
    """Save an observer's metrics snapshot as JSON under
    ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    return save_json(path, source)
