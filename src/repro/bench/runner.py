"""Shared glue between figure definitions and pytest-benchmark targets."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.bench.experiments import ExperimentPoint
from repro.bench.report import format_series, save_results

FigureFn = Callable[[], Tuple[str, Dict[str, List[ExperimentPoint]]]]


def run_figure(benchmark, figure_fn: FigureFn, filename: str):
    """Run one figure exactly once under pytest-benchmark and save it.

    ``benchmark.pedantic`` with a single round: the simulation itself is
    deterministic, so repeated timing rounds would only re-measure the
    host machine, not the protocol.
    """
    title, series = benchmark.pedantic(figure_fn, rounds=1, iterations=1)
    text = format_series(title, series)
    path = save_results(filename, text)
    print("\n" + text)
    benchmark.extra_info["results_file"] = path
    for name, points in series.items():
        if points:
            knee = max(points, key=lambda p: p.goodput_mbps)
            benchmark.extra_info[f"{name}_max_goodput_mbps"] = round(knee.goodput_mbps, 1)
    return title, series
