"""Flow-control window selection for benchmarks.

Paper §IV-A: "A broad range of parameter settings provide good
performance.  Personal windows of a few tens (e.g. 20-40) of messages
with Accelerated windows of half to all of the Personal window yield
good results in all environments we tested.  ...  we report results with
the smallest Personal window and corresponding Accelerated window that
let the system reach its maximum throughput."

The selections below were made the same way, offline, with the
calibrated simulator: the smallest window in {10, 20, 30, 40} that
reaches each configuration's maximum throughput.  The accelerated
protocol uses an Accelerated window equal to the Personal window (the
prototypes' aggressive setting); the original protocol pins it to zero
by construction.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.net.params import NetworkParams
from repro.sim.profiles import ImplementationProfile

_PERSONAL = {
    # (profile name, is 10 gigabit, large payload) -> personal window
    ("library", False, False): 30,
    ("daemon", False, False): 30,
    ("spread", False, False): 30,
    ("library", True, False): 30,
    ("daemon", True, False): 30,
    ("spread", True, False): 30,
    ("library", True, True): 20,
    ("daemon", True, True): 20,
    ("spread", True, True): 20,
    ("library", False, True): 20,
    ("daemon", False, True): 20,
    ("spread", False, True): 20,
}


def window_for(
    profile: ImplementationProfile,
    params: NetworkParams,
    accelerated: bool,
    payload_size: int = 1350,
) -> ProtocolConfig:
    """The benchmark window configuration for one curve."""
    is_10g = params.rate_bps >= 5e9
    large = payload_size > 4000
    personal = _PERSONAL[(profile.name, is_10g, large)]
    return ProtocolConfig(
        personal_window=personal,
        accelerated_window=personal if accelerated else 0,
        global_window=personal * 8,
    )
