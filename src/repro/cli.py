"""Command-line interface.

``python -m repro <command>`` (or the ``accelring`` console script):

* ``demo`` — the quickstart comparison at one operating point.
* ``sweep`` — a latency-vs-throughput sweep (mini Fig. 2/4).
* ``maxtp`` — the headline maximum-throughput table.
* ``figure`` — regenerate one paper figure by number.
* ``chaos`` — run a named fault-injection scenario under EVS checking.
* ``soak`` — run many seeded random fault plans under EVS checking.
* ``conformance`` — differential oracle + bounded schedule exploration
  across the protocol variants.
* ``bench`` — run a benchmark suite, gated on a committed baseline.
* ``kv`` — the replicated KV store: fault-free runs, skewed benches,
  chaos scenarios with linearizability checking, WAL recover-replay.
* ``daemon`` — run a real daemon (UDP ring + unix client socket).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import run_max_throughput, run_point
from repro.bench.report import format_metrics, format_series, save_metrics_json
from repro.obs.observer import MetricsObserver
from repro.core.messages import DeliveryService
from repro.net.params import GIGABIT, TEN_GIGABIT
from repro.sim.profiles import PROFILES


def _params(name: str):
    return TEN_GIGABIT if name == "10g" else GIGABIT


def cmd_demo(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]
    params = _params(args.network)
    print(
        f"{args.profile} / {args.network} / {args.rate:.0f} Mbps / "
        f"{args.payload} B payloads / {args.service} delivery"
    )
    service = DeliveryService[args.service.upper()]
    want_metrics = args.metrics or args.metrics_json is not None
    for accelerated, label in ((False, "original"), (True, "accelerated")):
        observer = MetricsObserver() if want_metrics else None
        point = run_point(
            profile=profile,
            accelerated=accelerated,
            params=params,
            rate_mbps=args.rate,
            payload_size=args.payload,
            service=service,
            observer=observer,
        )
        print(
            f"  {label:12s} goodput {point.goodput_mbps:7.1f} Mbps   "
            f"latency {point.latency_us:8.1f} us   "
            f"worst-5% {point.worst5_us:8.1f} us"
        )
        if observer is not None:
            if args.metrics:
                print()
                print(format_metrics(observer.registry, title=f"{label} protocol metrics"))
                print()
            if args.metrics_json is not None:
                path = save_metrics_json(f"{args.metrics_json}-{label}.json", observer.registry)
                print(f"  metrics saved to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]
    params = _params(args.network)
    service = DeliveryService[args.service.upper()]
    rates = [float(rate) for rate in args.rates.split(",")]
    series = {}
    for accelerated in (False, True):
        name = "accelerated" if accelerated else "original"
        series[name] = [
            run_point(
                profile=profile,
                accelerated=accelerated,
                params=params,
                rate_mbps=rate,
                payload_size=args.payload,
                service=service,
            )
            for rate in rates
        ]
    print(
        format_series(
            f"latency vs throughput — {args.profile}, {args.network}, "
            f"{args.service}",
            series,
        )
    )
    return 0


def cmd_maxtp(args: argparse.Namespace) -> int:
    print(f"maximum goodput (closed-loop senders), payload {args.payload} B")
    print(f"{'profile':10s}{'network':>9s}{'original':>12s}{'accelerated':>14s}")
    for network in ("1g", "10g"):
        for name, profile in PROFILES.items():
            row = []
            for accelerated in (False, True):
                point = run_max_throughput(
                    profile=profile,
                    accelerated=accelerated,
                    params=_params(network),
                    payload_size=args.payload,
                )
                row.append(point.goodput_mbps)
            print(f"{name:10s}{network:>9s}{row[0]:>10.0f}Mb{row[1]:>12.0f}Mb")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.bench import figures

    table = {
        "2": figures.fig02_agreed_1g,
        "3": figures.fig03_safe_1g,
        "4": figures.fig04_agreed_10g,
        "5": figures.fig05_agreed_payload_10g,
        "6": figures.fig06_safe_10g,
        "7": figures.fig07_safe_payload_10g,
        "8": figures.fig08_safe_low_10g,
        "9": figures.fig09_loss_480_10g,
        "10": figures.fig10_loss_1200_10g,
        "11": figures.fig11_loss_140_1g,
        "12": figures.fig12_loss_350_1g,
        "13": figures.fig13_positional_loss,
        "headline": figures.headline_max_throughput,
    }
    if args.number not in table:
        print(f"unknown figure {args.number!r}; choose from {sorted(table)}",
              file=sys.stderr)
        return 2
    title, series = table[args.number]()
    print(format_series(title, series))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.bench.acceptance import verify

    passed, failed, skipped = verify()
    for line in passed:
        print(f"  PASS  {line}")
    for line in skipped:
        print(f"  SKIP  {line}")
    for line in failed:
        print(f"  FAIL  {line}")
    print()
    print(f"{len(passed)} passed, {len(failed)} failed, {len(skipped)} skipped")
    return 1 if failed else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, run_scenario

    if args.list or (args.scenario is None and not args.all):
        for name in sorted(SCENARIOS):
            print(f"  {name:16s} {SCENARIOS[name].summary}")
        return 0

    names = sorted(SCENARIOS) if args.all else [args.scenario]
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"unknown scenario {unknown[0]!r}; choose from {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2

    failures = 0
    for name in names:
        report = run_scenario(name, seed=args.seed)
        if args.json:
            print(report.to_json())
        else:
            status = "PASS" if report.ok else "FAIL"
            print(
                f"  {status}  {name:16s} seed={report.seed} "
                f"hosts={report.num_hosts} events={len(report.events)} "
                f"deliveries={sum(report.deliveries.values())} "
                f"sim_time={report.sim_time:.3f}s"
            )
            for violation in report.violations:
                print(f"        violation: {violation}")
        if not report.ok:
            failures += 1
    if not args.json:
        print()
        print(f"{len(names) - failures} passed, {failures} failed")
    return 1 if failures else 0


def cmd_soak(args: argparse.Namespace) -> int:
    import os

    from repro.faults.soak import Counterexample, run_soak

    if args.replay is not None:
        with open(args.replay, "r", encoding="utf-8") as handle:
            counterexample = Counterexample.from_json(handle.read())
        print(
            f"replaying counterexample: soak seed {counterexample.soak_seed} "
            f"case {counterexample.index} (seed={counterexample.seed}, "
            f"hosts={counterexample.num_hosts}, "
            f"events={len(counterexample.plan)})"
        )
        violation = counterexample.replay()
        if violation is None:
            print("  PASS  the failure no longer reproduces")
            return 0
        print("  FAIL  violation reproduces:")
        for line in violation.splitlines():
            print(f"        {line}")
        return 1

    def progress(case) -> None:
        if case.violation is not None:
            print(f"  case {case.index}: VIOLATION (seed={case.seed})")
        elif (case.index + 1) % 25 == 0 or case.index + 1 == args.plans:
            print(f"  {case.index + 1}/{args.plans} plans checked")

    report = run_soak(
        plans=args.plans,
        num_hosts=args.hosts,
        seed=args.seed,
        max_steps=args.max_steps,
        minimize=not args.no_minimize,
        fabric_racks=args.fabric_racks,
        impair=args.impair,
        progress=progress,
    )
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        report_path = os.path.join(args.out, "soak_report.json")
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"report written to {report_path}")
        for counterexample in report.counterexamples:
            path = os.path.join(
                args.out, f"counterexample_{counterexample.index}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(counterexample.to_json())
            print(f"counterexample written to {path}")
    print()
    print(
        f"{report.plans - report.failures}/{report.plans} plans passed, "
        f"{report.failures} EVS violation(s)"
    )
    for counterexample in report.counterexamples:
        print(
            f"  case {counterexample.index}: seed={counterexample.seed} "
            f"minimized to {len(counterexample.minimized_steps)} step(s); "
            f"replay with: python -m repro soak --replay "
            f"counterexample_{counterexample.index}.json"
        )
    return 1 if report.failures else 0


def _conformance_workload(args: argparse.Namespace):
    from repro.conformance.workload import Workload

    return Workload(
        num_hosts=args.hosts,
        rounds=args.rounds,
        burst_size=args.burst_size,
        probe_burst=args.probe_burst,
        fabric_racks=args.fabric_racks,
        impair=args.impair or "",
    )


def _print_divergences(divergences) -> None:
    for divergence in divergences:
        for line in divergence.describe().splitlines():
            print(f"        {line}")


def cmd_conformance(args: argparse.Namespace) -> int:
    import os

    from repro.conformance.differ import ConformanceReport, run_differential
    from repro.conformance.explorer import ExplorationReport, explore
    from repro.faults.plan import FaultPlan

    variants = tuple(args.variants.split(","))

    if args.mode == "report":
        if args.artifact is None:
            print("conformance report needs an artifact file", file=sys.stderr)
            return 2
        with open(args.artifact, "r", encoding="utf-8") as handle:
            payload = handle.read()
        import json as _json

        data = _json.loads(payload)
        if "divergent" in data:
            report = ExplorationReport.from_json(payload)
            print(
                f"exploration: depth={report.depth} budget={report.budget} "
                f"enumerated={report.enumerated} deduped={report.deduped} "
                f"ran={report.ran} skipped={report.skipped_budget} "
                f"{'PASS' if report.ok else 'FAIL'}"
            )
            for case in report.divergent:
                print(f"  divergent schedule ({len(case.minimized_steps)} steps):")
                _print_divergences(case.report.divergences)
            if report.coverage is not None:
                print(report.coverage.format())
            return 0 if report.ok else 1
        report = ConformanceReport.from_json(payload)
        print(
            f"differential: variants={','.join(report.variants)} "
            f"seed={report.seed} {'PASS' if report.ok else 'FAIL'}"
        )
        _print_divergences(report.divergences)
        if report.coverage is not None:
            print(report.coverage.format())
        return 0 if report.ok else 1

    if args.mode == "replay":
        if args.artifact is None:
            print("conformance replay needs an artifact file", file=sys.stderr)
            return 2
        with open(args.artifact, "r", encoding="utf-8") as handle:
            saved = ConformanceReport.from_json(handle.read())
        print(
            f"replaying differential: variants={','.join(saved.variants)} "
            f"seed={saved.seed} plan events={len(saved.plan_events)}"
        )
        report = run_differential(
            saved.workload,
            plan=saved.plan if saved.plan_events else None,
            seed=saved.seed,
            variants=saved.variants,
        )
        if report.ok:
            print("  PASS  no divergence reproduces")
            return 0
        print(f"  FAIL  {len(report.divergences)} divergence(s) reproduce:")
        _print_divergences(report.divergences)
        return 1

    if args.mode in ("sharded", "sharded-explore"):
        from repro.conformance.multiring import (
            ShardedWorkload,
            explore_sharded,
            run_sharded_differential,
        )

        ring_counts = tuple(int(n) for n in args.rings.split(","))
        sharded_workload = ShardedWorkload(
            num_groups=args.groups, hosts_per_ring=args.hosts
        )
        if args.mode == "sharded":
            report = run_sharded_differential(
                sharded_workload, ring_counts=ring_counts, seed=args.seed
            )
            if args.json:
                print(report.to_json())
            else:
                status = "PASS" if report.ok else "FAIL"
                print(
                    f"  {status}  rings={','.join(map(str, ring_counts))} "
                    f"seed={args.seed} groups={args.groups} "
                    f"deliveries={report.deliveries}"
                )
                _print_divergences(report.divergences)
            if args.out is not None:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out, "conformance_sharded.json")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(report.to_json())
                print(f"report written to {path}")
            return 0 if report.ok else 1

        num_rings = max(ring_counts)
        explore_report = explore_sharded(
            num_rings=num_rings,
            workload=sharded_workload,
            seed=args.seed,
            progress=None if args.json else print,
        )
        if args.json:
            print(explore_report.to_json())
        else:
            status = "PASS" if explore_report.ok else "FAIL"
            print(
                f"  {status}  rings={num_rings} "
                f"cases={len(explore_report.cases)} "
                f"failures={len(explore_report.failures)}"
            )
            for case in explore_report.failures:
                print(
                    f"        ring {case['ring']} {case['kind']} "
                    f"pid {case['pid']} @{case['at']}: "
                    f"converged={case['converged']} evs={case['evs']}"
                )
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "conformance_sharded_explore.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(explore_report.to_json())
            print(f"report written to {path}")
        return 0 if explore_report.ok else 1

    if args.mode == "realtime":
        from repro.conformance.realtime import (
            RealtimeWorkload,
            run_realtime_differential,
        )

        workload = RealtimeWorkload(
            num_hosts=args.hosts, burst_size=args.burst_size
        )
        report = run_realtime_differential(workload=workload, crash=args.crash)
        if args.json:
            print(report.to_json())
        else:
            status = "PASS" if report.ok else "FAIL"
            print(
                f"  {status}  sim vs real  hosts={workload.num_hosts} "
                f"crash={args.crash} deliveries={report.deliveries} "
                f"real_wall={report.real_wall_s:.2f}s"
            )
            _print_divergences(report.divergences)
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "conformance_realtime.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"report written to {path}")
        return 0 if report.ok else 1

    workload = _conformance_workload(args)

    if args.mode == "run":
        plan = None
        if args.plan is not None:
            import json as _json

            with open(args.plan, "r", encoding="utf-8") as handle:
                plan = FaultPlan.from_dicts(_json.load(handle))
        report = run_differential(
            workload, plan=plan, seed=args.seed, variants=variants
        )
        if args.json:
            print(report.to_json())
        else:
            status = "PASS" if report.ok else "FAIL"
            print(
                f"  {status}  variants={','.join(variants)} seed={args.seed} "
                f"hosts={workload.num_hosts} "
                f"plan_events={len(report.plan_events)} "
                f"deliveries={report.deliveries}"
            )
            _print_divergences(report.divergences)
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "conformance_report.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"report written to {path}")
        return 0 if report.ok else 1

    if args.mode == "explore":

        def progress(ran: int, total: int, diverged: bool) -> None:
            if diverged:
                print(f"  schedule {ran}: DIVERGENCE")
            elif ran % 5 == 0 or ran == total:
                print(f"  {ran} schedule(s) checked")

        report = explore(
            workload,
            depth=args.depth,
            budget=args.budget,
            seed=args.seed,
            variants=variants,
            max_instants=args.max_instants,
            minimize=not args.no_minimize,
            progress=progress,
        )
        if args.json:
            print(report.to_json())
        else:
            status = "PASS" if report.ok else "FAIL"
            print(
                f"  {status}  depth={report.depth} "
                f"enumerated={report.enumerated} deduped={report.deduped} "
                f"ran={report.ran} skipped_budget={report.skipped_budget} "
                f"divergent={len(report.divergent)}"
            )
            for case in report.divergent:
                print(
                    f"  divergent schedule minimized to "
                    f"{len(case.minimized_steps)} step(s):"
                )
                _print_divergences(case.report.divergences)
            if report.coverage is not None:
                print(report.coverage.format())
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "conformance_explore.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"report written to {path}")
            for index, case in enumerate(report.divergent):
                case_path = os.path.join(args.out, f"divergence_{index}.json")
                with open(case_path, "w", encoding="utf-8") as handle:
                    handle.write(case.report.to_json())
                print(f"divergence written to {case_path}")
        return 0 if report.ok else 1

    print(f"unknown conformance mode {args.mode!r}", file=sys.stderr)
    return 2


def _kv_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.apps.kv.chaos import _BOOT
    from repro.apps.kv.cluster import KvCluster
    from repro.workloads.kv import (
        DiurnalArrivals,
        KvOpMix,
        ZipfianKeys,
        drive_schedule,
    )

    kv = KvCluster(
        rings=args.rings,
        hosts_per_ring=args.hosts,
        partitions=args.partitions,
    )
    kv.start()
    kv.run(_BOOT)
    base = kv.sim.now
    keys = ZipfianKeys(num_keys=args.keys, s=args.zipf, seed=args.seed + 1)
    arrivals = DiurnalArrivals(
        trough_rate=args.rate / 4.0,
        peak_rate=args.rate,
        period=args.duration,
        seed=args.seed + 2,
    )
    mix = KvOpMix(keys=keys, num_clients=args.clients, seed=args.seed + 3)
    scheduled = drive_schedule(kv, mix.schedule(arrivals.times(args.duration)), base)
    kv.run(args.duration + 0.3)
    lin = kv.check_linearizability()
    doc = {
        "topology": {
            "rings": args.rings,
            "hosts_per_ring": args.hosts,
            "partitions": args.partitions,
        },
        "seed": args.seed,
        "ops_scheduled": scheduled,
        "ops_completed": kv.history.completed,
        "ops_incomplete": kv.history.incomplete,
        "stores_converged": kv.stores_converged(),
        "linearizability": lin.to_dict(),
        "sim_time": round(kv.sim.now, 9),
    }
    ok = doc["stores_converged"] and lin.ok and lin.decided
    if args.json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"  {'PASS' if ok else 'FAIL'}  {args.rings}x{args.hosts} "
            f"partitions={args.partitions} seed={args.seed} "
            f"ops={scheduled} completed={doc['ops_completed']} "
            f"linearizable={lin.ok and lin.decided}"
        )
        for violation in lin.violations:
            print(f"        violation: {violation}")
    return 0 if ok else 1


def _kv_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.apps.kv.bench import (
        BASELINE_SEED,
        baseline_path,
        compare_report,
        run_kv_bench,
        to_json,
    )

    if (args.check_baseline or args.update_baseline) and args.seed != BASELINE_SEED:
        print(
            f"the committed kv baseline is recorded at seed {BASELINE_SEED}; "
            f"gating a seed-{args.seed} run against it would only report "
            f"legitimate per-seed differences",
            file=sys.stderr,
        )
        return 2
    case_names = args.cases.split(",") if args.cases else None
    report = run_kv_bench(
        seed=args.seed,
        case_names=case_names,
        progress=None if args.json else print,
    )
    if args.json:
        print(to_json(report))
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"kv_bench_seed{args.seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_json(report))
        if not args.json:
            print(f"report written to {path}")
    base_path = baseline_path()
    if args.update_baseline:
        if case_names is not None:
            print("--update-baseline needs the full suite, not --cases")
            return 2
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(to_json(report) + "\n")
        print(f"updated baseline {base_path}")
        return 0
    if args.check_baseline:
        if not base_path.exists():
            print(f"BASELINE MISSING: {base_path} — run with --update-baseline")
            return 1
        reference = json.loads(base_path.read_text())
        if case_names is not None:
            # A partial run gates against the matching baseline slice.
            reference = dict(reference)
            reference["cases"] = {
                name: metrics
                for name, metrics in reference.get("cases", {}).items()
                if name in set(case_names)
            }
        problems = compare_report(report, reference)
        if problems:
            print(f"REGRESSIONS vs {base_path}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"within tolerance of baseline {base_path}")
    return 0


def _kv_chaos(args: argparse.Namespace) -> int:
    import os

    from repro.apps.kv.chaos import SCENARIOS, run_kv_scenario

    if args.list or (args.scenario is None and not args.all):
        for name in sorted(SCENARIOS):
            print(f"  {name:18s} {SCENARIOS[name].summary}")
        return 0
    names = sorted(SCENARIOS) if args.all else [args.scenario]
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(
            f"unknown KV scenario {unknown[0]!r}; choose from {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in names:
        report = run_kv_scenario(name, seed=args.seed)
        if args.json:
            print(report.to_json())
        else:
            status = "PASS" if report.ok else "FAIL"
            print(
                f"  {status}  {name:18s} seed={report.seed} "
                f"ops={report.history['ops']} "
                f"completed={report.history['completed']} "
                f"sim_time={report.sim_time:.3f}s"
            )
            for violation in report.violations:
                print(f"        violation: {violation}")
        if args.out is not None:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{name}_seed{args.seed}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            if not args.json:
                print(f"        report written to {path}")
        if not report.ok:
            failures += 1
    if not args.json:
        print()
        print(f"{len(names) - failures} passed, {failures} failed")
    return 1 if failures else 0


def _kv_recover_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.apps.kv.commands import KvCommand, put
    from repro.apps.kv.replica import DurableMedium, recover_store
    from repro.apps.kv.snapshot import encode_snapshot
    from repro.apps.kv.store import KvStore
    from repro.apps.kv.wal import FileWalStorage, WalRecord, WriteAheadLog

    directory = Path(args.dir)
    durable = DurableMedium(
        wal_storage=FileWalStorage(directory / "wal.bin"),
        snapshot_storage=FileWalStorage(directory / "snapshot.bin"),
    )

    if args.demo:
        # Stage a crash scene: a snapshot, a WAL suffix past it, and
        # (optionally) a torn final append — then recover from it.
        store = KvStore()
        wal = WriteAheadLog(durable.wal_storage)
        wal.reset()
        for index in range(24):
            command = KvCommand(
                client_id=0, request_id=index + 1,
                ops=(put(f"k{index % 8}", b"%d" % index),),
            )
            store.apply("kv00", command)
            if index < 16:
                continue  # first 16 live only in the snapshot
            wal.append(WalRecord(group="kv00", command=command))
        snap = KvStore()
        for index in range(16):
            snap.apply(
                "kv00",
                KvCommand(client_id=0, request_id=index + 1,
                          ops=(put(f"k{index % 8}", b"%d" % index),)),
            )
        durable.write_snapshot(encode_snapshot(snap))
        if args.torn:
            durable.wal_storage.append(b"\x00\x00\x00\x40partial-frame")
        print(
            f"demo scene staged in {directory}: snapshot with 16 commands, "
            f"WAL suffix of 8{', torn tail appended' if args.torn else ''}"
        )

    store, replayed = recover_store(durable)
    digest = store.digest()
    print(
        f"recovered: {replayed} WAL record(s) replayed past the snapshot; "
        f"{sum(len(p) for p in store.data.values())} key(s) across "
        f"{len(store.data)} group(s); applied={store.total_applied()}"
    )
    print(f"digest: {digest}")
    return 0


def cmd_kv(args: argparse.Namespace) -> int:
    handlers = {
        "run": _kv_run,
        "bench": _kv_bench,
        "chaos": _kv_chaos,
        "recover-replay": _kv_recover_replay,
    }
    return handlers[args.kv_mode](args)


def _fleet_run(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.runtime.fleet import Fleet, run_fleet_workload

    async def run() -> dict:
        fleet = Fleet(num_daemons=args.daemons, accelerated=not args.original)
        await fleet.start()
        try:
            return await run_fleet_workload(
                fleet,
                num_clients=args.clients,
                duration=args.duration,
                payload_size=args.payload,
                pipeline=args.pipeline,
                crash_pid=(args.daemons - 1) if args.crash else None,
            )
        finally:
            await fleet.drain_and_stop()

    report = asyncio.run(run())
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        ok = report["messages_acked"] == report["messages_sent"]
        print(
            f"  {'PASS' if ok else 'FAIL'}  {args.daemons} daemon(s), "
            f"{args.clients} client(s), {report['duration_s']:.2f}s: "
            f"{report['msgs_per_sec']:,.0f} msgs/sec closed-loop, "
            f"p50 {report['latency_p50_ms']:.1f}ms "
            f"p99 {report['latency_p99_ms']:.1f}ms, "
            f"{report['reconnects']} reconnect(s)"
        )
        counters = report["counters"]
        print(
            f"        acked {report['messages_acked']}/"
            f"{report['messages_sent']}, decode_errors="
            f"{counters['decode_errors']}, dropped_slow="
            f"{counters['clients_dropped_slow']}"
        )
    return 0 if report["messages_acked"] == report["messages_sent"] else 1


def _fleet_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.runtime.bench import (
        BASELINE_SEED,
        WALL_TOL,
        baseline_path,
        compare_report,
        run_runtime_bench,
        to_json,
    )

    wall_tol = args.wall_tol
    if wall_tol is None:
        wall_tol = float(os.environ.get("REPRO_BENCH_WALL_TOL", WALL_TOL))

    if (args.check_baseline or args.update_baseline) and args.seed != BASELINE_SEED:
        print(
            f"the committed runtime baseline is recorded at seed "
            f"{BASELINE_SEED}; gating a seed-{args.seed} run against it "
            f"would only report legitimate per-seed differences",
            file=sys.stderr,
        )
        return 2
    case_names = args.cases.split(",") if args.cases else None
    report = run_runtime_bench(
        seed=args.seed,
        case_names=case_names,
        progress=None if args.json else print,
    )
    if args.json:
        print(to_json(report))
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"runtime_bench_seed{args.seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_json(report))
        if not args.json:
            print(f"report written to {path}")
    base_path = baseline_path()
    if args.update_baseline:
        if case_names is not None:
            print("--update-baseline needs the full suite, not --cases")
            return 2
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(to_json(report))
        print(f"updated baseline {base_path}")
        return 0
    if args.check_baseline:
        if not base_path.exists():
            print(f"BASELINE MISSING: {base_path} — run with --update-baseline")
            return 1
        reference = json.loads(base_path.read_text())
        if case_names is not None:
            # A partial run gates against the matching baseline slice.
            reference = dict(reference)
            reference["cases"] = {
                name: metrics
                for name, metrics in reference.get("cases", {}).items()
                if name in set(case_names)
            }
        problems = compare_report(report, reference, wall_tol=wall_tol)
        if problems:
            print(f"REGRESSIONS vs {base_path}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"within tolerance of baseline {base_path}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    handlers = {
        "run": _fleet_run,
        "bench": _fleet_bench,
    }
    return handlers[args.fleet_mode](args)


def cmd_daemon(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.ipc import UnixEndpoint, parse_endpoint
    from repro.runtime.transport import local_ring_addresses
    from repro.spread.daemon import SpreadDaemon

    pids = list(range(args.ring_size))
    peers = local_ring_addresses(pids, base_port=args.base_port)
    endpoint = parse_endpoint(args.socket or f"/tmp/accelring-{args.pid}.sock")
    if not isinstance(endpoint, UnixEndpoint):
        print(
            f"daemon --socket must be a unix endpoint, got {endpoint}",
            file=sys.stderr,
        )
        return 2

    async def run() -> None:
        daemon = SpreadDaemon(
            args.pid,
            peers,
            endpoint.path,
            accelerated=not args.original,
        )
        await daemon.start()
        print(
            f"daemon {args.pid} up: udp data/token ports "
            f"{peers[args.pid].data_port}/{peers[args.pid].token_port}, "
            f"clients at {daemon.socket_path}"
        )
        try:
            while True:
                await asyncio.sleep(2.0)
                print(
                    f"  ring={daemon.node.members} state={daemon.node.state} "
                    f"delivered={len(daemon.node.delivered)}"
                )
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await daemon.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench.harness import DEFAULT_REPEATS, run_from_args

    return run_from_args(
        suite=args.suite,
        repeats=args.repeats if args.repeats is not None else DEFAULT_REPEATS,
        output=Path(args.output) if args.output is not None else None,
        baseline=Path(args.baseline) if args.baseline is not None else None,
        check_baseline=args.check_baseline,
        update_baseline=args.update_baseline,
        cases=args.cases.split(",") if args.cases else None,
        profile=args.profile,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accelring",
        description="Accelerated Ring: fast total ordering for modern data centers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="compare both protocols at one operating point")
    demo.add_argument("--profile", choices=sorted(PROFILES), default="spread")
    demo.add_argument("--network", choices=["1g", "10g"], default="1g")
    demo.add_argument("--rate", type=float, default=300.0, help="aggregate Mbps")
    demo.add_argument("--payload", type=int, default=1350)
    demo.add_argument("--service", choices=["agreed", "safe"], default="agreed")
    demo.add_argument("--metrics", action="store_true",
                      help="print per-protocol observer metrics tables")
    demo.add_argument("--metrics-json", default=None, metavar="PREFIX",
                      help="save observer metrics snapshots as "
                           "benchmarks/results/PREFIX-<protocol>.json")
    demo.set_defaults(func=cmd_demo)

    sweep = sub.add_parser("sweep", help="latency vs throughput sweep")
    sweep.add_argument("--profile", choices=sorted(PROFILES), default="daemon")
    sweep.add_argument("--network", choices=["1g", "10g"], default="1g")
    sweep.add_argument("--rates", default="100,300,500,700,850",
                       help="comma-separated Mbps")
    sweep.add_argument("--payload", type=int, default=1350)
    sweep.add_argument("--service", choices=["agreed", "safe"], default="agreed")
    sweep.set_defaults(func=cmd_sweep)

    maxtp = sub.add_parser("maxtp", help="maximum-throughput table")
    maxtp.add_argument("--payload", type=int, default=1350)
    maxtp.set_defaults(func=cmd_maxtp)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("number", help="2..13 or 'headline'")
    figure.set_defaults(func=cmd_figure)

    verify = sub.add_parser(
        "verify",
        help="check saved benchmark results against the paper's shape criteria",
    )
    verify.set_defaults(func=cmd_verify)

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario and check EVS invariants",
    )
    chaos.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (omit with --list or --all)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed: same seed, byte-identical report")
    chaos.add_argument("--json", action="store_true",
                       help="print the full scenario report as JSON")
    chaos.add_argument("--list", action="store_true",
                       help="list available scenarios")
    chaos.add_argument("--all", action="store_true",
                       help="run every scenario (CI's chaos-smoke job)")
    chaos.set_defaults(func=cmd_chaos)

    soak = sub.add_parser(
        "soak",
        help="run seeded random fault plans under EVS checking (soak test)",
    )
    soak.add_argument("--plans", type=int, default=200,
                      help="number of random fault plans to run")
    soak.add_argument("--hosts", type=int, default=4,
                      help="cluster size for every plan")
    soak.add_argument("--seed", type=int, default=1,
                      help="master seed: every case seed derives from it")
    soak.add_argument("--max-steps", type=int, default=8,
                      help="max abstract fault steps per generated plan")
    soak.add_argument("--out", default=None, metavar="DIR",
                      help="write soak_report.json and counterexample_<n>.json "
                           "artifacts into DIR")
    soak.add_argument("--fabric-racks", type=int, default=0, metavar="N",
                      help="soak on a leaf-spine fabric with N racks "
                           "(adds correlated rack_power_loss to the action "
                           "vocabulary; 0 = single-switch star)")
    soak.add_argument("--impair", default=None,
                      choices=("reorder", "jitter", "duplicate"),
                      help="layer a named impairment preset under every plan")
    soak.add_argument("--no-minimize", action="store_true",
                      help="keep failing plans as generated (skip shrinking)")
    soak.add_argument("--replay", default=None, metavar="FILE",
                      help="replay a counterexample_<n>.json artifact instead "
                           "of generating plans")
    soak.set_defaults(func=cmd_soak)

    conformance = sub.add_parser(
        "conformance",
        help="differential conformance: compare protocol variants' "
             "delivery orders under fault schedules",
    )
    conformance.add_argument(
        "mode",
        choices=[
            "run",
            "explore",
            "replay",
            "report",
            "sharded",
            "sharded-explore",
            "realtime",
        ],
        help="run one differential; explore bounded fault schedules; "
             "replay or pretty-print a saved artifact; compare sharded "
             "multi-ring delivery against single-ring (sharded); sweep "
             "depth-1 faults per ring under EVS checking (sharded-explore); "
             "diff the simulator against real loopback daemons (realtime)",
    )
    conformance.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help="artifact file for replay/report modes",
    )
    conformance.add_argument("--hosts", type=int, default=4,
                             help="cluster size for every variant")
    conformance.add_argument("--seed", type=int, default=0,
                             help="master seed: same seed, same runs")
    conformance.add_argument("--variants", default="original,accelerated",
                             help="comma-separated variant list "
                                  "(original, accelerated, spread)")
    conformance.add_argument("--rounds", type=int, default=2,
                             help="burst rounds per host in the main phase")
    conformance.add_argument("--burst-size", type=int, default=12,
                             help="messages per burst")
    conformance.add_argument("--probe-burst", type=int, default=6,
                             help="messages per post-quiesce probe burst")
    conformance.add_argument("--plan", default=None, metavar="FILE",
                             help="run mode: fault plan JSON "
                                  "(FaultPlan.to_dicts format)")
    conformance.add_argument("--rings", default="1,2",
                             help="sharded modes: comma-separated ring "
                                  "counts to compare (sharded) or the max "
                                  "to explore (sharded-explore)")
    conformance.add_argument("--groups", type=int, default=6,
                             help="sharded modes: number of Spread groups")
    conformance.add_argument("--depth", type=int, default=2,
                             help="explore mode: max fault atoms per schedule")
    conformance.add_argument("--budget", type=int, default=24,
                             help="explore mode: max differential runs")
    conformance.add_argument("--max-instants", type=int, default=4,
                             help="explore mode: harvested instants kept")
    conformance.add_argument("--fabric-racks", type=int, default=0, metavar="N",
                             help="run the workload on a leaf-spine fabric "
                                  "with N racks (0 = single-switch star)")
    conformance.add_argument("--impair", default=None,
                             choices=("reorder", "jitter", "duplicate"),
                             help="layer a named impairment preset under "
                                  "every variant run")
    conformance.add_argument("--crash", action="store_true",
                             help="realtime mode: crash and restart one "
                                  "daemon at the scripted barriers")
    conformance.add_argument("--no-minimize", action="store_true",
                             help="explore mode: keep divergent schedules "
                                  "as enumerated (skip shrinking)")
    conformance.add_argument("--json", action="store_true",
                             help="print the full report as JSON")
    conformance.add_argument("--out", default=None, metavar="DIR",
                             help="write report (and divergence) JSON "
                                  "artifacts into DIR")
    conformance.set_defaults(func=cmd_conformance)

    bench = sub.add_parser(
        "bench",
        help="run a benchmark suite; optionally gate on a committed baseline",
    )
    bench.add_argument("--suite", default="smoke",
                       help="suite name (smoke, headline, scaling)")
    bench.add_argument("--cases", default=None,
                       help="comma-separated case names to run (default: "
                            "whole suite); baseline compare restricts "
                            "itself to the selection")
    bench.add_argument("--repeats", type=int, default=None,
                       help="repetitions per case (medians reported)")
    bench.add_argument("--output", default=None,
                       help="results file (default BENCH_<suite>.json)")
    bench.add_argument("--baseline", default=None,
                       help="baseline file (default "
                            "benchmarks/baselines/BENCH_<suite>.json)")
    bench.add_argument("--check-baseline", action="store_true",
                       help="compare against the baseline; exit 1 on regression")
    bench.add_argument("--profile", action="store_true",
                       help="additionally cProfile one repetition per case; "
                            "writes PROFILE_<suite>_<case>.txt next to the "
                            "results file")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write the results as the new baseline")
    bench.set_defaults(func=cmd_bench)

    kv = sub.add_parser(
        "kv",
        help="replicated KV store on the ordered stream: run, bench, "
             "chaos (with linearizability checking), recover-replay",
    )
    kv_sub = kv.add_subparsers(dest="kv_mode", required=True)

    kv_run = kv_sub.add_parser(
        "run", help="fault-free seeded run with linearizability checking"
    )
    kv_run.add_argument("--rings", type=int, default=2)
    kv_run.add_argument("--hosts", type=int, default=4,
                        help="replicas per ring")
    kv_run.add_argument("--partitions", type=int, default=8,
                        help="key partitions (Spread groups) across rings")
    kv_run.add_argument("--keys", type=int, default=256,
                        help="Zipfian keyspace size")
    kv_run.add_argument("--zipf", type=float, default=0.99,
                        help="Zipf skew exponent s (0 = uniform)")
    kv_run.add_argument("--clients", type=int, default=4)
    kv_run.add_argument("--rate", type=float, default=400.0,
                        help="peak ops/sec (diurnal trough is rate/4)")
    kv_run.add_argument("--duration", type=float, default=0.6,
                        help="simulated seconds of workload")
    kv_run.add_argument("--seed", type=int, default=0)
    kv_run.add_argument("--json", action="store_true")
    kv_run.set_defaults(func=cmd_kv)

    kv_bench = kv_sub.add_parser(
        "bench", help="skewed multi-million-key benchmark cases"
    )
    kv_bench.add_argument("--cases", default=None,
                          help="comma-separated case names (default: all)")
    kv_bench.add_argument("--seed", type=int, default=0)
    kv_bench.add_argument("--json", action="store_true",
                          help="print the full report as JSON")
    kv_bench.add_argument("--out", default=None, metavar="DIR",
                          help="write kv_bench_seed<seed>.json into DIR")
    kv_bench.add_argument("--check-baseline", action="store_true",
                          help="compare against benchmarks/baselines/"
                               "BENCH_kv.json; exit 1 on regression")
    kv_bench.add_argument("--update-baseline", action="store_true",
                          help="write this run over the committed kv baseline")
    kv_bench.set_defaults(func=cmd_kv)

    kv_chaos = kv_sub.add_parser(
        "chaos",
        help="KV chaos scenarios: faults under load, then convergence, "
             "EVS, and linearizability checks",
    )
    kv_chaos.add_argument("scenario", nargs="?", default=None,
                          help="scenario name (omit with --list or --all)")
    kv_chaos.add_argument("--seed", type=int, default=0,
                          help="master seed: same seed, byte-identical report")
    kv_chaos.add_argument("--json", action="store_true",
                          help="print full scenario reports as JSON")
    kv_chaos.add_argument("--list", action="store_true",
                          help="list available KV scenarios")
    kv_chaos.add_argument("--all", action="store_true",
                          help="run every scenario (CI's kv-smoke job)")
    kv_chaos.add_argument("--out", default=None, metavar="DIR",
                          help="write <scenario>_seed<seed>.json into DIR")
    kv_chaos.set_defaults(func=cmd_kv)

    kv_recover = kv_sub.add_parser(
        "recover-replay",
        help="rebuild a store from on-disk snapshot + WAL (the replica "
             "restart path, against real files)",
    )
    kv_recover.add_argument("dir", help="directory holding wal.bin/snapshot.bin")
    kv_recover.add_argument("--demo", action="store_true",
                            help="stage a demo crash scene in DIR first")
    kv_recover.add_argument("--torn", action="store_true",
                            help="with --demo: append a torn WAL tail")
    kv_recover.set_defaults(func=cmd_kv)

    fleet = sub.add_parser(
        "fleet",
        help="multi-daemon loopback fleet: closed-loop client workloads "
             "(run) and the real-runtime regression benches (bench)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_mode", required=True)

    fleet_run = fleet_sub.add_parser(
        "run",
        help="start N daemons + M concurrent clients over loopback and "
             "drive a closed-loop workload",
    )
    fleet_run.add_argument("--daemons", type=int, default=3,
                           help="ring size (one daemon per simulated server)")
    fleet_run.add_argument("--clients", type=int, default=8,
                           help="concurrent SpreadClient connections, "
                                "round-robined across daemons")
    fleet_run.add_argument("--duration", type=float, default=2.0,
                           help="workload wall-clock seconds")
    fleet_run.add_argument("--payload", type=int, default=64,
                           help="payload bytes per message")
    fleet_run.add_argument("--pipeline", type=int, default=1,
                           help="in-flight messages per client")
    fleet_run.add_argument("--crash", action="store_true",
                           help="crash and restart the last daemon "
                                "mid-workload (clients reconnect)")
    fleet_run.add_argument("--original", action="store_true",
                           help="run the original Totem Ring protocol")
    fleet_run.add_argument("--json", action="store_true",
                           help="print the full workload report as JSON")
    fleet_run.set_defaults(func=cmd_fleet)

    fleet_bench = fleet_sub.add_parser(
        "bench",
        help="real-runtime benches over loopback; gate on "
             "benchmarks/baselines/BENCH_runtime.json",
    )
    fleet_bench.add_argument("--cases", default=None,
                             help="comma-separated case names (default: all)")
    fleet_bench.add_argument("--seed", type=int, default=0)
    fleet_bench.add_argument("--json", action="store_true",
                             help="print the full report as JSON")
    fleet_bench.add_argument("--out", default=None, metavar="DIR",
                             help="write runtime_bench_seed<seed>.json into DIR")
    fleet_bench.add_argument("--wall-tol", type=float, default=None,
                             help="ops/sec tolerance fraction (default: "
                                  "REPRO_BENCH_WALL_TOL or 0.5)")
    fleet_bench.add_argument("--check-baseline", action="store_true",
                             help="compare against benchmarks/baselines/"
                                  "BENCH_runtime.json; exit 1 on regression")
    fleet_bench.add_argument("--update-baseline", action="store_true",
                             help="write this run over the committed "
                                  "runtime baseline")
    fleet_bench.set_defaults(func=cmd_fleet)

    daemon = sub.add_parser("daemon", help="run a real daemon over UDP")
    daemon.add_argument("--pid", type=int, required=True)
    daemon.add_argument("--ring-size", type=int, default=3)
    daemon.add_argument("--base-port", type=int, default=28800)
    daemon.add_argument(
        "--socket",
        default=None,
        help="client endpoint: a unix socket path or unix:// spec",
    )
    daemon.add_argument("--original", action="store_true",
                        help="run the original Totem Ring protocol")
    daemon.set_defaults(func=cmd_daemon)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
