"""Differential conformance checking for the protocol variants.

The paper's central claim is behavioural equivalence: the Accelerated
Ring changes *when* messages and the token are sent, but the delivered
total order and the EVS guarantees must be indistinguishable from the
original Totem protocol (PAPER.md §III).  This package turns that claim
into tooling:

* :mod:`repro.conformance.differ` — a differential oracle that drives
  one workload + fault plan through the original, accelerated, and
  Spread-daemon variants on the deterministic simulator and compares
  the per-participant delivery sequences.
* :mod:`repro.conformance.explorer` — a bounded schedule explorer that
  systematically enumerates small fault schedules anchored at
  protocol-meaningful instants (token arrivals) instead of sampling
  them randomly like ``repro soak``.
* :mod:`repro.conformance.coverage` — protocol-branch coverage counters
  built on the :mod:`repro.obs` observer hooks, so exploration runs
  report which protocol branches were actually exercised.
* :mod:`repro.conformance.multiring` — the sharded-ordering oracle:
  per-group streams must be identical across ring counts (fault-free),
  identical from every vantage, and per-shard EVS must stay clean
  under a depth-1 fault sweep.

Everything is seeded and deterministic; divergences serialize to JSON
artifacts that replay with ``python -m repro conformance replay``.
"""

from repro.conformance.coverage import CoverageObserver, CoverageReport
from repro.conformance.differ import (
    ConformanceDivergence,
    ConformanceReport,
    run_differential,
)
from repro.conformance.explorer import ExplorationReport, explore
from repro.conformance.multiring import (
    ShardedExplorationReport,
    ShardedReport,
    ShardedRun,
    ShardedWorkload,
    explore_sharded,
    run_sharded,
    run_sharded_differential,
)
from repro.conformance.variants import VARIANT_NAMES, VariantRun, run_variant
from repro.conformance.workload import Workload, make_label, parse_label

__all__ = [
    "ConformanceDivergence",
    "ConformanceReport",
    "CoverageObserver",
    "CoverageReport",
    "ExplorationReport",
    "ShardedExplorationReport",
    "ShardedReport",
    "ShardedRun",
    "ShardedWorkload",
    "VARIANT_NAMES",
    "VariantRun",
    "Workload",
    "explore",
    "explore_sharded",
    "make_label",
    "parse_label",
    "run_differential",
    "run_sharded",
    "run_sharded_differential",
    "run_variant",
]
