"""Protocol-state coverage built on the observer hooks.

A conformance run that never retransmits or never hits the flow-control
cap proves very little; this module makes that visible.  A
:class:`CoverageObserver` attaches to a cluster like any other
:class:`~repro.obs.observer.ProtocolObserver` and counts *branches*:
token states, retransmission paths, flow-control outcomes, membership
state transitions, recovery phases, injected faults.  The counters live
in an ordinary :class:`~repro.obs.metrics.MetricsRegistry` (so they
merge and snapshot like every other metric, and render through
:mod:`repro.obs.export`), and :class:`CoverageReport` summarizes which
of the core branches were exercised and which were not.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import ProtocolObserver

#: The branch counters every exploration report accounts for.  The list
#: is the *expected* surface: ``CoverageReport.unhit`` names the ones a
#: run never reached, so "exploration exercised the retransmission path"
#: is an assertable fact rather than a hope.
CORE_BRANCHES: Tuple[str, ...] = (
    "coverage.token.received",
    "coverage.token.sent",
    "coverage.token.with_rtr",
    "coverage.token.aru_lowered",
    "coverage.data.multicast",
    "coverage.data.retransmission",
    "coverage.retransmit.requested",
    "coverage.retransmit.answered",
    "coverage.flow.rounds",
    "coverage.flow.blocked",
    "coverage.flow.saturated",
    "coverage.flow.post_token",
    "coverage.deliver.messages",
    "coverage.membership.ring_installed",
    "coverage.membership.token_loss",
    "coverage.recovery.started",
    "coverage.recovery.completed",
)


class CoverageObserver(ProtocolObserver):
    """Counts protocol branches as ``coverage.*`` counters.

    Unlike :class:`~repro.obs.observer.MetricsObserver` (which measures
    *how much* — rates, latencies, distributions), this observer records
    *whether* each protocol branch ran at all, including conditional
    paths a plain event count cannot distinguish: a token carrying a
    non-empty retransmission-request list, a flow-control round that had
    to hold queued messages back, a saturated global window.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def _hit(self, name: str, amount: int = 1) -> None:
        self.registry.counter("coverage." + name).inc(amount)

    # -- token ---------------------------------------------------------

    def on_token_received(self, pid, token, now=None):
        self._hit("token.received")
        if getattr(token, "rtr", None):
            self._hit("token.with_rtr")
        if getattr(token, "aru_lowered_by", None) is not None:
            self._hit("token.aru_lowered")

    def on_token_sent(self, pid, token, now=None):
        self._hit("token.sent")

    # -- data ----------------------------------------------------------

    def on_multicast(self, pid, message, retransmission=False, now=None):
        if retransmission:
            self._hit("data.retransmission")
        else:
            self._hit("data.multicast")

    def on_deliver(self, pid, message, now=None):
        self._hit("deliver.messages")

    def on_retransmit(self, pid, seq, now=None):
        self._hit("retransmit.answered")

    def on_retransmit_requested(self, pid, seq, now=None):
        self._hit("retransmit.requested")

    # -- flow control --------------------------------------------------

    def on_flow_control(self, pid, decision, token_fcc, now=None):
        self._hit("flow.rounds")
        queued = getattr(decision, "queued", 0)
        num_to_send = getattr(decision, "num_to_send", 0)
        if queued > num_to_send:
            # The sender wanted to send more than the windows allowed.
            self._hit("flow.blocked")
        if queued > 0 and getattr(decision, "global_headroom", 1) == 0:
            self._hit("flow.saturated")
        if getattr(decision, "post_token", 0) > 0:
            self._hit("flow.post_token")

    # -- membership / recovery -----------------------------------------

    def on_membership_event(self, pid, event, detail=None, now=None):
        detail = detail or {}
        if event == "state_change":
            self._hit("membership.state_changes")
            origin = detail.get("from")
            target = detail.get("to")
            if origin is not None and target is not None:
                self._hit(f"membership.transition.{origin}->{target}")
        elif event == "ring_installed":
            self._hit("membership.ring_installed")
        elif event == "token_loss":
            self._hit("membership.token_loss")
        elif event == "view_change":
            self._hit("membership.view_change")

    def on_recovery_started(self, pid, detail=None, now=None):
        self._hit("recovery.started")

    def on_recovery_retry(self, pid, detail=None, now=None):
        self._hit("recovery.retry")

    def on_recovery_aborted(self, pid, detail=None, now=None):
        self._hit("recovery.aborted")

    def on_recovery_completed(self, pid, detail=None, now=None):
        self._hit("recovery.completed")

    # -- injected faults -----------------------------------------------

    def on_fault(self, kind, detail=None, now=None):
        self._hit(f"fault.{kind}")

    # ------------------------------------------------------------------

    def report(self) -> "CoverageReport":
        return CoverageReport.from_registry(self.registry)


class CoverageReport:
    """An immutable summary of coverage counters.

    ``hits`` maps counter name to count; :attr:`unhit` lists the
    :data:`CORE_BRANCHES` a run (or a merged set of runs) never reached.
    """

    def __init__(self, hits: Dict[str, int]) -> None:
        self.hits: Dict[str, int] = {
            name: int(count) for name, count in sorted(hits.items())
        }

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "CoverageReport":
        counters = registry.snapshot()["counters"]
        return cls(
            {
                name: count
                for name, count in counters.items()
                if name.startswith("coverage.")
            }
        )

    def hit(self, name: str) -> int:
        return self.hits.get(name, 0)

    @property
    def unhit(self) -> List[str]:
        return [name for name in CORE_BRANCHES if self.hits.get(name, 0) == 0]

    def merge(self, other: "CoverageReport") -> "CoverageReport":
        merged = dict(self.hits)
        for name, count in other.hits.items():
            merged[name] = merged.get(name, 0) + count
        return CoverageReport(merged)

    def to_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "unhit": self.unhit}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CoverageReport":
        return cls(dict(payload.get("hits", {})))

    def format(self) -> str:
        lines = ["protocol-branch coverage:"]
        width = max((len(name) for name in self.hits), default=20)
        for name, count in self.hits.items():
            lines.append(f"  {name:<{width}}  {count}")
        if self.unhit:
            lines.append("not exercised:")
            for name in self.unhit:
                lines.append(f"  {name}")
        return "\n".join(lines)
