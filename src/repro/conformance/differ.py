"""The differential oracle: do the variants deliver the same order?

The comparison is phase-aware, because the paper's equivalence claim is
about the *protocol*, not about fault timing:

* **Fault-free runs** must produce byte-identical per-participant label
  sequences across variants, end to end.
* **Faulty runs** are compared in the two regions where equality is
  sound: the *calm prefix* (deliveries after traffic starts, before the
  first membership transition — the fault has not bitten yet, so order
  must match exactly) and the *probe phase* (a fresh burst round on the
  reconverged ring — recovery is complete, so order must match exactly
  again).  In between, EVS legitimately allows delivery sets to differ
  across variants (each variant's membership transitions partition time
  differently), so the oracle checks each variant against the full EVS
  property suite there instead of against each other.

Any mismatch produces a structured :class:`ConformanceDivergence`
naming the first diverging delivery — participant, position, the two
labels — plus a trace excerpt per side, in the spirit of the
EvsChecker's debuggable virtual-synchrony reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.coverage import CoverageObserver, CoverageReport
from repro.conformance.variants import (
    MSG,
    PHASE_PROBE,
    VARIANT_NAMES,
    VariantRun,
    run_variant,
)
from repro.conformance.workload import Workload
from repro.faults.plan import FaultPlan

#: Events shown on each side of a divergence excerpt.
_EXCERPT_CONTEXT = 4


def _decode(label: bytes) -> str:
    return label.decode("latin-1")


@dataclass
class ConformanceDivergence:
    """One observed difference between two variants' behaviour.

    ``kind`` is ``order`` (same position, different label), ``missing``
    (one side's sequence ends early), ``evs`` (a variant violated an
    EVS property outright), or ``converge`` (a variant failed to reform
    a full ring after the fault plan quiesced).  ``seq`` is the position
    of the first diverging delivery within the compared region of
    ``pid``'s stream.
    """

    kind: str
    variant_a: str
    variant_b: str
    phase: str
    pid: Optional[int] = None
    seq: Optional[int] = None
    expected: Optional[str] = None
    actual: Optional[str] = None
    detail: str = ""
    excerpt_a: List[str] = field(default_factory=list)
    excerpt_b: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.kind == "order":
            head = (
                f"order divergence [{self.phase}] pid {self.pid} seq "
                f"{self.seq}: {self.variant_a} delivered "
                f"{self.expected!r}, {self.variant_b} delivered "
                f"{self.actual!r}"
            )
        elif self.kind == "missing":
            head = (
                f"missing delivery [{self.phase}] pid {self.pid} seq "
                f"{self.seq}: {self.detail}"
            )
        elif self.kind == "evs":
            head = f"EVS violation in {self.variant_b}: {self.detail}"
        else:
            head = f"{self.kind} divergence ({self.variant_b}): {self.detail}"
        lines = [head]
        if self.excerpt_a:
            lines.append(f"  {self.variant_a} trace around the divergence:")
            lines.extend(f"    {line}" for line in self.excerpt_a)
        if self.excerpt_b:
            lines.append(f"  {self.variant_b} trace around the divergence:")
            lines.extend(f"    {line}" for line in self.excerpt_b)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "variant_a": self.variant_a,
            "variant_b": self.variant_b,
            "phase": self.phase,
            "detail": self.detail,
        }
        for name in ("pid", "seq", "expected", "actual"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.excerpt_a:
            payload["excerpt_a"] = self.excerpt_a
        if self.excerpt_b:
            payload["excerpt_b"] = self.excerpt_b
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConformanceDivergence":
        return cls(
            kind=str(payload["kind"]),
            variant_a=str(payload["variant_a"]),
            variant_b=str(payload["variant_b"]),
            phase=str(payload["phase"]),
            pid=payload.get("pid"),
            seq=payload.get("seq"),
            expected=payload.get("expected"),
            actual=payload.get("actual"),
            detail=str(payload.get("detail", "")),
            excerpt_a=list(payload.get("excerpt_a", [])),
            excerpt_b=list(payload.get("excerpt_b", [])),
        )


def _excerpt(labels: Sequence[bytes], position: int) -> List[str]:
    start = max(0, position - _EXCERPT_CONTEXT)
    stop = min(len(labels), position + _EXCERPT_CONTEXT)
    lines = []
    if start > 0:
        lines.append(f"... {start} earlier deliveries ...")
    for index in range(start, stop):
        marker = ">>" if index == position else "  "
        lines.append(f"{marker} [{index}] {_decode(labels[index])}")
    if position >= len(labels):
        lines.append(f">> [{position}] (stream ends)")
    return lines


def compare_label_sequences(
    variant_a: str,
    variant_b: str,
    pid: int,
    labels_a: Sequence[bytes],
    labels_b: Sequence[bytes],
    phase: str,
    require_equal_length: bool = True,
) -> Optional[ConformanceDivergence]:
    """Compare two per-participant label sequences elementwise.

    Returns the first diverging delivery as a structured divergence, or
    ``None`` when the sequences agree.  With
    ``require_equal_length=False`` only the common prefix is compared
    (used for calm-prefix checks, where the fault may cut one variant's
    region shorter than the other's without any protocol difference).
    """
    common = min(len(labels_a), len(labels_b))
    for position in range(common):
        if labels_a[position] != labels_b[position]:
            return ConformanceDivergence(
                kind="order",
                variant_a=variant_a,
                variant_b=variant_b,
                phase=phase,
                pid=pid,
                seq=position,
                expected=_decode(labels_a[position]),
                actual=_decode(labels_b[position]),
                excerpt_a=_excerpt(labels_a, position),
                excerpt_b=_excerpt(labels_b, position),
            )
    if require_equal_length and len(labels_a) != len(labels_b):
        shorter = variant_b if len(labels_b) < len(labels_a) else variant_a
        return ConformanceDivergence(
            kind="missing",
            variant_a=variant_a,
            variant_b=variant_b,
            phase=phase,
            pid=pid,
            seq=common,
            detail=(
                f"{shorter} stops after {common} deliveries "
                f"({variant_a}: {len(labels_a)}, {variant_b}: {len(labels_b)})"
            ),
            excerpt_a=_excerpt(labels_a, common),
            excerpt_b=_excerpt(labels_b, common),
        )
    return None


def compare_runs(
    baseline: VariantRun, other: VariantRun, faulty: bool
) -> List[ConformanceDivergence]:
    """All divergences between one variant pair's recorded runs."""
    divergences: List[ConformanceDivergence] = []
    pids = sorted(set(baseline.streams) | set(other.streams))
    if not faulty:
        for pid in pids:
            found = compare_label_sequences(
                baseline.variant,
                other.variant,
                pid,
                baseline.labels(pid),
                other.labels(pid),
                phase="full",
            )
            if found is not None:
                divergences.append(found)
        return divergences
    for pid in pids:
        found = compare_label_sequences(
            baseline.variant,
            other.variant,
            pid,
            baseline.calm_prefix(pid),
            other.calm_prefix(pid),
            phase="calm",
            require_equal_length=False,
        )
        if found is not None:
            divergences.append(found)
    probe_pids = sorted(
        set(baseline.final_members) & set(other.final_members)
    )
    for pid in probe_pids:
        found = compare_label_sequences(
            baseline.variant,
            other.variant,
            pid,
            baseline.labels(pid, phase=PHASE_PROBE),
            other.labels(pid, phase=PHASE_PROBE),
            phase=PHASE_PROBE,
        )
        if found is not None:
            divergences.append(found)
    return divergences


@dataclass
class ConformanceReport:
    """The outcome of one differential run, JSON-round-trippable so a
    divergence found by the nightly job replays with one command."""

    workload: Workload
    plan_events: List[Dict[str, Any]]
    seed: int
    variants: Tuple[str, ...]
    divergences: List[ConformanceDivergence] = field(default_factory=list)
    coverage: Optional[CoverageReport] = None
    deliveries: Dict[str, int] = field(default_factory=dict)
    converged: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def plan(self) -> FaultPlan:
        return FaultPlan.from_dicts(self.plan_events)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "plan": self.plan_events,
            "seed": self.seed,
            "variants": list(self.variants),
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "coverage": self.coverage.to_dict() if self.coverage else None,
            "deliveries": dict(sorted(self.deliveries.items())),
            "converged": dict(sorted(self.converged.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConformanceReport":
        coverage = payload.get("coverage")
        return cls(
            workload=Workload.from_dict(payload["workload"]),
            plan_events=list(payload.get("plan", [])),
            seed=int(payload["seed"]),
            variants=tuple(payload["variants"]),
            divergences=[
                ConformanceDivergence.from_dict(entry)
                for entry in payload.get("divergences", [])
            ],
            coverage=(
                CoverageReport.from_dict(coverage) if coverage else None
            ),
            deliveries=dict(payload.get("deliveries", {})),
            converged=dict(payload.get("converged", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ConformanceReport":
        return cls.from_dict(json.loads(text))


def run_differential(
    workload: Workload,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    variants: Sequence[str] = VARIANT_NAMES,
    runs: Optional[Dict[str, VariantRun]] = None,
) -> ConformanceReport:
    """Run every variant and compare them against the first one.

    ``runs`` lets tests inject pre-recorded (or deliberately mutated)
    :class:`VariantRun` objects for a variant name instead of driving
    the simulator — the mutation fixtures use this to prove the oracle
    actually catches ordering bugs.
    """
    faulty = plan is not None and len(plan) > 0
    coverage = CoverageReport({})
    results: List[VariantRun] = []
    for variant in variants:
        if runs is not None and variant in runs:
            results.append(runs[variant])
            continue
        observer = CoverageObserver()
        results.append(
            run_variant(
                variant, workload, plan=plan, seed=seed, observer=observer
            )
        )
        coverage = coverage.merge(observer.report())
    report = ConformanceReport(
        workload=workload,
        plan_events=plan.to_dicts() if plan is not None else [],
        seed=seed,
        variants=tuple(variants),
        coverage=coverage,
        deliveries={
            run.variant: sum(
                1
                for stream in run.streams.values()
                for event in stream
                if event[0] == MSG
            )
            for run in results
        },
        converged={run.variant: run.converged for run in results},
    )
    baseline = results[0]
    for other in results[1:]:
        report.divergences.extend(compare_runs(baseline, other, faulty))
    for run in results:
        if run.evs_violation is not None:
            report.divergences.append(
                ConformanceDivergence(
                    kind="evs",
                    variant_a=baseline.variant,
                    variant_b=run.variant,
                    phase="full",
                    detail=run.evs_violation,
                )
            )
        if not run.converged:
            report.divergences.append(
                ConformanceDivergence(
                    kind="converge",
                    variant_a=baseline.variant,
                    variant_b=run.variant,
                    phase="quiesce",
                    detail=(
                        f"{run.variant} did not reconverge to a full ring "
                        f"after the fault plan (final members "
                        f"{list(run.final_members)})"
                    ),
                )
            )
    return report
