"""Bounded, systematic exploration of small fault schedules.

``repro soak`` samples the fault-schedule space at random; the explorer
covers it *systematically* at small depth.  Fault instants are not drawn
from a grid but harvested from the protocol itself: a fault-free probe
run records the simulated times of ``on_token_received`` (and, under a
plan, ``on_fault``) observer events, and those instants — the moments
the protocol is actually doing something — anchor the schedules.  Every
combination of up to ``depth`` fault atoms at those instants is
enumerated, folded through the same validity state machine the soak
generator uses (:func:`repro.faults.generator.build_plan`), deduplicated
by the resulting plan, and run through the differential oracle up to a
run budget.  Divergent schedules shrink with the same greedy minimizer
as soak counterexamples (:func:`repro.faults.soak.greedy_minimize`).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.conformance.coverage import CoverageReport
from repro.conformance.differ import ConformanceReport, run_differential
from repro.conformance.variants import run_variant
from repro.conformance.workload import Workload
from repro.faults.generator import (
    Step,
    build_plan,
    steps_from_lists,
    steps_to_lists,
)
from repro.faults.soak import greedy_minimize
from repro.obs.observer import ProtocolObserver

#: One schedule atom: a fault ``action`` against ``pid`` at ``at_ms``
#: (milliseconds after traffic start).
Atom = Tuple[int, str, int]

#: Fault kinds the explorer schedules.  ``crash`` implies a recover
#: 60 ms later and ``pause`` a resume 15 ms later, so every schedule
#: exercises the fault *and* the matching repair path.
DEFAULT_ACTIONS: Tuple[str, ...] = ("token_drop", "crash", "pause", "loss_burst")

#: Fault kinds when the workload runs on a leaf–spine fabric: everything
#: above plus correlated rack failure (the pid selects the rack, modulo
#: the rack count, exactly as in the soak generator).  The quiesce phase
#: restarts every crashed pid, so rack losses converge like crashes.
FABRIC_EXPLORE_ACTIONS: Tuple[str, ...] = DEFAULT_ACTIONS + ("rack_power_loss",)

#: Follow-up delays (ms) for the paired repair steps.
_RECOVER_AFTER_MS = 60
_RESUME_AFTER_MS = 15

#: Default number of harvested instants kept as schedule anchors.
DEFAULT_MAX_INSTANTS = 4

#: Default cap on differential runs per exploration.
DEFAULT_BUDGET = 24


class InstantRecorder(ProtocolObserver):
    """Records when the protocol does something worth perturbing."""

    def __init__(self) -> None:
        self.token_times: List[float] = []
        self.fault_times: List[float] = []

    def on_token_received(self, pid, token, now=None):
        if now is not None:
            self.token_times.append(now)

    def on_fault(self, kind, detail=None, now=None):
        if now is not None:
            self.fault_times.append(now)


def harvest_instants(
    workload: Workload,
    seed: int = 0,
    max_instants: int = DEFAULT_MAX_INSTANTS,
    variant: str = "accelerated",
) -> List[int]:
    """Protocol-meaningful fault instants, in ms after traffic start.

    Runs the workload fault-free under an :class:`InstantRecorder` and
    keeps an even subsample of the token-arrival times that fall inside
    the main traffic window.  Anchoring schedules at token arrivals puts
    every fault where the protocol state machine is mid-flight instead
    of at arbitrary grid points.
    """
    recorder = InstantRecorder()
    run = run_variant(variant, workload, plan=None, seed=seed, observer=recorder)
    window_end = run.traffic_base + workload.traffic_span
    offsets = sorted(
        {
            int(round((moment - run.traffic_base) * 1000.0))
            for moment in recorder.token_times + recorder.fault_times
            if run.traffic_base <= moment <= window_end
        }
    )
    offsets = [offset for offset in offsets if offset > 0]
    if len(offsets) <= max_instants:
        return offsets
    stride = len(offsets) / max_instants
    return [offsets[int(index * stride)] for index in range(max_instants)]


def atom_steps(atom: Atom) -> List[Tuple[int, str, int]]:
    """Expand one atom into absolute-time (at_ms, action, pid) events."""
    at_ms, action, pid = atom
    if action == "crash":
        return [(at_ms, "crash", pid), (at_ms + _RECOVER_AFTER_MS, "recover", pid)]
    if action == "pause":
        return [(at_ms, "pause", pid), (at_ms + _RESUME_AFTER_MS, "resume", pid)]
    return [(at_ms, action, pid)]


def schedule_to_steps(atoms: Sequence[Atom]) -> List[Step]:
    """Flatten a schedule of atoms into delta-encoded generator steps."""
    events = sorted(
        (event for atom in atoms for event in atom_steps(atom)),
        key=lambda event: (event[0], event[1], event[2]),
    )
    steps: List[Step] = []
    previous = 0
    for at_ms, action, pid in events:
        steps.append((at_ms - previous, action, pid))
        previous = at_ms
    return steps


def enumerate_schedules(
    instants: Sequence[int],
    num_hosts: int,
    depth: int,
    actions: Sequence[str] = DEFAULT_ACTIONS,
    pids: Optional[Sequence[int]] = None,
) -> List[Tuple[Atom, ...]]:
    """Every schedule of 1..``depth`` atoms, in deterministic order."""
    targets = list(pids) if pids is not None else list(range(num_hosts))
    atoms = [
        (instant, action, pid)
        for instant in instants
        for action in actions
        for pid in targets
    ]
    schedules: List[Tuple[Atom, ...]] = []
    for size in range(1, depth + 1):
        schedules.extend(itertools.combinations(atoms, size))
    return schedules


@dataclass
class ExplorationCase:
    """One schedule that diverged, shrunk to a minimal reproducer."""

    atoms: List[Atom]
    steps: List[Step]
    minimized_steps: List[Step]
    report: ConformanceReport

    def to_dict(self) -> Dict[str, Any]:
        return {
            "atoms": [list(atom) for atom in self.atoms],
            "steps": steps_to_lists(self.steps),
            "minimized_steps": steps_to_lists(self.minimized_steps),
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationCase":
        return cls(
            atoms=[tuple(atom) for atom in payload.get("atoms", [])],
            steps=steps_from_lists(payload["steps"]),
            minimized_steps=steps_from_lists(payload["minimized_steps"]),
            report=ConformanceReport.from_dict(payload["report"]),
        )


@dataclass
class ExplorationReport:
    """Summary of one bounded exploration, JSON-ready for CI artifacts.

    ``enumerated``/``deduped``/``ran``/``skipped_budget`` account for
    every schedule: nothing is dropped silently — a schedule is either
    run, collapsed into an equivalent one, or explicitly counted against
    the budget.
    """

    workload: Workload
    seed: int
    depth: int
    budget: int
    variants: Tuple[str, ...]
    instants: List[int] = field(default_factory=list)
    enumerated: int = 0
    deduped: int = 0
    ran: int = 0
    skipped_budget: int = 0
    divergent: List[ExplorationCase] = field(default_factory=list)
    coverage: Optional[CoverageReport] = None

    @property
    def ok(self) -> bool:
        return not self.divergent

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "seed": self.seed,
            "depth": self.depth,
            "budget": self.budget,
            "variants": list(self.variants),
            "instants": list(self.instants),
            "enumerated": self.enumerated,
            "deduped": self.deduped,
            "ran": self.ran,
            "skipped_budget": self.skipped_budget,
            "ok": self.ok,
            "divergent": [case.to_dict() for case in self.divergent],
            "coverage": self.coverage.to_dict() if self.coverage else None,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationReport":
        coverage = payload.get("coverage")
        report = cls(
            workload=Workload.from_dict(payload["workload"]),
            seed=int(payload["seed"]),
            depth=int(payload["depth"]),
            budget=int(payload["budget"]),
            variants=tuple(payload["variants"]),
            instants=[int(value) for value in payload.get("instants", [])],
            enumerated=int(payload.get("enumerated", 0)),
            deduped=int(payload.get("deduped", 0)),
            ran=int(payload.get("ran", 0)),
            skipped_budget=int(payload.get("skipped_budget", 0)),
            divergent=[
                ExplorationCase.from_dict(entry)
                for entry in payload.get("divergent", [])
            ],
        )
        if coverage:
            report.coverage = CoverageReport.from_dict(coverage)
        return report

    @classmethod
    def from_json(cls, text: str) -> "ExplorationReport":
        return cls.from_dict(json.loads(text))


def explore(
    workload: Workload,
    depth: int = 2,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    variants: Sequence[str] = ("original", "accelerated"),
    actions: Sequence[str] = DEFAULT_ACTIONS,
    max_instants: int = DEFAULT_MAX_INSTANTS,
    pids: Optional[Sequence[int]] = None,
    minimize: bool = True,
    progress: Optional[Callable[[int, int, bool], None]] = None,
) -> ExplorationReport:
    """Systematically test fault schedules up to ``depth`` atoms.

    Schedules whose folded plans coincide are run once; runs stop at
    ``budget`` differential runs, with the remainder counted in
    ``skipped_budget``.  ``progress`` is called after each run with
    ``(ran, total_candidates, diverged)``.
    """
    racks = getattr(workload, "fabric_racks", 0)
    if racks and tuple(actions) == DEFAULT_ACTIONS:
        actions = FABRIC_EXPLORE_ACTIONS
    instants = harvest_instants(
        workload, seed=seed, max_instants=max_instants
    )
    report = ExplorationReport(
        workload=workload,
        seed=seed,
        depth=depth,
        budget=budget,
        variants=tuple(variants),
        instants=instants,
    )
    coverage = CoverageReport({})
    schedules = enumerate_schedules(
        instants, workload.num_hosts, depth, actions=actions, pids=pids
    )
    report.enumerated = len(schedules)
    seen: set = set()
    for atoms in schedules:
        steps = schedule_to_steps(atoms)
        plan = build_plan(steps, workload.num_hosts, racks=racks)
        signature = json.dumps(plan.to_dicts(), sort_keys=True)
        if signature in seen:
            report.deduped += 1
            continue
        seen.add(signature)
        if report.ran >= budget:
            report.skipped_budget += 1
            continue
        case_report = run_differential(
            workload, plan=plan, seed=seed, variants=variants
        )
        report.ran += 1
        if case_report.coverage is not None:
            coverage = coverage.merge(case_report.coverage)
        if not case_report.ok:
            minimized = steps
            if minimize:

                def still_diverges(candidate: List[Step]) -> bool:
                    candidate_plan = build_plan(
                        candidate, workload.num_hosts, racks=racks
                    )
                    return not run_differential(
                        workload,
                        plan=candidate_plan,
                        seed=seed,
                        variants=variants,
                    ).ok

                minimized = greedy_minimize(steps, still_diverges)
            report.divergent.append(
                ExplorationCase(
                    atoms=list(atoms),
                    steps=steps,
                    minimized_steps=minimized,
                    report=case_report,
                )
            )
        if progress is not None:
            progress(report.ran, min(len(seen), budget), not case_report.ok)
    report.coverage = coverage
    return report
