"""Cross-shard conformance: the sharded-ordering oracle.

The multi-ring layer makes two testable promises (docs/PROTOCOL.md
§11):

1. **Per-shard EVS** — each ring is a complete membership + ordering
   stack, so every single-ring guarantee holds per ring, faults
   included.
2. **Subscriber-identical merge** — the per-group delivery stream, and
   the round-robin merge over any group set, is the same for every
   subscriber — and, fault-free, the same *regardless of how many
   rings the groups are sharded over*: a group's stream under 2 rings
   must be byte-identical to its stream under 1 ring.

This module turns both into oracles in the style of
:mod:`repro.conformance.differ`:

* :func:`run_sharded` drives a deterministic per-group workload
  through an N-ring cluster (optionally with a fault plan against one
  ring) and records per-group streams from every vantage.
* :func:`run_sharded_differential` compares those streams across ring
  counts (1 vs 2 by default) and across vantages, reporting structured
  :class:`~repro.conformance.differ.ConformanceDivergence` records.
* :func:`explore_sharded` enumerates a bounded depth-1 fault schedule
  grid (crash+recover, pause+resume, token drop — per ring, per
  anchor) and checks that every ring's EVS suite stays clean and the
  cluster reconverges.  Cross-ring-count equality is *not* asserted
  under faults — fault timing legitimately changes delivery sets — so
  the explorer checks the per-shard guarantees only.

The workload submits each group's messages from one canonical sender
in strict sequence (the single-sender discipline of
:mod:`repro.conformance.workload`), so fault-free per-group delivery
order is the submission order on any topology, making cross-topology
comparison unambiguous.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conformance.differ import (
    ConformanceDivergence,
    compare_label_sequences,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PlanBuilder
from repro.multiring.cluster import MultiRingCluster
from repro.sim.build import ClusterBuilder
from repro.util.errors import ConfigurationError

#: Boot window before traffic (matches the variant driver).
_BOOT = 0.08
#: Convergence polling: fixed slices keep the schedule deterministic.
_POLL_SLICE = 0.05
_MAX_POLLS = 60
#: Settle time after the last scheduled submission.
_TAIL = 0.3


@dataclass(frozen=True)
class ShardedWorkload:
    """A deterministic per-group submission schedule.

    ``messages_per_group`` messages per group, submitted round-robin
    across groups ``spacing`` seconds apart, each group always from its
    canonical sender (:meth:`MultiRingCluster.sender_of`) so the
    per-group order is the submission order on every topology.

    The default six groups hash across both rings at N=2 and across
    all four at N=4, so the differential exercises the cross-shard
    merge, not just a single loaded ring.
    """

    num_groups: int = 6
    messages_per_group: int = 6
    hosts_per_ring: int = 4
    spacing: float = 0.004

    def groups(self) -> Tuple[str, ...]:
        return tuple(f"g{index}" for index in range(self.num_groups))

    def label(self, group: str, index: int) -> bytes:
        return f"{group}.{index}".encode("ascii")

    @property
    def traffic_span(self) -> float:
        return self.num_groups * self.messages_per_group * self.spacing

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_groups": self.num_groups,
            "messages_per_group": self.messages_per_group,
            "hosts_per_ring": self.hosts_per_ring,
            "spacing": self.spacing,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardedWorkload":
        return cls(
            num_groups=int(payload["num_groups"]),
            messages_per_group=int(payload["messages_per_group"]),
            hosts_per_ring=int(payload["hosts_per_ring"]),
            spacing=float(payload["spacing"]),
        )


@dataclass
class ShardedRun:
    """One N-ring drive: per-group streams from every vantage."""

    num_rings: int
    #: group → canonical-vantage payload sequence.
    group_streams: Dict[str, List[bytes]]
    #: group → ring index it was sharded onto.
    shard_of: Dict[str, int]
    #: group → vantage pid → payload sequence (every live member of the
    #: group's ring).
    vantage_streams: Dict[str, Dict[int, List[bytes]]]
    #: vantage pid → merged (group, payload) stream over all groups,
    #: for pids live on every spanned ring.
    merged_streams: Dict[int, List[Tuple[str, bytes]]]
    evs_violations: Dict[int, str]
    converged: bool
    crashed_pids: frozenset
    deliveries: int
    cluster: MultiRingCluster

    @property
    def name(self) -> str:
        return f"rings-{self.num_rings}"


def run_sharded(
    num_rings: int,
    workload: Optional[ShardedWorkload] = None,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    plan_ring: int = 0,
) -> ShardedRun:
    """Drive ``workload`` through an ``num_rings``-ring cluster.

    ``plan`` (optional) is armed against ring ``plan_ring`` after boot,
    exactly as the single-ring conformance driver arms its plans; the
    other rings see no injected faults, which is itself part of what
    the per-shard EVS check verifies (fault isolation).
    """
    workload = workload if workload is not None else ShardedWorkload()
    if plan is not None and not 0 <= plan_ring < num_rings:
        raise ConfigurationError(
            f"plan_ring {plan_ring} out of range for {num_rings} rings"
        )
    cluster = (
        ClusterBuilder()
        .rings(num_rings)
        .hosts(workload.hosts_per_ring)
        .membership()
        .build_multiring()
    )
    cluster.start()
    cluster.run(_BOOT)

    if plan is not None and len(plan) > 0:
        injector = FaultInjector(
            cluster.ring(plan_ring), plan, rng=random.Random(seed)
        )
        injector.arm()

    groups = workload.groups()
    base = cluster.sim.now
    when = base
    for index in range(workload.messages_per_group):
        for group in groups:
            cluster.sim.schedule_at(
                when, cluster.submit, group, workload.label(group, index)
            )
            when += workload.spacing
    horizon = when - base
    if plan is not None and len(plan) > 0:
        horizon = max(horizon, plan.horizon)
    cluster.run(horizon + 0.1)

    # Quiesce: heal every ring, resume stalls, restart crashes, poll.
    cluster.heal()
    for ring in cluster.rings:
        for host in ring.hosts.values():
            host.resume()
    crashed = plan.crashed_pids() if plan is not None else set()
    for pid in sorted(crashed):
        cluster.ring(plan_ring).restart(pid)
    converged = False
    for _ in range(_MAX_POLLS):
        cluster.run(_POLL_SLICE)
        if cluster.converged():
            converged = True
            break
    cluster.run(_TAIL)

    shard_of = {group: cluster.ring_of(group) for group in groups}
    group_streams: Dict[str, List[bytes]] = {}
    vantage_streams: Dict[str, Dict[int, List[bytes]]] = {}
    for group in groups:
        ring_index = shard_of[group]
        live = cluster.ring(ring_index).live_pids()
        per_pid = {
            pid: [
                payload
                for _, payload in cluster.group_stream(
                    ring_index, pid, groups={group}
                )
            ]
            for pid in live
        }
        vantage_streams[group] = per_pid
        group_streams[group] = per_pid[live[0]] if live else []

    spanned = cluster.shard_map.rings_for(groups)
    common_live = None
    for ring_index in spanned:
        live = set(cluster.ring(ring_index).live_pids())
        common_live = live if common_live is None else common_live & live
    merged_streams = {
        pid: cluster.merged_stream(list(groups), vantage=pid)
        for pid in sorted(common_live or ())
    }

    waiver = {plan_ring: frozenset(crashed)} if crashed else None
    return ShardedRun(
        num_rings=num_rings,
        group_streams=group_streams,
        shard_of=shard_of,
        vantage_streams=vantage_streams,
        merged_streams=merged_streams,
        evs_violations=cluster.check_evs(crashed=waiver),
        converged=converged,
        crashed_pids=frozenset(crashed),
        deliveries=sum(len(stream) for stream in group_streams.values()),
        cluster=cluster,
    )


# ----------------------------------------------------------------------
# The cross-topology differential
# ----------------------------------------------------------------------


def _merge_labels(stream: Sequence[Tuple[str, bytes]]) -> List[bytes]:
    """Flatten a merged (group, payload) stream into comparable labels."""
    return [group.encode("ascii") + b"/" + payload for group, payload in stream]


@dataclass
class ShardedReport:
    """The outcome of one sharded differential, JSON-round-trippable."""

    workload: ShardedWorkload
    seed: int
    ring_counts: Tuple[int, ...]
    divergences: List[ConformanceDivergence] = field(default_factory=list)
    deliveries: Dict[str, int] = field(default_factory=dict)
    evs: Dict[str, Dict[int, str]] = field(default_factory=dict)
    converged: Dict[str, bool] = field(default_factory=dict)
    shards: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "seed": self.seed,
            "ring_counts": list(self.ring_counts),
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "deliveries": dict(sorted(self.deliveries.items())),
            "evs": {
                name: {str(ring): text for ring, text in sorted(violations.items())}
                for name, violations in sorted(self.evs.items())
            },
            "converged": dict(sorted(self.converged.items())),
            "shards": {
                name: dict(sorted(mapping.items()))
                for name, mapping in sorted(self.shards.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardedReport":
        return cls(
            workload=ShardedWorkload.from_dict(payload["workload"]),
            seed=int(payload["seed"]),
            ring_counts=tuple(int(n) for n in payload["ring_counts"]),
            divergences=[
                ConformanceDivergence.from_dict(entry)
                for entry in payload.get("divergences", [])
            ],
            deliveries=dict(payload.get("deliveries", {})),
            evs={
                name: {int(ring): text for ring, text in violations.items()}
                for name, violations in payload.get("evs", {}).items()
            },
            converged=dict(payload.get("converged", {})),
            shards={
                name: dict(mapping)
                for name, mapping in payload.get("shards", {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardedReport":
        return cls.from_dict(json.loads(text))


def _check_run_consistency(run: ShardedRun) -> List[ConformanceDivergence]:
    """Within one run: every vantage must observe the same streams."""
    divergences: List[ConformanceDivergence] = []
    for group, per_pid in sorted(run.vantage_streams.items()):
        pids = sorted(per_pid)
        if not pids:
            continue
        reference = per_pid[pids[0]]
        for pid in pids[1:]:
            found = compare_label_sequences(
                f"{run.name}/pid{pids[0]}",
                f"{run.name}/pid{pid}",
                pid,
                reference,
                per_pid[pid],
                phase=f"group:{group}",
            )
            if found is not None:
                divergences.append(found)
    vantages = sorted(run.merged_streams)
    if vantages:
        reference = _merge_labels(run.merged_streams[vantages[0]])
        for pid in vantages[1:]:
            found = compare_label_sequences(
                f"{run.name}/pid{vantages[0]}",
                f"{run.name}/pid{pid}",
                pid,
                reference,
                _merge_labels(run.merged_streams[pid]),
                phase="merged",
            )
            if found is not None:
                divergences.append(found)
    return divergences


def run_sharded_differential(
    workload: Optional[ShardedWorkload] = None,
    ring_counts: Sequence[int] = (1, 2),
    seed: int = 0,
) -> ShardedReport:
    """Fault-free differential: the same workload at several ring counts.

    Three properties are compared:

    * per-group streams are identical across ring counts (sharding is
      invisible within a group);
    * within each run, every vantage observes identical per-group and
      merged streams (subscriber-identical order);
    * every ring of every run passes the full EVS suite and converges.
    """
    workload = workload if workload is not None else ShardedWorkload()
    if len(ring_counts) < 2:
        raise ConfigurationError(
            f"differential needs at least two ring counts, got {ring_counts!r}"
        )
    runs = [run_sharded(count, workload, seed=seed) for count in ring_counts]
    report = ShardedReport(
        workload=workload,
        seed=seed,
        ring_counts=tuple(ring_counts),
        deliveries={run.name: run.deliveries for run in runs},
        evs={run.name: dict(run.evs_violations) for run in runs},
        converged={run.name: run.converged for run in runs},
        shards={run.name: dict(run.shard_of) for run in runs},
    )
    baseline = runs[0]
    for other in runs[1:]:
        for group_index, group in enumerate(sorted(baseline.group_streams)):
            found = compare_label_sequences(
                baseline.name,
                other.name,
                group_index,
                baseline.group_streams[group],
                other.group_streams.get(group, []),
                phase=f"group:{group}",
            )
            if found is not None:
                report.divergences.append(found)
    for run in runs:
        report.divergences.extend(_check_run_consistency(run))
        for ring_index, violation in sorted(run.evs_violations.items()):
            report.divergences.append(
                ConformanceDivergence(
                    kind="evs",
                    variant_a=baseline.name,
                    variant_b=f"{run.name}/ring{ring_index}",
                    phase="full",
                    detail=violation,
                )
            )
        if not run.converged:
            report.divergences.append(
                ConformanceDivergence(
                    kind="converge",
                    variant_a=baseline.name,
                    variant_b=run.name,
                    phase="quiesce",
                    detail=f"{run.name} did not reconverge",
                )
            )
    return report


# ----------------------------------------------------------------------
# Depth-1 fault exploration (per-shard EVS under faults)
# ----------------------------------------------------------------------

#: Depth-1 schedule kinds explored per (ring, anchor).
EXPLORE_KINDS: Tuple[str, ...] = ("crash-recover", "pause-resume", "token-drop")


def _depth1_plan(kind: str, pid: int, at: float) -> FaultPlan:
    builder = PlanBuilder()
    if kind == "crash-recover":
        builder.crash(pid, at=at).recover(pid, at=at + 0.3)
    elif kind == "pause-resume":
        builder.pause(pid, at=at).resume(pid, at=at + 0.15)
    elif kind == "token-drop":
        builder.token_drop(at=at)
    else:
        raise ConfigurationError(f"unknown schedule kind {kind!r}")
    return builder.build()


@dataclass
class ShardedExplorationReport:
    """Outcome of a depth-1 sweep: per-case EVS + convergence verdicts."""

    num_rings: int
    workload: ShardedWorkload
    seed: int
    cases: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [case for case in self.cases if not case["ok"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_rings": self.num_rings,
            "workload": self.workload.to_dict(),
            "seed": self.seed,
            "ok": self.ok,
            "cases": self.cases,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def explore_sharded(
    num_rings: int = 2,
    workload: Optional[ShardedWorkload] = None,
    seed: int = 0,
    kinds: Sequence[str] = EXPLORE_KINDS,
    anchors: Sequence[float] = (0.25, 0.6),
    pids: Sequence[int] = (0,),
    progress=None,
) -> ShardedExplorationReport:
    """Sweep every depth-1 schedule over every ring.

    Each case injects one minimal fault schedule into exactly one ring
    and checks the per-shard guarantees: every ring's EVS suite passes
    (crashed incarnations waived on the faulted ring only) and the
    whole cluster reconverges.  The grid is
    ``rings × kinds × anchors × pids``; anchors are fractions of the
    traffic span.
    """
    workload = workload if workload is not None else ShardedWorkload()
    report = ShardedExplorationReport(
        num_rings=num_rings, workload=workload, seed=seed
    )
    for ring_index in range(num_rings):
        for kind in kinds:
            for anchor in anchors:
                at = round(anchor * workload.traffic_span, 6)
                for pid in pids if kind != "token-drop" else (0,):
                    plan = _depth1_plan(kind, pid, at)
                    run = run_sharded(
                        num_rings,
                        workload,
                        seed=seed,
                        plan=plan,
                        plan_ring=ring_index,
                    )
                    ok = not run.evs_violations and run.converged
                    case = {
                        "ring": ring_index,
                        "kind": kind,
                        "pid": pid,
                        "at": at,
                        "ok": ok,
                        "converged": run.converged,
                        "evs": {
                            str(ring): text
                            for ring, text in sorted(
                                run.evs_violations.items()
                            )
                        },
                        "deliveries": run.deliveries,
                    }
                    report.cases.append(case)
                    if progress is not None:
                        status = "ok" if ok else "FAIL"
                        progress(
                            f"  ring {ring_index} {kind} pid {pid} "
                            f"@{at:.3f}: {status}"
                        )
    return report
