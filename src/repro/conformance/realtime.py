"""Sim↔real differential oracle: one workload, two implementations.

Every other oracle in :mod:`repro.conformance` compares protocol
*variants* inside the deterministic simulator.  This one compares the
simulator against the asyncio/UDP runtime: the same seeded, serialized
workload is driven through a simulated membership cluster and through a
fleet of real :class:`~repro.runtime.node.RingNode` processes on
loopback, per-pid delivery streams are captured with the same
:class:`~repro.conformance.variants.ConformanceTap`, and the streams
are compared with the existing
:func:`~repro.conformance.differ.compare_runs` /
:class:`~repro.conformance.differ.ConformanceDivergence` machinery.

Soundness — why the comparison is exact and not merely statistical: the
real runtime's interleaving of *concurrent* senders depends on wall
clock scheduling, so free-running bursts would order differently on
every run and differ from the simulator without any bug.  The workload
here is therefore **serialized**: one sender per burst, and a barrier
after every burst that waits until every live node has delivered the
whole burst.  Under that schedule the total order is
schedule-independent — it must equal the submission order — so
fault-free streams must be *identical* between sim and real, and any
divergence is an implementation bug, not scheduling noise.  Faults are
likewise injected only at barriers (no messages in flight), so under a
crash/restart the calm prefix and the probe round must also agree;
what this oracle deliberately does **not** exercise is contended
multi-sender interleaving or recovery of in-flight traffic — the sim
oracle owns those.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.conformance.differ import ConformanceDivergence, compare_runs
from repro.conformance.variants import (
    MSG,
    PHASE_MAIN,
    PHASE_PROBE,
    ConformanceTap,
    VariantRun,
)
from repro.conformance.workload import make_label
from repro.core.messages import DeliveryService
from repro.evs.checker import EvsViolation
from repro.membership.params import MembershipTimeouts
from repro.runtime.node import RingNode
from repro.runtime.ports import ephemeral_ring_addresses
from repro.sim.build import ClusterBuilder
from repro.sim.profiles import DAEMON

SIM_VARIANT = "sim"
REAL_VARIANT = "real"

#: Tight membership timeouts for the loopback side of the oracle: the
#: barriers serialize the traffic, so the only wall-clock cost is ring
#: formation and reformation.
REALTIME_TIMEOUTS = MembershipTimeouts(
    token_loss=0.25,
    join_interval=0.05,
    consensus_timeout=0.2,
    commit_timeout=0.5,
    recovery_status_interval=0.05,
    recovery_timeout=2.0,
    beacon_interval=0.2,
)

_SIM_POLL_SLICE = 0.02
_SIM_MAX_POLLS = 400
_REAL_BARRIER_TIMEOUT = 8.0
_REAL_FORM_TIMEOUT = 15.0


@dataclass(frozen=True)
class RealtimeWorkload:
    """A serialized workload both implementations replay in lock step."""

    num_hosts: int = 3
    bursts: int = 6
    burst_size: int = 5
    payload_size: int = 32
    probe_bursts: int = 3
    probe_burst_size: int = 4
    #: Burst indices (barriers) at which the crash plan fires.
    crash_burst: int = 2
    restart_burst: int = 4

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_hosts": self.num_hosts,
            "bursts": self.bursts,
            "burst_size": self.burst_size,
            "payload_size": self.payload_size,
            "probe_bursts": self.probe_bursts,
            "probe_burst_size": self.probe_burst_size,
            "crash_burst": self.crash_burst,
            "restart_burst": self.restart_burst,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RealtimeWorkload":
        return cls(**{key: int(payload[key]) for key in cls().to_dict()})


def build_schedule(
    workload: RealtimeWorkload, crash: bool
) -> List[Tuple[Any, ...]]:
    """The shared event script: both runners consume this verbatim.

    Events: ``("burst", sender, size, live_members)``, ``("crash",
    pid)``, ``("restart", pid)``, ``("probe",)``.  Keeping the script a
    pure function of (workload, crash) is what locks the two
    implementations to the same submission order.
    """
    events: List[Tuple[Any, ...]] = []
    live = list(range(workload.num_hosts))
    crash_pid = workload.num_hosts - 1
    for index in range(workload.bursts):
        if crash and index == workload.crash_burst:
            events.append(("crash", crash_pid))
            live.remove(crash_pid)
        if crash and index == workload.restart_burst:
            events.append(("restart", crash_pid))
            live.append(crash_pid)
            live.sort()
        sender = live[index % len(live)]
        events.append(("burst", sender, workload.burst_size, tuple(live)))
    events.append(("probe",))
    for index in range(workload.probe_bursts):
        sender = live[index % len(live)]
        events.append(("burst", sender, workload.probe_burst_size, tuple(live)))
    return events


class _LabelCounter:
    """Per-sender label indices, identical across both runners."""

    def __init__(self, payload_size: int) -> None:
        self.payload_size = payload_size
        self._next: Dict[int, int] = {}

    def labels(self, pid: int, count: int) -> List[bytes]:
        start = self._next.get(pid, 0)
        self._next[pid] = start + count
        return [
            make_label(pid, start + offset, pad_to=self.payload_size)
            for offset in range(count)
        ]


def _message_counts(tap: ConformanceTap) -> Dict[int, int]:
    return {
        pid: sum(1 for event in stream if event[0] == MSG)
        for pid, stream in tap.streams.items()
    }


# ----------------------------------------------------------------------
# Simulator side
# ----------------------------------------------------------------------


def run_sim_serialized(
    workload: RealtimeWorkload, crash: bool = False, accelerated: bool = True
) -> VariantRun:
    """Replay the serialized schedule on the membership simulator."""
    tap = ConformanceTap()
    cluster = (
        ClusterBuilder()
        .hosts(workload.num_hosts)
        .membership()
        .accelerated(accelerated)
        .profile(DAEMON)
        .tap(tap)
        .build_membership()
    )
    counter = _LabelCounter(workload.payload_size)
    expected: Dict[int, int] = {pid: 0 for pid in range(workload.num_hosts)}
    converged = True

    def poll(check) -> bool:
        for _ in range(_SIM_MAX_POLLS):
            if check():
                return True
            cluster.run(_SIM_POLL_SLICE)
        return check()

    def ring_is(members: Tuple[int, ...]) -> bool:
        # Ring *ids*, not member tuples: after a fault the membership
        # layer may transiently form concurrent rings whose member lists
        # happen to be identical (EVS allows it) — submitting into one
        # of those strands the burst in a configuration the other
        # processes never install.  A single shared config id is the
        # stable-ring condition.
        states = cluster.states()
        ring_ids = {
            cluster.hosts[pid].controller.ring_id for pid in members
        }
        rings = set(cluster.rings().values())
        return (
            all(states.get(pid) == "operational" for pid in members)
            and len(ring_ids) == 1
            and None not in ring_ids
            and len(rings) == 1
            and tuple(sorted(next(iter(rings)))) == members
        )

    def barrier(live: Tuple[int, ...]) -> bool:
        counts = _message_counts(tap)
        return all(counts.get(pid, 0) >= expected[pid] for pid in live)

    cluster.start()
    if not poll(lambda: ring_is(tuple(range(workload.num_hosts)))):
        converged = False
    tap.mark(PHASE_MAIN, range(workload.num_hosts))

    for event in build_schedule(workload, crash):
        if event[0] == "burst":
            _, sender, size, live = event
            for label in counter.labels(sender, size):
                cluster.hosts[sender].submit(
                    payload=label,
                    service=DeliveryService.AGREED,
                    payload_size=len(label),
                )
                for pid in live:
                    expected[pid] += 1
            if not poll(lambda: barrier(live)):
                converged = False
        elif event[0] == "crash":
            pid = event[1]
            cluster.crash(pid)
            survivors = tuple(
                p for p in range(workload.num_hosts) if p != pid
            )
            if not poll(lambda: ring_is(survivors)):
                converged = False
        elif event[0] == "restart":
            pid = event[1]
            cluster.restart(pid)
            if not poll(lambda: ring_is(tuple(range(workload.num_hosts)))):
                converged = False
        elif event[0] == "probe":
            tap.mark(PHASE_PROBE, cluster.live_pids())

    crashed = frozenset({workload.num_hosts - 1}) if crash else frozenset()
    violation: Optional[str] = None
    try:
        cluster.checker.check(crashed=crashed)
    except EvsViolation as exc:
        violation = str(exc)
    rings = sorted(set(cluster.rings().values()))
    final = rings[0] if rings else ()
    return VariantRun(
        variant=SIM_VARIANT,
        streams=tap.streams,
        evs_violation=violation,
        converged=converged,
        final_members=tuple(sorted(final)),
        traffic_base=0.0,
        sim_time=cluster.sim.now,
        crashed_pids=crashed,
        cluster=cluster,
    )


# ----------------------------------------------------------------------
# Real (asyncio/UDP loopback) side
# ----------------------------------------------------------------------


async def _run_real_serialized_async(
    workload: RealtimeWorkload, crash: bool, accelerated: bool
) -> VariantRun:
    tap = ConformanceTap()
    addresses = ephemeral_ring_addresses(range(workload.num_hosts))
    nodes: Dict[int, RingNode] = {}
    counter = _LabelCounter(workload.payload_size)
    expected: Dict[int, int] = {pid: 0 for pid in range(workload.num_hosts)}
    converged = True
    started = time.monotonic()

    def hook(pid: int, node: RingNode) -> None:
        node.on_deliver = lambda message, config_id: tap.on_deliver(
            pid, message, config_id, config_id
        )
        node.on_config = lambda configuration: tap.on_config(pid, configuration)

    def make_node(pid: int) -> RingNode:
        node = RingNode(
            pid,
            addresses,
            accelerated=accelerated,
            timeouts=REALTIME_TIMEOUTS,
        )
        hook(pid, node)
        return node

    async def wait_for(check, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while not check():
            if time.monotonic() > deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    def ring_is(members: Tuple[int, ...]) -> bool:
        # Same stable-ring condition as the sim side: one shared config
        # id across every live node, not merely identical member tuples.
        ring_ids = {nodes[pid].ring_id for pid in members}
        return (
            all(
                nodes[pid].state == "operational"
                and tuple(nodes[pid].members) == members
                for pid in members
            )
            and len(ring_ids) == 1
            and None not in ring_ids
        )

    def barrier(live: Tuple[int, ...]) -> bool:
        counts = _message_counts(tap)
        return all(counts.get(pid, 0) >= expected[pid] for pid in live)

    for pid in range(workload.num_hosts):
        nodes[pid] = make_node(pid)
    for node in nodes.values():
        await node.start()
    if not await wait_for(
        lambda: ring_is(tuple(range(workload.num_hosts))), _REAL_FORM_TIMEOUT
    ):
        converged = False
    tap.mark(PHASE_MAIN, range(workload.num_hosts))

    try:
        for event in build_schedule(workload, crash):
            if event[0] == "burst":
                _, sender, size, live = event
                for label in counter.labels(sender, size):
                    nodes[sender].submit(payload=label)
                    for pid in live:
                        expected[pid] += 1
                if not await wait_for(
                    lambda: barrier(live), _REAL_BARRIER_TIMEOUT
                ):
                    converged = False
            elif event[0] == "crash":
                pid = event[1]
                node = nodes.pop(pid)
                await node.stop()
                survivors = tuple(
                    p for p in range(workload.num_hosts) if p != pid
                )
                if not await wait_for(
                    lambda: ring_is(survivors), _REAL_FORM_TIMEOUT
                ):
                    converged = False
            elif event[0] == "restart":
                pid = event[1]
                tap.on_restart(pid)
                nodes[pid] = make_node(pid)
                await nodes[pid].start()
                if not await wait_for(
                    lambda: ring_is(tuple(range(workload.num_hosts))),
                    _REAL_FORM_TIMEOUT,
                ):
                    converged = False
            elif event[0] == "probe":
                tap.mark(PHASE_PROBE, sorted(nodes))
        final_members = tuple(sorted(nodes))
        if nodes:
            any_pid = next(iter(nodes))
            final_members = tuple(sorted(nodes[any_pid].members))
    finally:
        for node in nodes.values():
            await node.stop()

    crashed = frozenset({workload.num_hosts - 1}) if crash else frozenset()
    return VariantRun(
        variant=REAL_VARIANT,
        streams=tap.streams,
        evs_violation=None,  # the EVS checker needs the sim's omniscience
        converged=converged,
        final_members=final_members,
        traffic_base=0.0,
        sim_time=time.monotonic() - started,
        crashed_pids=crashed,
    )


def run_real_serialized(
    workload: RealtimeWorkload, crash: bool = False, accelerated: bool = True
) -> VariantRun:
    """Replay the serialized schedule on real loopback UDP nodes."""
    return asyncio.run(_run_real_serialized_async(workload, crash, accelerated))


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


@dataclass
class RealtimeReport:
    """Outcome of one sim↔real differential run (JSON round-trippable)."""

    workload: RealtimeWorkload
    crash: bool
    divergences: List[ConformanceDivergence] = field(default_factory=list)
    deliveries: Dict[str, int] = field(default_factory=dict)
    converged: Dict[str, bool] = field(default_factory=dict)
    real_wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences and all(self.converged.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "crash": self.crash,
            "variants": [SIM_VARIANT, REAL_VARIANT],
            "divergences": [d.to_dict() for d in self.divergences],
            "deliveries": dict(self.deliveries),
            "converged": dict(self.converged),
            "real_wall_s": round(self.real_wall_s, 3),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RealtimeReport":
        return cls(
            workload=RealtimeWorkload.from_dict(payload["workload"]),
            crash=bool(payload["crash"]),
            divergences=[
                ConformanceDivergence.from_dict(entry)
                for entry in payload.get("divergences", [])
            ],
            deliveries={k: int(v) for k, v in payload.get("deliveries", {}).items()},
            converged={k: bool(v) for k, v in payload.get("converged", {}).items()},
            real_wall_s=float(payload.get("real_wall_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RealtimeReport":
        return cls.from_dict(json.loads(text))


def run_realtime_differential(
    workload: Optional[RealtimeWorkload] = None,
    crash: bool = False,
    accelerated: bool = True,
    sim_run: Optional[VariantRun] = None,
    real_run: Optional[VariantRun] = None,
) -> RealtimeReport:
    """Run the workload through both implementations and diff the streams.

    ``sim_run`` / ``real_run`` allow injecting pre-recorded runs (the
    same hook :func:`~repro.conformance.differ.run_differential` has),
    which the tests use to prove divergences are actually detected.
    """
    workload = workload or RealtimeWorkload()
    if sim_run is None:
        sim_run = run_sim_serialized(workload, crash=crash, accelerated=accelerated)
    if real_run is None:
        real_run = run_real_serialized(workload, crash=crash, accelerated=accelerated)

    divergences = compare_runs(sim_run, real_run, faulty=crash)
    for run in (sim_run, real_run):
        if run.evs_violation:
            divergences.append(
                ConformanceDivergence(
                    kind="evs",
                    variant_a=run.variant,
                    variant_b=run.variant,
                    phase="run",
                    detail=run.evs_violation,
                )
            )
        if not run.converged:
            divergences.append(
                ConformanceDivergence(
                    kind="converge",
                    variant_a=sim_run.variant,
                    variant_b=run.variant,
                    phase="run",
                    detail=f"{run.variant} did not converge/deliver in time",
                )
            )
    return RealtimeReport(
        workload=workload,
        crash=crash,
        divergences=divergences,
        deliveries={
            run.variant: sum(
                1
                for stream in run.streams.values()
                for event in stream
                if event[0] == MSG
            )
            for run in (sim_run, real_run)
        },
        converged={run.variant: run.converged for run in (sim_run, real_run)},
        real_wall_s=real_run.sim_time,
    )
