"""Running one conformance workload through each protocol variant.

A *variant* is one implementation the paper compares: the original Totem
ring, the Accelerated Ring, and the Spread-daemon path (accelerated
protocol, Spread CPU-cost profile, and the toolkit's packing +
fragmentation layers between the application payload and the ordered
message).  Every variant runs the identical
:class:`~repro.conformance.workload.Workload` and fault plan on the
deterministic simulator; a :class:`ConformanceTap` records each
participant's delivery stream — application labels interleaved with
configuration changes — for the differential oracle to compare.

Like the :class:`~repro.evs.checker.EvsChecker`, the tap is independent
of the protocol implementation: it sees only delivered payloads, so an
ordering bug cannot hide by also corrupting the recording side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.messages import DeliveryService
from repro.evs.checker import EvsViolation
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.observer import ProtocolObserver
from repro.sim.build import ClusterBuilder
from repro.sim.membership_driver import DeliveryTap
from repro.sim.profiles import DAEMON, SPREAD
from repro.spread.fragmentation import Fragmenter, FragmentReassembler
from repro.spread.packing import Packer, unpack_payload
from repro.spread.wire import AppData, Fragment, decode_envelope
from repro.conformance.workload import Workload, make_label
from repro.util.errors import ConfigurationError

#: The implementations under differential test, in comparison order (the
#: first listed is the baseline the others are compared against).
VARIANT_NAMES: Tuple[str, ...] = ("original", "accelerated", "spread")

#: Stream event kinds recorded by the tap.
MSG, CONFIG, RESTART, MARK = "m", "c", "r", "mark"

#: Phase marker names.
PHASE_MAIN, PHASE_PROBE = "main", "probe"

#: Convergence polling: fixed slices keep the schedule deterministic.
_POLL_SLICE = 0.05
_MAX_POLLS = 60
#: Settle time after the probe bursts finish.
_PROBE_TAIL = 0.3


class ConformanceTap(DeliveryTap):
    """Records per-participant delivery streams with phase markers.

    Stream events are tuples: ``("m", label)`` for an application
    payload, ``("c", config_id, transitional)`` for a configuration
    install, ``("r",)`` for a process restart, and ``("mark", name)``
    for a harness phase boundary.  With ``decode=True`` the tap runs the
    Spread unpacking pipeline — containers are expanded and fragments
    reassembled (per receiving participant, keyed by origin) — so the
    recorded labels are application-level regardless of how the toolkit
    layered them onto ordered messages.
    """

    def __init__(self, decode: bool = False) -> None:
        self.decode = decode
        self.streams: Dict[int, List[tuple]] = {}
        self._reassemblers: Dict[int, FragmentReassembler] = {}

    def _stream(self, pid: int) -> List[tuple]:
        return self.streams.setdefault(pid, [])

    def mark(self, name: str, pids) -> None:
        for pid in pids:
            self._stream(pid).append((MARK, name))

    def on_deliver(self, pid, message, config_id, origin_ring) -> None:
        stream = self._stream(pid)
        payload = bytes(message.payload)
        if not self.decode:
            stream.append((MSG, payload))
            return
        for envelope_bytes in unpack_payload(payload):
            envelope = decode_envelope(envelope_bytes)
            if isinstance(envelope, Fragment):
                reassembler = self._reassemblers.setdefault(
                    pid, FragmentReassembler()
                )
                whole = reassembler.accept(message.pid, envelope)
                if whole is None:
                    continue
                envelope = decode_envelope(whole)
            if isinstance(envelope, AppData):
                stream.append((MSG, envelope.payload))

    def on_config(self, pid, configuration) -> None:
        self._stream(pid).append(
            (CONFIG, configuration.config_id, configuration.transitional)
        )

    def on_restart(self, pid) -> None:
        # The restarted process lost its partial reassembly state along
        # with everything else volatile.
        self._reassemblers.pop(pid, None)
        self._stream(pid).append((RESTART,))


@dataclass
class VariantRun:
    """Everything the oracle needs from one variant's run."""

    variant: str
    streams: Dict[int, List[tuple]]
    evs_violation: Optional[str]
    converged: bool
    final_members: Tuple[int, ...]
    traffic_base: float
    sim_time: float
    crashed_pids: frozenset = frozenset()
    cluster: Optional[MembershipCluster] = field(default=None, repr=False)

    def labels(self, pid: int, phase: Optional[str] = None) -> List[bytes]:
        """The delivered labels of ``pid``, optionally one phase only."""
        out: List[bytes] = []
        inside = phase is None
        for event in self.streams.get(pid, []):
            if event[0] == MARK:
                inside = phase is None or event[1] == phase
            elif event[0] == MSG and inside:
                out.append(event[1])
        return out

    def calm_prefix(self, pid: int) -> List[bytes]:
        """Labels delivered after the main marker, up to the first
        membership transition — the region where cross-variant order
        must match exactly even under faults."""
        out: List[bytes] = []
        inside = False
        for event in self.streams.get(pid, []):
            if event[0] == MARK:
                if event[1] == PHASE_MAIN:
                    inside = True
                elif inside:
                    break
            elif inside:
                if event[0] == MSG:
                    out.append(event[1])
                else:  # a config install or restart ends the calm region
                    break
        return out


class _SpreadPipeline:
    """Per-sender packing + fragmentation, mirroring the daemon's
    eager-flush submit path (:meth:`SpreadDaemon._submit_envelope`)."""

    def __init__(self, num_hosts: int) -> None:
        self.packers = {pid: Packer() for pid in range(num_hosts)}
        # Fragment ids persist across restarts on purpose: a restarted
        # daemon must not reuse a frag id its old incarnation already
        # put into the order.
        self.fragmenters = {pid: Fragmenter() for pid in range(num_hosts)}

    def payloads(self, pid: int, label: bytes) -> List[bytes]:
        envelope = AppData(
            sender=f"h{pid}", groups=("conformance",), payload=label
        ).encode()
        out: List[bytes] = []
        packer = self.packers[pid]
        for piece in self.fragmenters[pid].fragment(envelope):
            out.extend(packer.add(piece))
        out.extend(packer.flush())
        return out


def run_variant(
    variant: str,
    workload: Workload,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    observer: Optional[ProtocolObserver] = None,
) -> VariantRun:
    """Drive ``workload`` (+ optional ``plan``) through one variant.

    The drive has four deterministic phases: boot, the main burst window
    (faults armed relative to its start), a quiesce + reconvergence poll
    (heal, resume, then fixed ``_POLL_SLICE`` steps until every live
    host is operational on one shared ring), and a probe burst round on
    the reformed ring.  The tap marks the main and probe phases so the
    oracle can compare like against like.
    """
    if variant not in VARIANT_NAMES:
        raise ConfigurationError(
            f"unknown variant {variant!r}; choose from {VARIANT_NAMES}"
        )
    spread = variant == "spread"
    tap = ConformanceTap(decode=spread)
    builder = (
        ClusterBuilder()
        .hosts(workload.num_hosts)
        .membership()
        .accelerated(variant != "original")
        .profile(SPREAD if spread else DAEMON)
        .tap(tap)
    )
    if workload.config is not None:
        builder.config(workload.config)
    racks = getattr(workload, "fabric_racks", 0)
    if racks:
        from repro.net.fabric import LeafSpineSpec

        builder.fabric(
            LeafSpineSpec(
                racks=racks,
                hosts_per_rack=workload.num_hosts // racks,
                oversubscription=2.0,
            )
        )
    impair = getattr(workload, "impair", "")
    if impair:
        from repro.net.impair import impairment_from_name

        builder.impair(impairment_from_name(impair, seed=seed))
    if observer is not None:
        builder.observe(observer)
    cluster = builder.build_membership()
    pipeline = _SpreadPipeline(workload.num_hosts) if spread else None
    next_index: Dict[int, int] = {}

    def submit_label(pid: int, oversized: bool) -> None:
        host = cluster.hosts[pid]
        index = next_index.get(pid, 0)
        next_index[pid] = index + 1
        if host.host.crashed or host._paused:
            return  # the label index is consumed either way
        label = make_label(
            pid, index, pad_to=workload.oversized_bytes if oversized else 0
        )
        if pipeline is None:
            host.submit(
                payload=label,
                service=DeliveryService.AGREED,
                payload_size=workload.label_size(label),
            )
            return
        for payload in pipeline.payloads(pid, label):
            host.submit(
                payload=payload,
                service=DeliveryService.AGREED,
                payload_size=workload.label_size(payload),
            )

    def burst(pid: int, count: int, round_index: int):
        def fire() -> None:
            for offset in range(count):
                oversized = (
                    round_index == 0
                    and workload.oversized_index is not None
                    and offset == workload.oversized_index
                )
                submit_label(pid, oversized)

        return fire

    # Phase 0: boot.
    cluster.start()
    cluster.run(0.08)

    # Phase 1: main bursts, faults armed at the phase boundary.
    tap.mark(PHASE_MAIN, range(workload.num_hosts))
    if plan is not None and len(plan) > 0:
        injector = FaultInjector(cluster, plan, rng=random.Random(seed))
        injector.arm()
    base = cluster.sim.now
    when = base
    for round_index in range(workload.rounds):
        for pid in range(workload.num_hosts):
            cluster.sim.schedule_at(
                when, burst(pid, workload.burst_size, round_index)
            )
            when += workload.burst_spacing
    horizon = when - base
    if plan is not None and len(plan) > 0:
        horizon = max(horizon, plan.horizon)
    cluster.run(horizon + 0.1)

    # Phase 2: quiesce and poll for reconvergence.
    cluster.heal()
    for host in cluster.hosts.values():
        host.resume()
    if plan is not None:
        for pid in sorted(plan.crashed_pids()):
            cluster.restart(pid)
    converged = False
    for _ in range(_MAX_POLLS):
        cluster.run(_POLL_SLICE)
        states = cluster.states()
        rings = set(cluster.rings().values())
        if (
            len(rings) == 1
            and all(state == "operational" for state in states.values())
            and len(next(iter(rings))) == len(states)
        ):
            converged = True
            break

    # Phase 3: probe bursts on the reformed ring.
    live = cluster.live_pids()
    tap.mark(PHASE_PROBE, live)
    when = cluster.sim.now + 0.005
    for pid in live:
        cluster.sim.schedule_at(when, burst(pid, workload.probe_burst, -1))
        when += workload.burst_spacing
    cluster.run((when - cluster.sim.now) + _PROBE_TAIL)

    crashed = plan.crashed_pids() if plan is not None else frozenset()
    violation: Optional[str] = None
    try:
        cluster.checker.check(crashed=crashed)
    except EvsViolation as exc:
        violation = str(exc)
    rings = sorted(set(cluster.rings().values()))
    final = rings[0] if rings else ()
    return VariantRun(
        variant=variant,
        streams=tap.streams,
        evs_violation=violation,
        converged=converged,
        final_members=tuple(sorted(final)),
        traffic_base=base,
        sim_time=cluster.sim.now,
        crashed_pids=frozenset(crashed),
        cluster=cluster,
    )
