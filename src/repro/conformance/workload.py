"""The deterministic conformance workload and its label codec.

Cross-variant order comparison is only meaningful when the submission
pattern itself cannot introduce ambiguity: the original and accelerated
protocols rotate the token at different speeds, so two messages
submitted concurrently by *different* senders may legitimately be
ordered either way.  The conformance workload therefore submits
single-sender bursts spaced far enough apart that each burst drains
before the next sender starts — within that discipline, every variant
must produce the identical delivery sequence (the paper's equivalence
claim), and any difference is a real ordering divergence.

Each submitted payload carries a label ``m<pid>.<index>`` so the oracle
can compare application-level identities rather than sequence numbers
(which differ across variants when membership churns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.config import ProtocolConfig

#: Default windows for conformance runs: deliberately small so a single
#: burst exercises the personal-window-limited (blocked) and
#: global-window-saturated flow-control branches.
CONFORMANCE_CONFIG = ProtocolConfig(
    personal_window=6, accelerated_window=3, global_window=8
)


def make_label(pid: int, index: int, pad_to: int = 0) -> bytes:
    """The payload identifying submission ``index`` of sender ``pid``."""
    label = b"m%d.%d" % (pid, index)
    if pad_to > len(label):
        label += b"x" * (pad_to - len(label))
    return label


def parse_label(payload: bytes) -> Optional[Tuple[int, int]]:
    """Inverse of :func:`make_label`; ``None`` for foreign payloads."""
    if not payload.startswith(b"m"):
        return None
    head = payload.rstrip(b"x")
    try:
        pid_text, index_text = head[1:].split(b".", 1)
        return int(pid_text), int(index_text)
    except ValueError:
        return None


@dataclass(frozen=True)
class Workload:
    """A deterministic burst schedule shared by every variant run.

    ``rounds`` sweeps of one ``burst_size`` burst per host, bursts
    ``burst_spacing`` seconds apart (must exceed the drain time of one
    burst).  One label per run is padded to ``oversized_bytes`` so the
    Spread variant exercises its fragmentation path.  After the fault
    plan quiesces and membership reconverges, every live host sends one
    ``probe_burst`` burst; the probe phase runs on the reformed ring, so
    its order must match across variants even when the fault window made
    mid-run delivery sets legitimately diverge.
    """

    num_hosts: int = 4
    rounds: int = 2
    burst_size: int = 12
    burst_spacing: float = 0.020
    payload_size: int = 64
    probe_burst: int = 6
    #: Label index (in the first round) padded to force fragmentation in
    #: the Spread variant; ``None`` disables.
    oversized_index: Optional[int] = 5
    oversized_bytes: int = 2000
    #: Leaf–spine rack count (0 = single-switch star).  The workload
    #: carries the fabric shape so artifacts replay on the same network.
    fabric_racks: int = 0
    #: Named impairment preset ("" = none) layered under every variant.
    impair: str = ""
    config: ProtocolConfig = field(default=CONFORMANCE_CONFIG)

    @property
    def traffic_span(self) -> float:
        """Seconds from the first burst to the last main-phase burst."""
        return self.rounds * self.num_hosts * self.burst_spacing

    def label_size(self, label: bytes) -> int:
        """Wire payload size charged for ``label``."""
        return max(self.payload_size, len(label))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_hosts": self.num_hosts,
            "rounds": self.rounds,
            "burst_size": self.burst_size,
            "burst_spacing": self.burst_spacing,
            "payload_size": self.payload_size,
            "probe_burst": self.probe_burst,
            "oversized_index": self.oversized_index,
            "oversized_bytes": self.oversized_bytes,
            "fabric_racks": self.fabric_racks,
            "impair": self.impair,
            "windows": [
                self.config.personal_window,
                self.config.accelerated_window,
                self.config.global_window,
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Workload":
        windows = payload.get("windows")
        config = (
            ProtocolConfig(
                personal_window=int(windows[0]),
                accelerated_window=int(windows[1]),
                global_window=int(windows[2]),
            )
            if windows
            else CONFORMANCE_CONFIG
        )
        oversized = payload.get("oversized_index")
        return cls(
            num_hosts=int(payload["num_hosts"]),
            rounds=int(payload["rounds"]),
            burst_size=int(payload["burst_size"]),
            burst_spacing=float(payload["burst_spacing"]),
            payload_size=int(payload["payload_size"]),
            probe_burst=int(payload["probe_burst"]),
            oversized_index=None if oversized is None else int(oversized),
            oversized_bytes=int(payload.get("oversized_bytes", 2000)),
            fabric_racks=int(payload.get("fabric_racks", 0)),
            impair=str(payload.get("impair", "")),
            config=config,
        )
