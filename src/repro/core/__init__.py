"""The ordering protocols: Accelerated Ring and the original Totem Ring.

The engines here are *sans-io*: they consume protocol messages and emit
:mod:`repro.core.events` effects, and never touch sockets, clocks, or the
simulator.  The discrete-event driver (:mod:`repro.sim`) and the real
asyncio runtime (:mod:`repro.runtime`) both run exactly this code.
"""

from repro.core.config import ProtocolConfig, TokenPriorityMethod
from repro.core.messages import DataMessage, DeliveryService
from repro.core.token import RegularToken
from repro.core.buffer import MessageBuffer
from repro.core.events import Effect, SendToken, MulticastData, Deliver
from repro.core.participant import AcceleratedRingParticipant
from repro.core.original import OriginalRingParticipant

__all__ = [
    "ProtocolConfig",
    "TokenPriorityMethod",
    "DataMessage",
    "DeliveryService",
    "RegularToken",
    "MessageBuffer",
    "Effect",
    "SendToken",
    "MulticastData",
    "Deliver",
    "AcceleratedRingParticipant",
    "OriginalRingParticipant",
]
