"""The participant's receive buffer, ordered by sequence number.

Tracks the *local aru* — the highest sequence number such that every
message at or below it has been received — plus the delivery frontier and
the stability frontier used for garbage collection.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.messages import DataMessage


class MessageBuffer:
    """Received (and self-originated) messages keyed by sequence number."""

    def __init__(self) -> None:
        self._messages: Dict[int, DataMessage] = {}
        self._local_aru = 0
        self._discarded_up_to = 0
        self._max_seq = 0
        self.duplicates = 0

    @property
    def local_aru(self) -> int:
        return self._local_aru

    @property
    def max_seq(self) -> int:
        """Highest sequence number ever observed (received or discarded)."""
        return self._max_seq

    @property
    def discarded_up_to(self) -> int:
        return self._discarded_up_to

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, seq: int) -> bool:
        return seq in self._messages or seq <= self._discarded_up_to

    def insert(self, message: DataMessage) -> bool:
        """Insert a received message; returns False for duplicates.

        Advances the local aru over any newly contiguous prefix.
        """
        # Hot path: one call per received (or self-originated) message;
        # attribute loads are hoisted into locals.
        seq = message.seq
        messages = self._messages
        if seq in messages or seq <= self._discarded_up_to:
            self.duplicates += 1
            return False
        messages[seq] = message
        if seq > self._max_seq:
            self._max_seq = seq
        aru = self._local_aru
        while aru + 1 in messages:
            aru += 1
        if aru != self._local_aru:
            self._local_aru = aru
        return True

    def get(self, seq: int) -> Optional[DataMessage]:
        return self._messages.get(seq)

    def missing_between(self, low: int, high: int) -> List[int]:
        """Sequence numbers in ``(low, high]`` that have not been received."""
        if high <= low:
            return []
        return [seq for seq in range(low + 1, high + 1) if seq not in self._messages]

    def discard_up_to(self, seq: int) -> int:
        """Drop stable, delivered messages; returns how many were dropped.

        Discarded messages can never be requested for retransmission again
        (every participant already has them), matching paper §III-B4.
        """
        dropped = 0
        for stale in range(self._discarded_up_to + 1, seq + 1):
            if self._messages.pop(stale, None) is not None:
                dropped += 1
        if seq > self._discarded_up_to:
            self._discarded_up_to = seq
        return dropped

    def iter_range(self, low: int, high: int) -> Iterator[DataMessage]:
        """Yield held messages with ``low < seq <= high`` in order."""
        for seq in range(low + 1, high + 1):
            message = self._messages.get(seq)
            if message is not None:
                yield message
