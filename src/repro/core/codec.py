"""Binary wire codecs for the real (asyncio/UDP) runtime.

The simulator never serializes messages; the runtime does.  The format is
a compact network-byte-order encoding with a one-byte type tag.  The
``timestamp`` field on data messages exists purely so benchmark clients
can measure end-to-end latency across processes, mirroring the paper's
instrumented clients.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.core.messages import DataMessage, DeliveryService
from repro.core.token import RegularToken
from repro.util.errors import CodecError

MAGIC = 0xA5
TYPE_DATA = 1
TYPE_TOKEN = 2

# magic, type, service, post_token, seq, pid, round, ring_id, timestamp, payload_len
_DATA_HEADER = struct.Struct("!BBBBQIQQdI")
# magic, type, ring_id, token_id, seq, aru, aru_lowered_by, fcc, rotation, rtr_count
_TOKEN_HEADER = struct.Struct("!BBQQQQqIQI")

WireMessage = Union[DataMessage, RegularToken]


def encode_data(message: DataMessage) -> bytes:
    # One exactly-sized buffer, header packed in place and the payload
    # copied once — no intermediate header bytes + concatenation copy.
    payload = message.payload
    header_size = _DATA_HEADER.size
    out = bytearray(header_size + len(payload))
    _DATA_HEADER.pack_into(
        out,
        0,
        MAGIC,
        TYPE_DATA,
        int(message.service),
        1 if message.post_token else 0,
        message.seq,
        message.pid,
        message.round,
        message.ring_id,
        message.timestamp if message.timestamp is not None else -1.0,
        len(payload),
    )
    out[header_size:] = payload
    return bytes(out)


def encode_token(token: RegularToken) -> bytes:
    # Same single-buffer scheme as encode_data: header and rtr list are
    # packed into one exactly-sized buffer with no intermediate copies.
    rtr = token.rtr
    header_size = _TOKEN_HEADER.size
    out = bytearray(header_size + 8 * len(rtr))
    _TOKEN_HEADER.pack_into(
        out,
        0,
        MAGIC,
        TYPE_TOKEN,
        token.ring_id,
        token.token_id,
        token.seq,
        token.aru,
        token.aru_lowered_by if token.aru_lowered_by is not None else -1,
        token.fcc,
        token.rotation,
        len(rtr),
    )
    if rtr:
        struct.pack_into(f"!{len(rtr)}Q", out, header_size, *rtr)
    return bytes(out)


def encode(message: WireMessage) -> bytes:
    if isinstance(message, DataMessage):
        return encode_data(message)
    if isinstance(message, RegularToken):
        return encode_token(message)
    raise CodecError(f"cannot encode {type(message).__name__}")


def decode(data: bytes) -> WireMessage:
    """Decode one datagram into a data message or token."""
    if len(data) < 2:
        raise CodecError(f"datagram too short: {len(data)} bytes")
    magic, msg_type = data[0], data[1]
    if magic != MAGIC:
        raise CodecError(f"bad magic byte {magic:#x}")
    if msg_type == TYPE_DATA:
        return _decode_data(data)
    if msg_type == TYPE_TOKEN:
        return _decode_token(data)
    raise CodecError(f"unknown message type {msg_type}")


def _decode_data(data: bytes) -> DataMessage:
    if len(data) < _DATA_HEADER.size:
        raise CodecError("truncated data message header")
    (
        _magic,
        _type,
        service,
        post_token,
        seq,
        pid,
        round_,
        ring_id,
        timestamp,
        payload_len,
    ) = _DATA_HEADER.unpack_from(data)
    payload = data[_DATA_HEADER.size : _DATA_HEADER.size + payload_len]
    if len(payload) != payload_len:
        raise CodecError(
            f"truncated payload: expected {payload_len}, got {len(payload)}"
        )
    return DataMessage(
        seq=seq,
        pid=pid,
        round=round_,
        service=DeliveryService(service),
        payload=payload,
        post_token=bool(post_token),
        timestamp=None if timestamp < 0 else timestamp,
        ring_id=ring_id,
    )


def _decode_token(data: bytes) -> RegularToken:
    if len(data) < _TOKEN_HEADER.size:
        raise CodecError("truncated token header")
    (
        _magic,
        _type,
        ring_id,
        token_id,
        seq,
        aru,
        aru_lowered_by,
        fcc,
        rotation,
        rtr_count,
    ) = _TOKEN_HEADER.unpack_from(data)
    expected = _TOKEN_HEADER.size + 8 * rtr_count
    if len(data) < expected:
        raise CodecError(f"truncated rtr list: expected {expected}, got {len(data)}")
    rtr = list(struct.unpack_from(f"!{rtr_count}Q", data, _TOKEN_HEADER.size))
    return RegularToken(
        ring_id=ring_id,
        token_id=token_id,
        seq=seq,
        aru=aru,
        aru_lowered_by=None if aru_lowered_by < 0 else aru_lowered_by,
        fcc=fcc,
        rtr=rtr,
        rotation=rotation,
    )
