"""Binary wire codecs for the real (asyncio/UDP) runtime.

The simulator never serializes messages; the runtime does.  The format is
a compact network-byte-order encoding with a one-byte type tag.  The
``timestamp`` field on data messages exists purely so benchmark clients
can measure end-to-end latency across processes, mirroring the paper's
instrumented clients.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Union

from repro.core.messages import DataMessage, DeliveryService
from repro.core.token import RegularToken
from repro.util.errors import CodecError

MAGIC = 0xA5
TYPE_DATA = 1
TYPE_TOKEN = 2
TYPE_DATA_BATCH = 3

# magic, type, service, post_token, seq, pid, round, ring_id, timestamp, payload_len
_DATA_HEADER = struct.Struct("!BBBBQIQQdI")
# magic, type, ring_id, token_id, seq, aru, aru_lowered_by, fcc, rotation, rtr_count
_TOKEN_HEADER = struct.Struct("!BBQQQQqIQI")
# magic, type, count — the multi-message frame header; each item follows
# as a 4-byte length prefix + one complete TYPE_DATA encoding.
_BATCH_HEADER = struct.Struct("!BBH")
_ITEM_PREFIX = struct.Struct("!I")

#: Per-item wire overhead of a coalesced frame (the length prefix), and
#: the fixed per-frame overhead (the batch header).  Exposed so the
#: simulator's cost model can price coalesced datagrams with the real
#: wire arithmetic.
BATCH_ITEM_OVERHEAD = _ITEM_PREFIX.size
BATCH_FRAME_OVERHEAD = _BATCH_HEADER.size

WireMessage = Union[DataMessage, RegularToken]


def encode_data(message: DataMessage) -> bytes:
    # One exactly-sized buffer, header packed in place and the payload
    # copied once — no intermediate header bytes + concatenation copy.
    payload = message.payload
    header_size = _DATA_HEADER.size
    out = bytearray(header_size + len(payload))
    _DATA_HEADER.pack_into(
        out,
        0,
        MAGIC,
        TYPE_DATA,
        int(message.service),
        1 if message.post_token else 0,
        message.seq,
        message.pid,
        message.round,
        message.ring_id,
        message.timestamp if message.timestamp is not None else -1.0,
        len(payload),
    )
    out[header_size:] = payload
    return bytes(out)


def encode_token(token: RegularToken) -> bytes:
    # Same single-buffer scheme as encode_data: header and rtr list are
    # packed into one exactly-sized buffer with no intermediate copies.
    rtr = token.rtr
    header_size = _TOKEN_HEADER.size
    out = bytearray(header_size + 8 * len(rtr))
    _TOKEN_HEADER.pack_into(
        out,
        0,
        MAGIC,
        TYPE_TOKEN,
        token.ring_id,
        token.token_id,
        token.seq,
        token.aru,
        token.aru_lowered_by if token.aru_lowered_by is not None else -1,
        token.fcc,
        token.rotation,
        len(rtr),
    )
    if rtr:
        struct.pack_into(f"!{len(rtr)}Q", out, header_size, *rtr)
    return bytes(out)


def encode_data_batch(messages: Sequence[DataMessage]) -> bytes:
    """Coalesce several data messages into one length-prefixed frame.

    The whole frame is packed into one exactly-sized buffer: batch
    header, then per message a 4-byte length prefix and the same bytes
    ``encode_data`` would produce — no per-message intermediate buffers
    and no join at the end.
    """
    if not messages:
        raise CodecError("cannot encode an empty data batch")
    if len(messages) > 0xFFFF:
        raise CodecError(f"data batch too large: {len(messages)} messages")
    header_size = _DATA_HEADER.size
    prefix_size = _ITEM_PREFIX.size
    total = _BATCH_HEADER.size
    for message in messages:
        total += prefix_size + header_size + len(message.payload)
    out = bytearray(total)
    _BATCH_HEADER.pack_into(out, 0, MAGIC, TYPE_DATA_BATCH, len(messages))
    offset = _BATCH_HEADER.size
    pack_prefix = _ITEM_PREFIX.pack_into
    pack_header = _DATA_HEADER.pack_into
    for message in messages:
        payload = message.payload
        item_size = header_size + len(payload)
        pack_prefix(out, offset, item_size)
        offset += prefix_size
        pack_header(
            out,
            offset,
            MAGIC,
            TYPE_DATA,
            int(message.service),
            1 if message.post_token else 0,
            message.seq,
            message.pid,
            message.round,
            message.ring_id,
            message.timestamp if message.timestamp is not None else -1.0,
            len(payload),
        )
        offset += header_size
        out[offset : offset + len(payload)] = payload
        offset += len(payload)
    return bytes(out)


def decode_data_batch(data: bytes) -> List[DataMessage]:
    """Decode a coalesced frame into its data messages, in order.

    Items are parsed in place by offset arithmetic over one memoryview —
    the only copies made are the payload slices that end up owned by the
    returned messages.
    """
    if len(data) < _BATCH_HEADER.size:
        raise CodecError(f"datagram too short: {len(data)} bytes")
    magic, msg_type, count = _BATCH_HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic byte {magic:#x}")
    if msg_type != TYPE_DATA_BATCH:
        raise CodecError(f"not a data batch: type {msg_type}")
    view = memoryview(data)
    end = len(data)
    header_size = _DATA_HEADER.size
    prefix_size = _ITEM_PREFIX.size
    unpack_prefix = _ITEM_PREFIX.unpack_from
    unpack_header = _DATA_HEADER.unpack_from
    offset = _BATCH_HEADER.size
    messages: List[DataMessage] = []
    append = messages.append
    for _ in range(count):
        if offset + prefix_size > end:
            raise CodecError("truncated batch item prefix")
        (item_size,) = unpack_prefix(view, offset)
        offset += prefix_size
        if item_size < header_size or offset + item_size > end:
            raise CodecError(
                f"truncated batch item: need {item_size}, have {end - offset}"
            )
        (
            item_magic,
            item_type,
            service,
            post_token,
            seq,
            pid,
            round_,
            ring_id,
            timestamp,
            payload_len,
        ) = unpack_header(view, offset)
        if item_magic != MAGIC or item_type != TYPE_DATA:
            raise CodecError(f"bad batch item header at offset {offset}")
        if header_size + payload_len != item_size:
            raise CodecError(
                f"batch item length mismatch: prefix {item_size}, "
                f"header {header_size + payload_len}"
            )
        payload_start = offset + header_size
        append(
            DataMessage(
                seq=seq,
                pid=pid,
                round=round_,
                service=DeliveryService(service),
                payload=bytes(view[payload_start : payload_start + payload_len]),
                post_token=bool(post_token),
                timestamp=None if timestamp < 0 else timestamp,
                ring_id=ring_id,
            )
        )
        offset += item_size
    if offset != end:
        raise CodecError(f"{end - offset} trailing bytes after batch")
    return messages


def encode(message: WireMessage) -> bytes:
    if isinstance(message, DataMessage):
        return encode_data(message)
    if isinstance(message, RegularToken):
        return encode_token(message)
    raise CodecError(f"cannot encode {type(message).__name__}")


def decode(data: bytes) -> WireMessage:
    """Decode one datagram into a data message or token."""
    if len(data) < 2:
        raise CodecError(f"datagram too short: {len(data)} bytes")
    magic, msg_type = data[0], data[1]
    if magic != MAGIC:
        raise CodecError(f"bad magic byte {magic:#x}")
    if msg_type == TYPE_DATA:
        return _decode_data(data)
    if msg_type == TYPE_TOKEN:
        return _decode_token(data)
    raise CodecError(f"unknown message type {msg_type}")


def _decode_data(data: bytes) -> DataMessage:
    if len(data) < _DATA_HEADER.size:
        raise CodecError("truncated data message header")
    (
        _magic,
        _type,
        service,
        post_token,
        seq,
        pid,
        round_,
        ring_id,
        timestamp,
        payload_len,
    ) = _DATA_HEADER.unpack_from(data)
    payload = data[_DATA_HEADER.size : _DATA_HEADER.size + payload_len]
    if len(payload) != payload_len:
        raise CodecError(
            f"truncated payload: expected {payload_len}, got {len(payload)}"
        )
    return DataMessage(
        seq=seq,
        pid=pid,
        round=round_,
        service=DeliveryService(service),
        payload=payload,
        post_token=bool(post_token),
        timestamp=None if timestamp < 0 else timestamp,
        ring_id=ring_id,
    )


def _decode_token(data: bytes) -> RegularToken:
    if len(data) < _TOKEN_HEADER.size:
        raise CodecError("truncated token header")
    (
        _magic,
        _type,
        ring_id,
        token_id,
        seq,
        aru,
        aru_lowered_by,
        fcc,
        rotation,
        rtr_count,
    ) = _TOKEN_HEADER.unpack_from(data)
    expected = _TOKEN_HEADER.size + 8 * rtr_count
    if len(data) < expected:
        raise CodecError(f"truncated rtr list: expected {expected}, got {len(data)}")
    rtr = list(struct.unpack_from(f"!{rtr_count}Q", data, _TOKEN_HEADER.size))
    return RegularToken(
        ring_id=ring_id,
        token_id=token_id,
        seq=seq,
        aru=aru,
        aru_lowered_by=None if aru_lowered_by < 0 else aru_lowered_by,
        fcc=fcc,
        rtr=rtr,
        rotation=rotation,
    )
