"""Protocol configuration: the flow-control windows and priority method.

Paper §III-A defines the two windows that shape the Accelerated Ring
protocol's behaviour:

* **Personal window** — the maximum number of new data messages one
  participant may send in a single token round.
* **Accelerated window** — the maximum number of those messages that may be
  sent *after* passing the token.  Zero degenerates to the original
  protocol's send-everything-then-token behaviour.

plus Totem's **Global window**, the cap on the total number of messages
(new + retransmissions) sent by everyone in one round, enforced through the
token's ``fcc`` field.

Paper §IV-A reports that personal windows of a few tens of messages with
accelerated windows of half to all of the personal window work well in all
tested environments; those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.util.errors import ConfigurationError


class TokenPriorityMethod(Enum):
    """When to raise the token's processing priority again (paper §III-D).

    ``AGGRESSIVE``
        Raise as soon as any data message from the immediate predecessor
        initiated in the *next* token round is processed.  Maximizes token
        rotation speed; used by the prototypes.
    ``POST_TOKEN``
        Raise only on processing a next-round message the predecessor sent
        *after* it had passed the token.  Slightly slower token, fewer
        unprocessed data messages build up; less sensitive to
        misconfiguration, so production Spread uses it.
    ``NEVER``
        Never prefer the token while data messages are available — the
        original Totem Ring discipline (all received data is processed
        before the token).
    """

    AGGRESSIVE = "aggressive"
    POST_TOKEN = "post_token"
    NEVER = "never"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunable parameters of the ring ordering protocol."""

    personal_window: int = 30
    accelerated_window: int = 15
    global_window: int = 150
    priority_method: TokenPriorityMethod = TokenPriorityMethod.AGGRESSIVE
    #: How many new data messages a sender may coalesce into one UDP
    #: datagram (length-prefixed multi-message frame).  1 — the default,
    #: and the paper's prototype behaviour — sends every message in its
    #: own datagram; higher values amortize per-datagram send/receive
    #: overhead at the cost of a larger loss blast radius (losing the
    #: datagram loses every message in it).  Retransmissions are never
    #: coalesced: they must be individually addressable by ``rtr``.
    messages_per_datagram: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ProtocolConfig":
        """Reject nonsensical window combinations up front.

        Called from ``__post_init__`` and from both participant
        constructors, so a config that dodged construction-time checks
        (pickling, ``object.__setattr__``, hand-built subclasses) still
        fails loudly at the protocol boundary instead of deep inside
        flow control.  Returns ``self`` so call sites can chain.
        """
        for name in (
            "personal_window",
            "accelerated_window",
            "global_window",
            "messages_per_datagram",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"{name} must be an integer, got {value!r}"
                )
        if self.personal_window < 1:
            raise ConfigurationError(
                f"personal_window must be >= 1, got {self.personal_window}"
            )
        if not 0 <= self.accelerated_window <= self.personal_window:
            raise ConfigurationError(
                "accelerated_window must be between 0 and personal_window "
                f"({self.personal_window}), got {self.accelerated_window}"
            )
        if self.global_window < self.personal_window:
            raise ConfigurationError(
                f"global_window ({self.global_window}) must be >= "
                f"personal_window ({self.personal_window})"
            )
        if self.messages_per_datagram < 1:
            raise ConfigurationError(
                "messages_per_datagram must be >= 1, "
                f"got {self.messages_per_datagram}"
            )
        if not isinstance(self.priority_method, TokenPriorityMethod):
            raise ConfigurationError(
                f"priority_method must be a TokenPriorityMethod, "
                f"got {self.priority_method!r}"
            )
        return self

    @property
    def accelerated(self) -> bool:
        """True when any post-token sending is allowed."""
        return self.accelerated_window > 0

    def original(self) -> "ProtocolConfig":
        """The original-Totem configuration with the same windows.

        Used by benchmarks so the baseline and the accelerated protocol are
        compared with identical flow-control envelopes, as in the paper.
        """
        return replace(
            self,
            accelerated_window=0,
            priority_method=TokenPriorityMethod.NEVER,
        )
