"""Effects emitted by the sans-io protocol engines.

Handling one input (a token or a data message) produces an ordered list of
effects.  Order is semantically meaningful: effects before a
:class:`SendToken` constitute the pre-token multicast phase, effects after
it the post-token phase, and the driver executes them sequentially on the
single-threaded CPU.

Effects are allocated on the benchmark hot path (one per multicast /
delivery / token send), so they are hand-written ``__slots__`` classes
rather than dataclasses (Python 3.9 lacks ``dataclass(slots=True)``).
Equality and repr match the dataclasses they replaced.
"""

from __future__ import annotations

from repro.core.messages import DataMessage
from repro.core.token import RegularToken


class Effect:
    """Marker base class for protocol effects."""

    __slots__ = ()


class MulticastData(Effect):
    """Multicast a data message to the ring (IP-multicast on the LAN)."""

    __slots__ = ("message", "retransmission")

    def __init__(self, message: DataMessage, retransmission: bool = False) -> None:
        self.message = message
        self.retransmission = retransmission

    def __repr__(self) -> str:
        return (
            f"MulticastData(message={self.message!r}, "
            f"retransmission={self.retransmission!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not MulticastData:
            return NotImplemented
        return (
            self.message == other.message
            and self.retransmission == other.retransmission
        )

    __hash__ = None


class SendToken(Effect):
    """Unicast the updated token to the next participant in the ring."""

    __slots__ = ("token", "destination")

    def __init__(self, token: RegularToken, destination: int) -> None:
        self.token = token
        self.destination = destination

    def __repr__(self) -> str:
        return f"SendToken(token={self.token!r}, destination={self.destination!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not SendToken:
            return NotImplemented
        return self.token == other.token and self.destination == other.destination

    __hash__ = None


class Deliver(Effect):
    """Deliver a message to the local application (in total order)."""

    __slots__ = ("message",)

    def __init__(self, message: DataMessage) -> None:
        self.message = message

    def __repr__(self) -> str:
        return f"Deliver(message={self.message!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Deliver:
            return NotImplemented
        return self.message == other.message

    __hash__ = None


class DeliverBatch(Effect):
    """Deliver a contiguous in-order run of messages in one step.

    Emitted by the engines when the delivery frontier advances by more
    than one message at once (``_deliver_ready`` found a run): the
    hosting layer performs *one* observer hook call, one checker append,
    and one driver callback for the whole slice instead of one of each
    per message.  ``messages`` is a tuple in delivery (sequence) order.
    Semantically equivalent to that many consecutive :class:`Deliver`
    effects; single-message runs still use :class:`Deliver`.
    """

    __slots__ = ("messages",)

    def __init__(self, messages: tuple) -> None:
        self.messages = messages

    def __repr__(self) -> str:
        return f"DeliverBatch(messages={self.messages!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not DeliverBatch:
            return NotImplemented
        return self.messages == other.messages

    __hash__ = None


class Stable(Effect):
    """Messages up to ``seq`` are stable everywhere and were discarded.

    Purely informational (garbage-collection notification); drivers may
    ignore it.
    """

    __slots__ = ("seq",)

    def __init__(self, seq: int) -> None:
        self.seq = seq

    def __repr__(self) -> str:
        return f"Stable(seq={self.seq!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Stable:
            return NotImplemented
        return self.seq == other.seq

    __hash__ = None
