"""Effects emitted by the sans-io protocol engines.

Handling one input (a token or a data message) produces an ordered list of
effects.  Order is semantically meaningful: effects before a
:class:`SendToken` constitute the pre-token multicast phase, effects after
it the post-token phase, and the driver executes them sequentially on the
single-threaded CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import DataMessage
from repro.core.token import RegularToken


class Effect:
    """Marker base class for protocol effects."""

    __slots__ = ()


@dataclass
class MulticastData(Effect):
    """Multicast a data message to the ring (IP-multicast on the LAN)."""

    message: DataMessage
    retransmission: bool = False


@dataclass
class SendToken(Effect):
    """Unicast the updated token to the next participant in the ring."""

    token: RegularToken
    destination: int


@dataclass
class Deliver(Effect):
    """Deliver a message to the local application (in total order)."""

    message: DataMessage


@dataclass
class Stable(Effect):
    """Messages up to ``seq`` are stable everywhere and were discarded.

    Purely informational (garbage-collection notification); drivers may
    ignore it.
    """

    seq: int
