"""Flow-control arithmetic (paper §III-B1).

``Num_to_send`` — the number of *new* messages a participant may multicast
in the current round — is the minimum of what it has queued, its Personal
window, and the headroom the Global window leaves after the traffic
reported by the token's ``fcc`` and this round's retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig


@dataclass(frozen=True)
class FlowControlDecision:
    """The sending plan for one token round.

    ``queued`` and ``global_headroom`` capture the inputs that bounded
    the plan, so observers (:mod:`repro.obs`) can report the full fcc
    accounting picture — was the sender application-limited, personal-
    window-limited, or global-window-limited this round?
    """

    num_to_send: int
    pre_token: int
    post_token: int
    queued: int = 0
    global_headroom: int = 0

    def __post_init__(self) -> None:
        assert self.num_to_send == self.pre_token + self.post_token


def plan_sending(
    config: ProtocolConfig,
    queued: int,
    token_fcc: int,
    num_retransmissions: int,
) -> FlowControlDecision:
    """Decide how many new messages to send, and how to split them around
    the token release.

    The split rule (paper §III-B1/B3): at most ``accelerated_window``
    messages go after the token; if the participant has fewer than that to
    send, *all* of them go after the token ("If a participant ... only had
    two messages to send, it would send both after the token").
    """
    global_headroom = config.global_window - token_fcc - num_retransmissions
    num_to_send = min(queued, config.personal_window, max(0, global_headroom))
    num_to_send = max(0, num_to_send)
    post_token = min(num_to_send, config.accelerated_window)
    pre_token = num_to_send - post_token
    return FlowControlDecision(
        num_to_send=num_to_send,
        pre_token=pre_token,
        post_token=post_token,
        queued=queued,
        global_headroom=max(0, global_headroom),
    )


def update_fcc(
    token_fcc: int,
    sent_last_round: int,
    sending_this_round: int,
) -> int:
    """New ``fcc``: replace this participant's last-round contribution with
    its current-round contribution (both counts include retransmissions)."""
    return max(0, token_fcc - sent_last_round) + sending_this_round
