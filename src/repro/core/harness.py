"""An instant (zero-latency) network for exercising the protocol engines.

Used by unit and property tests to drive rings of participants without the
timing model: messages are queued FIFO and handed to recipients in order,
optionally dropping data messages through a hook.  Because effects are
enqueued in emission order, post-token multicasts genuinely arrive at the
successor *after* the token — the accelerated interleaving — while the
original protocol's sends all precede its token, so both protocols see
faithful message orderings.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.events import Deliver, DeliverBatch, MulticastData, SendToken, Stable
from repro.core.messages import DataMessage
from repro.core.participant import AcceleratedRingParticipant
from repro.core.token import initial_token


DropFn = Callable[[int, int, DataMessage], bool]  # (src, dst, message) -> drop?


class InstantNetwork:
    """Drives a ring of sans-io participants over an idealized network."""

    def __init__(
        self,
        participants: Sequence[AcceleratedRingParticipant],
        drop_data: Optional[DropFn] = None,
    ) -> None:
        if not participants:
            raise ValueError("need at least one participant")
        self.participants: Dict[int, AcceleratedRingParticipant] = {
            participant.pid: participant for participant in participants
        }
        self.ring = list(participants[0].ring)
        self.drop_data = drop_data
        #: pid -> list of messages delivered to the application, in order.
        self.delivered: Dict[int, List[DataMessage]] = {
            pid: [] for pid in self.participants
        }
        self._queue: deque = deque()  # (dst_pid, kind, payload)
        self._token_dispatches = 0
        self.data_frames_sent = 0
        self.data_frames_dropped = 0

    # ------------------------------------------------------------------

    def inject_initial_token(self, ring_id: int = 1) -> None:
        leader = self.ring[0]
        self._queue.append((leader, "token", initial_token(ring_id)))

    def run(self, max_rounds: int = 50, max_steps: int = 1_000_000) -> None:
        """Process queued traffic until the token has been dispatched
        ``max_rounds * len(ring)`` times or the queue drains."""
        max_token_dispatches = max_rounds * len(self.ring)
        steps = 0
        while self._queue:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"instant network did not settle in {max_steps} steps")
            dst, kind, payload = self._queue.popleft()
            participant = self.participants[dst]
            if kind == "token":
                if self._token_dispatches >= max_token_dispatches:
                    continue
                self._token_dispatches += 1
                effects = participant.on_token(payload)
            else:
                effects = participant.on_data(payload)
            self._execute(participant, effects)

    def run_until_delivered(
        self, total_messages: int, max_rounds: int = 500
    ) -> None:
        """Run until every participant has delivered ``total_messages``
        messages (or the round budget runs out)."""
        max_token_dispatches = max_rounds * len(self.ring)
        while self._queue and self._token_dispatches < max_token_dispatches:
            dst, kind, payload = self._queue.popleft()
            participant = self.participants[dst]
            if kind == "token":
                self._token_dispatches += 1
                effects = participant.on_token(payload)
            else:
                effects = participant.on_data(payload)
            self._execute(participant, effects)
            if all(
                len(log) >= total_messages for log in self.delivered.values()
            ) and self._all_stable():
                return

    def _all_stable(self) -> bool:
        return all(
            participant.pending_count == 0 for participant in self.participants.values()
        )

    # ------------------------------------------------------------------

    def _execute(self, source: AcceleratedRingParticipant, effects: list) -> None:
        for effect in effects:
            if isinstance(effect, MulticastData):
                self._multicast(source.pid, effect.message)
            elif isinstance(effect, SendToken):
                self._queue.append((effect.destination, "token", effect.token))
            elif isinstance(effect, Deliver):
                self.delivered[source.pid].append(effect.message)
            elif isinstance(effect, DeliverBatch):
                self.delivered[source.pid].extend(effect.messages)
            elif isinstance(effect, Stable):
                pass
            else:
                raise TypeError(f"unknown effect {effect!r}")

    def _multicast(self, src: int, message: DataMessage) -> None:
        for dst in self.ring:
            if dst == src:
                continue
            self.data_frames_sent += 1
            if self.drop_data is not None and self.drop_data(src, dst, message):
                self.data_frames_dropped += 1
                continue
            self._queue.append((dst, "data", message))

    # ------------------------------------------------------------------
    # Assertions shared by tests
    # ------------------------------------------------------------------

    def delivered_seqs(self, pid: int) -> List[int]:
        return [message.seq for message in self.delivered[pid]]

    def assert_total_order(self) -> None:
        """Every participant delivered the same messages in the same order
        (up to a common prefix for participants that are behind)."""
        logs = [self.delivered_seqs(pid) for pid in self.ring]
        reference = max(logs, key=len)
        for log in logs:
            if log != reference[: len(log)]:
                raise AssertionError(
                    f"delivery logs diverge: {log[:20]} vs {reference[:20]}"
                )

    def assert_gapless(self) -> None:
        """Delivered sequence numbers are exactly 1..n with no gaps."""
        for pid in self.ring:
            seqs = self.delivered_seqs(pid)
            if seqs != list(range(1, len(seqs) + 1)):
                raise AssertionError(f"participant {pid} delivery has gaps: {seqs[:30]}")
