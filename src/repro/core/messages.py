"""Data messages and delivery services.

A data message (paper §III-C) carries: ``seq`` — its position in the total
order, stamped by the sender at multicast time using the token; ``pid`` —
the initiating participant; ``round`` — the token round in which it was
initiated; and the opaque payload.  We add the ``post_token`` bit used by
the second priority method of §III-D (it tells receivers the sender had
already released the token when this message went out) and the delivery
service requested by the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional


class DeliveryService(IntEnum):
    """Delivery service levels (Extended Virtual Synchrony, paper §II).

    ``RELIABLE``/``FIFO``/``CAUSAL`` share the delivery path of ``AGREED``
    (the paper notes their latency is similar to Agreed delivery): a message
    is delivered once every message preceding it in the total order has been
    delivered.  ``SAFE`` additionally waits until the token's ``aru``
    proves every participant has received the message (stability).
    """

    RELIABLE = 1
    FIFO = 2
    CAUSAL = 3
    AGREED = 4
    SAFE = 5

    @property
    def requires_stability(self) -> bool:
        return self is DeliveryService.SAFE


@dataclass
class DataMessage:
    """One totally ordered multicast message.

    ``timestamp`` is not part of the wire format the protocol depends on; it
    records the moment the application handed the payload to the sender and
    is used only for latency measurement (like the client timestamping in
    the paper's benchmarks).
    """

    seq: int
    pid: int
    round: int
    service: DeliveryService
    payload: bytes = b""
    post_token: bool = False
    payload_size: Optional[int] = None
    timestamp: Optional[float] = None
    ring_id: int = 1

    def __post_init__(self) -> None:
        if self.payload_size is None:
            self.payload_size = len(self.payload)

    def wire_size(self, header_bytes: int) -> int:
        """Bytes this message occupies in a UDP datagram, given the
        implementation's protocol header size."""
        return header_bytes + int(self.payload_size)

    def sort_key(self) -> int:
        return self.seq
