"""Data messages and delivery services.

A data message (paper §III-C) carries: ``seq`` — its position in the total
order, stamped by the sender at multicast time using the token; ``pid`` —
the initiating participant; ``round`` — the token round in which it was
initiated; and the opaque payload.  We add the ``post_token`` bit used by
the second priority method of §III-D (it tells receivers the sender had
already released the token when this message went out) and the delivery
service requested by the application.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional


class DeliveryService(IntEnum):
    """Delivery service levels (Extended Virtual Synchrony, paper §II).

    ``RELIABLE``/``FIFO``/``CAUSAL`` share the delivery path of ``AGREED``
    (the paper notes their latency is similar to Agreed delivery): a message
    is delivered once every message preceding it in the total order has been
    delivered.  ``SAFE`` additionally waits until the token's ``aru``
    proves every participant has received the message (stability).
    """

    RELIABLE = 1
    FIFO = 2
    CAUSAL = 3
    AGREED = 4
    SAFE = 5

    @property
    def requires_stability(self) -> bool:
        return self is DeliveryService.SAFE


class DataMessage:
    """One totally ordered multicast message.

    ``timestamp`` is not part of the wire format the protocol depends on; it
    records the moment the application handed the payload to the sender and
    is used only for latency measurement (like the client timestamping in
    the paper's benchmarks).

    A hand-written ``__slots__`` class (not a dataclass): one instance is
    allocated per multicast, making this one of the hottest allocations in
    a benchmark run.  Python 3.9 lacks ``dataclass(slots=True)``, hence
    the explicit form; constructor semantics (including the
    ``payload_size`` default of ``len(payload)``) match the dataclass it
    replaced.
    """

    __slots__ = (
        "seq",
        "pid",
        "round",
        "service",
        "payload",
        "post_token",
        "payload_size",
        "timestamp",
        "ring_id",
    )

    def __init__(
        self,
        seq: int,
        pid: int,
        round: int,
        service: DeliveryService,
        payload: bytes = b"",
        post_token: bool = False,
        payload_size: Optional[int] = None,
        timestamp: Optional[float] = None,
        ring_id: int = 1,
    ) -> None:
        self.seq = seq
        self.pid = pid
        self.round = round
        self.service = service
        self.payload = payload
        self.post_token = post_token
        self.payload_size = payload_size if payload_size is not None else len(payload)
        self.timestamp = timestamp
        self.ring_id = ring_id

    def __repr__(self) -> str:
        return (
            f"DataMessage(seq={self.seq!r}, pid={self.pid!r}, "
            f"round={self.round!r}, service={self.service!r}, "
            f"payload={self.payload!r}, post_token={self.post_token!r}, "
            f"payload_size={self.payload_size!r}, timestamp={self.timestamp!r}, "
            f"ring_id={self.ring_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not DataMessage:
            return NotImplemented
        return (
            self.seq == other.seq
            and self.pid == other.pid
            and self.round == other.round
            and self.service == other.service
            and self.payload == other.payload
            and self.post_token == other.post_token
            and self.payload_size == other.payload_size
            and self.timestamp == other.timestamp
            and self.ring_id == other.ring_id
        )

    __hash__ = None  # mutable, like the dataclass it replaced

    def wire_size(self, header_bytes: int) -> int:
        """Bytes this message occupies in a UDP datagram, given the
        implementation's protocol header size."""
        return header_bytes + int(self.payload_size)

    def sort_key(self) -> int:
        return self.seq
