"""The original Totem Ring protocol, as the paper's baseline.

Per paper §III, the original protocol differs from the Accelerated Ring
protocol in exactly three ways:

1. every message for the round is multicast *before* the token is passed
   (``Accelerated window = 0``);
2. missing messages are requested immediately, against the seq of the
   token just received (there is no in-flight ambiguity, since the
   predecessor finished sending before releasing the token);
3. the token is never prioritized over received data messages — all
   received data is processed before the token
   (:attr:`~repro.core.config.TokenPriorityMethod.NEVER`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.core.config import ProtocolConfig, TokenPriorityMethod
from repro.core.participant import AcceleratedRingParticipant
from repro.core.token import RegularToken

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver


class OriginalRingParticipant(AcceleratedRingParticipant):
    """One ring member running the original (unaccelerated) protocol."""

    accelerated = False

    def __init__(
        self,
        pid: int,
        ring: Sequence[int],
        config: Optional[ProtocolConfig] = None,
        ring_id: int = 1,
        observer: Optional["ProtocolObserver"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        config = (config or ProtocolConfig()).validate()
        pinned = replace(
            config,
            accelerated_window=0,
            priority_method=TokenPriorityMethod.NEVER,
        )
        super().__init__(
            pid, ring, pinned, ring_id, observer=observer, clock=clock
        )

    def _retransmission_request_limit(self, received_token: RegularToken) -> int:
        # Everything reflected in the just-received token has already been
        # multicast, so anything missing below its seq is genuinely lost.
        return received_token.seq
