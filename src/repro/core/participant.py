"""The Accelerated Ring ordering protocol (paper §III).

:class:`AcceleratedRingParticipant` is a sans-io state machine: feed it
received tokens and data messages, and it returns the ordered list of
effects (multicasts, the token send, deliveries) the implementation must
perform.  Effects preceding the :class:`~repro.core.events.SendToken` are
the *pre-token multicast phase*; effects following it are the *post-token
phase* — the protocol's key innovation is that the token can be released
before the post-token phase runs.

Normal-case operation only: membership establishment, token loss, crashes,
and partitions are the membership algorithm's job (:mod:`repro.membership`),
exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Sequence

from repro.core.buffer import MessageBuffer
from repro.core.config import ProtocolConfig, TokenPriorityMethod
from repro.core.events import (
    Deliver,
    DeliverBatch,
    Effect,
    MulticastData,
    SendToken,
    Stable,
)
from repro.core.flow_control import plan_sending, update_fcc
from repro.core.messages import DataMessage, DeliveryService
from repro.core.token import RegularToken
from repro.obs.observer import effective_observer
from repro.util.errors import ProtocolError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

# Hoisted enum member for the delivery hot loop (one global load instead
# of a module global plus an enum attribute lookup per call).
_SAFE = DeliveryService.SAFE


class _PendingMessage:
    """An application payload waiting for the token."""

    __slots__ = ("payload", "service", "timestamp", "payload_size")

    def __init__(
        self,
        payload: bytes,
        service: DeliveryService,
        timestamp: Optional[float],
        payload_size: Optional[int],
    ) -> None:
        self.payload = payload
        self.service = service
        self.timestamp = timestamp
        self.payload_size = payload_size if payload_size is not None else len(payload)


class AcceleratedRingParticipant:
    """One member of the logical ring running the Accelerated Ring protocol.

    Args:
        pid: this participant's id; must appear in ``ring``.
        ring: participant ids in ring order (token travels in list order,
            wrapping around).
        config: flow-control windows and priority method.
        ring_id: identifier of the current ring configuration (from
            membership); tokens from other rings are ignored.
        observer: optional :class:`~repro.obs.observer.ProtocolObserver`
            receiving a callback at every protocol event.
        clock: optional zero-argument callable returning the current time
            in the hosting layer's clock domain; passed through to the
            observer as ``now``.  Drivers bind this to simulated or
            event-loop time.
    """

    #: True for engines that release the token before finishing multicasting.
    accelerated = True

    def __init__(
        self,
        pid: int,
        ring: Sequence[int],
        config: Optional[ProtocolConfig] = None,
        ring_id: int = 1,
        observer: Optional["ProtocolObserver"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if pid not in ring:
            raise ProtocolError(f"pid {pid} not in ring {list(ring)}")
        if len(set(ring)) != len(ring):
            raise ProtocolError(f"ring contains duplicate ids: {list(ring)}")
        self.pid = pid
        self.ring = list(ring)
        self.config = (config or ProtocolConfig()).validate()
        self.ring_id = ring_id
        # A bare NullObserver collapses to None so the hot-path hook
        # guards (`observer is not None`) skip no-op calls entirely.
        self.observer = effective_observer(observer)
        self.clock = clock
        index = self.ring.index(pid)
        self.successor = self.ring[(index + 1) % len(self.ring)]
        self.predecessor = self.ring[(index - 1) % len(self.ring)]

        self.buffer = MessageBuffer()
        self.pending: Deque[_PendingMessage] = deque()
        self.round = 0

        #: Data messages get high priority right after a token is processed;
        #: the methods of §III-D raise the token's priority back.
        self.token_has_priority = False

        self._last_token_id = -1
        self._sent_last_round = 0
        self._prev_token_seq = 0
        self._sent_aru_prev = 0
        self._safe_limit = 0
        self._last_delivered = 0

        # Statistics.
        self.rounds_completed = 0
        self.messages_originated = 0
        self.retransmissions_sent = 0
        self.requests_made = 0
        self.duplicate_tokens = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------

    def submit(
        self,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
        timestamp: Optional[float] = None,
        payload_size: Optional[int] = None,
    ) -> None:
        """Queue an application message; it is stamped and multicast when
        the token next visits this participant."""
        self.pending.append(_PendingMessage(payload, service, timestamp, payload_size))

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    def _now(self) -> Optional[float]:
        """Current time in the hosting layer's clock domain, if bound."""
        return self.clock() if self.clock is not None else None

    @property
    def local_aru(self) -> int:
        return self.buffer.local_aru

    @property
    def last_delivered(self) -> int:
        return self._last_delivered

    @property
    def safe_limit(self) -> int:
        """Highest sequence number currently known stable (Safe-deliverable)."""
        return self._safe_limit

    # ------------------------------------------------------------------
    # Token handling (paper §III-B)
    # ------------------------------------------------------------------

    def on_token(self, token: RegularToken) -> List[Effect]:
        """Handle a received regular token; returns the effects in order:
        pre-token multicasts, the token send, post-token multicasts, then
        deliveries and discard notifications."""
        if token.ring_id != self.ring_id:
            return []
        if token.token_id <= self._last_token_id:
            self.duplicate_tokens += 1
            return []
        self._last_token_id = token.token_id
        token = token.copy()
        self.round += 1
        self.rounds_completed += 1
        if self.pid == self.ring[0]:
            token.rotation += 1

        observer = self.observer
        now = self._now() if observer is not None else None
        if observer is not None:
            observer.on_token_received(self.pid, token, now=now)

        effects: List[Effect] = []

        # --- 1. Pre-token multicasting -------------------------------
        # All retransmissions must go out before the token; otherwise they
        # could be requested again (paper §III-B1).
        answered = []
        for requested in token.rtr:
            held = self.buffer.get(requested)
            if held is not None:
                answered.append(requested)
                effects.append(MulticastData(held, retransmission=True))
                if observer is not None:
                    observer.on_retransmit(self.pid, requested, now=now)
                    observer.on_multicast(self.pid, held, retransmission=True, now=now)
        self.retransmissions_sent += len(answered)

        plan = plan_sending(self.config, len(self.pending), token.fcc, len(answered))
        if observer is not None:
            observer.on_flow_control(self.pid, plan, token.fcc, now=now)
        received_seq = token.seq
        received_aru = token.aru
        new_messages = self._stamp_new_messages(received_seq, plan.num_to_send, plan.pre_token)
        for message in new_messages[: plan.pre_token]:
            effects.append(MulticastData(message))
            if observer is not None:
                observer.on_multicast(self.pid, message, now=now)

        # --- 2. Updating and sending the token ------------------------
        request_limit = self._retransmission_request_limit(token)
        new_seq = received_seq + plan.num_to_send
        token.seq = new_seq
        self._update_aru(token, received_seq, received_aru, plan.num_to_send)
        token.fcc = update_fcc(
            token.fcc, self._sent_last_round, len(answered) + plan.num_to_send
        )
        self._sent_last_round = len(answered) + plan.num_to_send
        self._update_rtr(token, answered, request_limit, now=now)
        token.token_id += 1
        effects.append(SendToken(token, self.successor))
        if observer is not None:
            observer.on_token_sent(self.pid, token, now=now)

        # --- 3. Post-token multicasting --------------------------------
        for message in new_messages[plan.pre_token :]:
            effects.append(MulticastData(message))
            if observer is not None:
                observer.on_multicast(self.pid, message, now=now)

        # --- 4. Delivering and discarding ------------------------------
        # Safe delivery limit: the minimum of the aru on the token sent this
        # round and the one sent last round (paper §III-B4).
        self._safe_limit = min(self._sent_aru_prev, token.aru)
        self._sent_aru_prev = token.aru
        effects.extend(self._deliver_ready())
        discard_limit = min(self._safe_limit, self._last_delivered)
        if self.buffer.discard_up_to(discard_limit):
            effects.append(Stable(discard_limit))

        # Bookkeeping for the accelerated request rule and §III-D priority.
        self._prev_token_seq = received_seq
        self.token_has_priority = False
        return effects

    # ------------------------------------------------------------------
    # Data handling (paper §III-C)
    # ------------------------------------------------------------------

    def rollback_delivery_frontier(self, last_delivered: int) -> None:
        """Roll the delivery frontier back to ``last_delivered``.

        Used by the membership layer while a view change is in progress:
        messages that arrive mid-change must not be delivered with normal
        attribution, so the controller undoes the frontier advance and
        re-delivers through the recovery rules instead.
        """
        if last_delivered > self._last_delivered:
            raise ProtocolError(
                f"cannot roll delivery frontier forward "
                f"({last_delivered} > {self._last_delivered})"
            )
        self.messages_delivered -= self._last_delivered - last_delivered
        self._last_delivered = last_delivered

    def on_data(self, message: DataMessage) -> List[Effect]:
        """Handle a received data message; may produce in-order deliveries."""
        if message.ring_id != self.ring_id:
            return []
        if not self.buffer.insert(message):
            return []
        # Guard duplicates _maybe_raise_token_priority's rejection test so
        # the common case (message not from the predecessor's next round)
        # skips the call entirely.
        if message.pid == self.predecessor and message.round > self.round:
            self._maybe_raise_token_priority(message)
        return self._deliver_ready()

    def on_data_batch(self, messages: Sequence[DataMessage]) -> List[Effect]:
        """Handle one coalesced datagram carrying several data messages.

        Equivalent to calling :meth:`on_data` per message, but the
        delivery scan runs once over the whole batch, so an in-order
        datagram yields a single :class:`~repro.core.events.DeliverBatch`
        instead of one effect list per message.
        """
        buffer_insert = self.buffer.insert
        ring_id = self.ring_id
        predecessor = self.predecessor
        inserted = False
        for message in messages:
            if message.ring_id != ring_id:
                continue
            if not buffer_insert(message):
                continue
            inserted = True
            if message.pid == predecessor and message.round > self.round:
                self._maybe_raise_token_priority(message)
        if not inserted:
            return []
        return self._deliver_ready()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stamp_new_messages(
        self, start_seq: int, num_to_send: int, pre_token: int
    ) -> List[DataMessage]:
        """Assign consecutive sequence numbers to the next ``num_to_send``
        pending payloads.  The sender also inserts its own messages into its
        buffer: it trivially "has" them, so they count toward its local aru.
        """
        messages: List[DataMessage] = []
        for index in range(num_to_send):
            pending = self.pending.popleft()
            message = DataMessage(
                seq=start_seq + 1 + index,
                pid=self.pid,
                round=self.round,
                service=pending.service,
                payload=pending.payload,
                post_token=index >= pre_token,
                payload_size=pending.payload_size,
                timestamp=pending.timestamp,
                ring_id=self.ring_id,
            )
            self.buffer.insert(message)
            messages.append(message)
        self.messages_originated += num_to_send
        return messages

    def _retransmission_request_limit(self, received_token: RegularToken) -> int:
        """Highest sequence number this participant may request.

        Accelerated rule (paper §III-B2): request only up through the seq
        of the token received in the *previous* round — anything newer may
        simply not have been sent yet.  The original protocol overrides
        this to use the current token's seq.
        """
        return self._prev_token_seq

    def _update_aru(
        self,
        token: RegularToken,
        received_seq: int,
        received_aru: int,
        num_to_send: int,
    ) -> None:
        """Apply the aru rules of paper §III-B2 / Totem."""
        local_aru = self.buffer.local_aru
        if local_aru < received_aru:
            # Rule 1: lower the aru to what we actually have.
            token.aru = local_aru
            token.aru_lowered_by = self.pid
        elif token.aru_lowered_by == self.pid:
            # Rule 2: we lowered it previously and nobody lowered it
            # further since — raise it to our current local aru.
            token.aru = local_aru
            if token.aru == token.seq:
                token.aru_lowered_by = None
        elif received_aru == received_seq:
            # Rule 3: aru was keeping pace with seq; advance it with our
            # own sends (we hold all prior messages and our new ones).
            token.aru = received_seq + num_to_send
            token.aru_lowered_by = None
        # Otherwise: some other participant governs the aru; leave it.

    def _update_rtr(
        self,
        token: RegularToken,
        answered: List[int],
        request_limit: int,
        now: Optional[float] = None,
    ) -> None:
        """Remove answered requests; add our own missing sequence numbers."""
        answered_set = set(answered)
        kept = [seq for seq in token.rtr if seq not in answered_set]
        present = set(kept)
        my_missing = self.buffer.missing_between(
            self.buffer.local_aru, min(request_limit, token.seq)
        )
        for seq in my_missing:
            if seq not in present:
                kept.append(seq)
                present.add(seq)
                self.requests_made += 1
                if self.observer is not None:
                    self.observer.on_retransmit_requested(self.pid, seq, now=now)
        token.rtr = kept

    def _deliver_ready(self) -> List[Effect]:
        """Deliver messages in total order as far as the rules allow.

        Agreed (and FIFO/Causal/Reliable) messages are deliverable once
        contiguous; a Safe message blocks the frontier until the token aru
        proves stability (``_safe_limit``), preserving the single total
        order across services.

        Observer note: ``on_deliver`` deliberately does NOT fire here.
        Delivery is an application-visible act owned by the hosting layer
        (sim driver, membership controller, runtime node) — the engine
        only *proposes* deliveries via :class:`Deliver` effects, and the
        membership layer may roll them back mid-view-change.  The owning
        layer fires the hook, so observer delivery counts always match
        what the application (and the EVS checker) saw.
        """
        # Hot loop: runs once per received data message; locals avoid
        # repeated attribute loads and the SAFE check is an identity test
        # (the only service with requires_stability == True).
        messages = self.buffer._messages
        last_delivered = self._last_delivered
        safe_limit = self._safe_limit
        safe = _SAFE
        run: List[DataMessage] = []
        append = run.append
        while True:
            next_seq = last_delivered + 1
            message = messages.get(next_seq)
            if message is None:
                break
            if message.service is safe and next_seq > safe_limit:
                break
            last_delivered = next_seq
            append(message)
        delivered = len(run)
        if not delivered:
            return []
        self._last_delivered = last_delivered
        self.messages_delivered += delivered
        # The whole in-order run is one batched effect: the hosting layer
        # delivers the slice with a single hook/checker/callback round
        # instead of one per message.  A run of one keeps the scalar form.
        if delivered == 1:
            return [Deliver(run[0])]
        return [DeliverBatch(tuple(run))]

    def _maybe_raise_token_priority(self, message: DataMessage) -> None:
        """Paper §III-D: decide when the token outranks data again."""
        # The pid/round test rejects almost every message, so it runs
        # before the config lookup (outcome is identical either way).
        if message.pid != self.predecessor or message.round <= self.round:
            return
        method = self.config.priority_method
        if method is TokenPriorityMethod.NEVER:
            return
        if method is TokenPriorityMethod.AGGRESSIVE or message.post_token:
            self.token_has_priority = True
