"""The regular token (paper §III-B).

The token is the single control message that provides ordering, stability
notification, flow control, and failure detection.  Fields:

* ``seq`` — the last sequence number assigned to any message.  The holder
  may stamp new messages starting at ``seq + 1``.
* ``aru`` ("all-received-up-to") — tracks the highest sequence number such
  that *every* participant has received everything at or below it; drives
  Safe delivery and garbage collection.
* ``fcc`` ("flow control count") — total multicasts (including
  retransmissions) during the previous token rotation; enforces the Global
  window.
* ``rtr`` — the retransmission request list.

``aru_lowered_by`` mirrors Totem's ``aru_id``: the participant that last
lowered the ``aru`` (the paper phrases the same rule as "if the received
token's aru has not changed since the participant lowered it").
``token_id`` increments on every send so duplicate tokens (after a token
retransmission) are discarded; ``rotation`` counts completed ring rotations
for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional


@dataclass
class RegularToken:
    """The circulating ordering token."""

    ring_id: int
    token_id: int = 0
    seq: int = 0
    aru: int = 0
    aru_lowered_by: Optional[int] = None
    fcc: int = 0
    rtr: List[int] = field(default_factory=list)
    rotation: int = 0

    # Base wire size of the fixed fields; each rtr entry adds 4 bytes.
    BASE_SIZE = 40
    RTR_ENTRY_SIZE = 4

    def wire_size(self) -> int:
        return self.BASE_SIZE + self.RTR_ENTRY_SIZE * len(self.rtr)

    def copy(self) -> "RegularToken":
        return replace(self, rtr=list(self.rtr))

    def validate(self) -> None:
        """Sanity-check invariants that must hold on any well-formed token."""
        if self.aru > self.seq:
            raise ValueError(f"token aru {self.aru} exceeds seq {self.seq}")
        if self.fcc < 0:
            raise ValueError(f"token fcc is negative: {self.fcc}")
        if any(request < 1 or request > self.seq for request in self.rtr):
            raise ValueError(f"rtr entries out of range (seq={self.seq}): {self.rtr}")


def initial_token(ring_id: int) -> RegularToken:
    """The first regular token after membership establishes a ring."""
    return RegularToken(ring_id=ring_id)
