"""The regular token (paper §III-B).

The token is the single control message that provides ordering, stability
notification, flow control, and failure detection.  Fields:

* ``seq`` — the last sequence number assigned to any message.  The holder
  may stamp new messages starting at ``seq + 1``.
* ``aru`` ("all-received-up-to") — tracks the highest sequence number such
  that *every* participant has received everything at or below it; drives
  Safe delivery and garbage collection.
* ``fcc`` ("flow control count") — total multicasts (including
  retransmissions) during the previous token rotation; enforces the Global
  window.
* ``rtr`` — the retransmission request list.

``aru_lowered_by`` mirrors Totem's ``aru_id``: the participant that last
lowered the ``aru`` (the paper phrases the same rule as "if the received
token's aru has not changed since the participant lowered it").
``token_id`` increments on every send so duplicate tokens (after a token
retransmission) are discarded; ``rotation`` counts completed ring rotations
for diagnostics.
"""

from __future__ import annotations

from typing import List, Optional


class RegularToken:
    """The circulating ordering token.

    A hand-written ``__slots__`` class (not a dataclass): one token is
    copied per ring rotation, so compact instances and a cheap
    :meth:`copy` matter on the benchmark hot path.  Python 3.9 lacks
    ``dataclass(slots=True)``, hence the explicit form.
    """

    __slots__ = (
        "ring_id",
        "token_id",
        "seq",
        "aru",
        "aru_lowered_by",
        "fcc",
        "rtr",
        "rotation",
    )

    # Base wire size of the fixed fields; each rtr entry adds 4 bytes.
    BASE_SIZE = 40
    RTR_ENTRY_SIZE = 4

    def __init__(
        self,
        ring_id: int,
        token_id: int = 0,
        seq: int = 0,
        aru: int = 0,
        aru_lowered_by: Optional[int] = None,
        fcc: int = 0,
        rtr: Optional[List[int]] = None,
        rotation: int = 0,
    ) -> None:
        self.ring_id = ring_id
        self.token_id = token_id
        self.seq = seq
        self.aru = aru
        self.aru_lowered_by = aru_lowered_by
        self.fcc = fcc
        self.rtr = rtr if rtr is not None else []
        self.rotation = rotation

    def __repr__(self) -> str:
        return (
            f"RegularToken(ring_id={self.ring_id!r}, token_id={self.token_id!r}, "
            f"seq={self.seq!r}, aru={self.aru!r}, "
            f"aru_lowered_by={self.aru_lowered_by!r}, fcc={self.fcc!r}, "
            f"rtr={self.rtr!r}, rotation={self.rotation!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not RegularToken:
            return NotImplemented
        return (
            self.ring_id == other.ring_id
            and self.token_id == other.token_id
            and self.seq == other.seq
            and self.aru == other.aru
            and self.aru_lowered_by == other.aru_lowered_by
            and self.fcc == other.fcc
            and self.rtr == other.rtr
            and self.rotation == other.rotation
        )

    __hash__ = None  # mutable, like the dataclass it replaced

    def wire_size(self) -> int:
        return self.BASE_SIZE + self.RTR_ENTRY_SIZE * len(self.rtr)

    def copy(self) -> "RegularToken":
        return RegularToken(
            self.ring_id,
            self.token_id,
            self.seq,
            self.aru,
            self.aru_lowered_by,
            self.fcc,
            list(self.rtr),
            self.rotation,
        )

    def validate(self) -> None:
        """Sanity-check invariants that must hold on any well-formed token."""
        if self.aru > self.seq:
            raise ValueError(f"token aru {self.aru} exceeds seq {self.seq}")
        if self.fcc < 0:
            raise ValueError(f"token fcc is negative: {self.fcc}")
        if any(request < 1 or request > self.seq for request in self.rtr):
            raise ValueError(f"rtr entries out of range (seq={self.seq}): {self.rtr}")


def initial_token(ring_id: int) -> RegularToken:
    """The first regular token after membership establishes a ring."""
    return RegularToken(ring_id=ring_id)
