"""Sans-io transport core shared by the simulator and the real runtime.

Both "implementations" of the protocol — the deterministic simulator
driver (:class:`repro.sim.driver.ProtocolHost`) and the asyncio/UDP
runtime node (:class:`repro.runtime.node.RingNode`) — move the same
traffic: runs of new multicasts coalesced into one datagram
(``messages_per_datagram``), retransmissions travelling alone, frames
queued through preallocated rings, and receive/send windows accounted in
bytes.  This module is the single home for that machinery, with no I/O
and no clock: the sim prices the plans in simulated CPU seconds, the
runtime encodes them onto real sockets, and neither keeps a private
copy of the policy.

Contents:

* :class:`FrameRing` — the preallocated power-of-2 receive/transmit
  queue (re-exported by :mod:`repro.net.ring` for the simulator's
  hot-path inlines).
* :class:`CoalescingAccumulator` — the run-grouping policy for
  ``MulticastData`` effects; one implementation of "runs of consecutive
  new sends pack into one datagram, flushed at the first effect of any
  other kind so the token never overtakes pre-token sends".
* :func:`batch_wire_size` — the exact wire arithmetic of a coalesced
  frame (``encode_data_batch``'s format), used by the sim cost model
  and by anyone sizing real datagrams.
* :func:`encode_run` / :func:`decode_data_port` — the runtime codec for
  a coalesced run and the *port-aware* decode of the data port.  On the
  wire, core type 3 (``TYPE_DATA_BATCH``) collides with membership type
  3 (``TYPE_JOIN``); the collision is resolved by port class — batches
  only ever travel on the data port, joins and all other control
  messages ride the token port — so data-port decoding must use this
  function, never :func:`repro.membership.codec.decode_any`.
* :class:`ByteWindow` — bounded-byte admission accounting, the base of
  the simulator's kernel :class:`~repro.net.host.SocketBuffer` and of
  the runtime daemons' per-client send windows (backpressure).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.codec import (
    BATCH_FRAME_OVERHEAD,
    BATCH_ITEM_OVERHEAD,
    MAGIC,
    TYPE_DATA,
    TYPE_DATA_BATCH,
    decode_data_batch,
    encode_data,
    encode_data_batch,
)
from repro.core.codec import _decode_data  # one parse path for both consumers
from repro.core.messages import DataMessage
from repro.util.errors import CodecError

#: Default initial :class:`FrameRing` capacity (slots).  Steady-state
#: queue depths are bounded by flow control (global_window=150 frames
#: system-wide), so rings rarely grow past their initial size; growth is
#: transient start-up cost, not per-frame cost.
DEFAULT_CAPACITY = 256


class FrameRing:
    """A power-of-2 ring of slots with head/tail index arithmetic.

    Replaces ``collections.deque`` on every per-frame queue (kernel
    socket buffers, NIC transmit queues, switch ports, the runtime
    node's receive queues): a preallocated slot list addressed by
    monotonically increasing head/tail indices and a bit mask — pushing
    and popping in steady state touch only existing slots and two
    integers, allocating nothing.

    Simulator hot paths (``SimHost.receive``,
    ``ProtocolHost._select_work``, the NIC and switch-port serializers)
    inline these operations against the ``_slots``/``_mask``/``_head``/
    ``_tail`` fields directly; the methods here are the reference
    implementation and the API for non-hot callers.  Any inline must
    keep the exact semantics (grow when full, slot freed on pop) or the
    two copies drift.

    Slots hold whatever the owner queues: simulated
    :class:`~repro.net.packet.Frame` objects or the runtime's raw
    datagram ``bytes``.
    """

    __slots__ = ("_slots", "_mask", "_head", "_tail")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        size = 1
        while size < capacity:
            size <<= 1
        self._slots: List[Optional[object]] = [None] * size
        self._mask = size - 1
        #: Next index to pop; increases monotonically (never wrapped —
        #: the mask does the wrapping, and Python ints don't overflow).
        self._head = 0
        #: Next index to push.
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def __bool__(self) -> bool:
        return self._tail != self._head

    def push(self, frame: object) -> None:
        tail = self._tail
        if tail - self._head > self._mask:
            # _grow rebases the indices (head becomes 0): re-read tail.
            self._grow()
            tail = self._tail
        self._slots[tail & self._mask] = frame
        self._tail = tail + 1

    def pop(self) -> object:
        head = self._head
        if head == self._tail:
            raise IndexError("pop from an empty FrameRing")
        slots = self._slots
        index = head & self._mask
        frame = slots[index]
        # Free the slot so the ring never pins a frame (pooled frames are
        # recycled and reused while still referenced by a stale slot
        # otherwise, which is harmless for correctness but confuses leak
        # accounting and keeps payload buffers alive).
        slots[index] = None
        self._head = head + 1
        return frame

    def peek(self) -> object:
        if self._head == self._tail:
            raise IndexError("peek at an empty FrameRing")
        return self._slots[self._head & self._mask]

    def clear(self) -> None:
        slots = self._slots
        for index in range(len(slots)):
            slots[index] = None
        self._head = 0
        self._tail = 0

    def _grow(self) -> None:
        """Double the slot array, relinking live frames in order.

        Runs only when the ring is completely full — transient warm-up
        or a pathological burst — never in steady state.
        """
        old = self._slots
        old_mask = self._mask
        head = self._head
        count = self._tail - head
        size = (old_mask + 1) * 2
        slots: List[Optional[object]] = [None] * size
        for offset in range(count):
            slots[offset] = old[(head + offset) & old_mask]
        self._slots = slots
        self._mask = size - 1
        self._head = 0
        self._tail = count


# ----------------------------------------------------------------------
# Coalescing (messages_per_datagram)
# ----------------------------------------------------------------------


def batch_wire_size(messages: Sequence[DataMessage], header_bytes: int) -> int:
    """Wire size of a coalesced frame carrying ``messages``.

    Mirrors :func:`repro.core.codec.encode_data_batch` exactly: one
    batch header, then per message a length prefix plus a complete
    single-message encoding (``header_bytes`` of header + the payload).
    The sim prices coalesced sends with this, so the simulated per-byte
    cost matches what the runtime actually puts on the wire.
    """
    size = BATCH_FRAME_OVERHEAD
    for message in messages:
        size += BATCH_ITEM_OVERHEAD + header_bytes + int(message.payload_size)
    return size


class CoalescingAccumulator:
    """Groups runs of consecutive coalescible multicasts.

    The policy (paper §III-C, implemented identically by the sim driver
    and the runtime node): with ``messages_per_datagram > 1``, runs of
    consecutive *new* multicasts pack into one datagram of up to that
    many messages.  Retransmissions never coalesce — callers send them
    alone without touching the accumulator.  A run ends at the first
    effect of any other kind: callers must drain (:meth:`take`) before
    emitting that effect so datagrams keep effect order — the token
    must not overtake pre-token sends.

    ``group`` is public: the sim's per-effect hot loop tests it
    directly (``acc.group is not None``) the same way it inlines
    :class:`FrameRing` fields; :meth:`push` and :meth:`take` are the
    reference mutators and the only ones.
    """

    __slots__ = ("mpd", "group")

    def __init__(self, messages_per_datagram: int) -> None:
        self.mpd = messages_per_datagram
        self.group: Optional[List[DataMessage]] = None

    def push(self, message: DataMessage) -> Optional[List[DataMessage]]:
        """Add one new multicast to the current run.

        Returns the completed run when it reaches
        ``messages_per_datagram``, else ``None`` (message retained).
        """
        group = self.group
        if group is None:
            group = [message]
            if len(group) >= self.mpd:
                return group
            self.group = group
            return None
        group.append(message)
        if len(group) >= self.mpd:
            self.group = None
            return group
        return None

    def take(self) -> Optional[List[DataMessage]]:
        """Drain the partial run (run boundary), or ``None`` if empty."""
        group = self.group
        self.group = None
        return group


def encode_run(messages: Sequence[DataMessage]) -> bytes:
    """Encode one coalesced run for the wire.

    A run of one gains nothing from the batch frame, so it is encoded
    as a plain single-message datagram — byte-identical to the
    uncoalesced path — exactly as the sim prices it.
    """
    if len(messages) == 1:
        return encode_data(messages[0])
    return encode_data_batch(messages)


def decode_data_port(data: bytes) -> Union[DataMessage, List[DataMessage]]:
    """Decode one datagram received on the *data* port.

    The data port carries only single data messages and coalesced
    batches; tokens and every membership control message ride the token
    port.  That port split is what makes wire type 3 unambiguous: on
    the data port it is ``TYPE_DATA_BATCH``, on the token port it is
    ``TYPE_JOIN`` (decoded by ``decode_any``).  Anything else here is a
    codec error, counted by the caller like any malformed datagram.
    """
    if len(data) < 2:
        raise CodecError(f"datagram too short: {len(data)} bytes")
    if data[0] != MAGIC:
        raise CodecError(f"bad magic byte {data[0]:#x}")
    msg_type = data[1]
    if msg_type == TYPE_DATA:
        return _decode_data(data)
    if msg_type == TYPE_DATA_BATCH:
        return decode_data_batch(data)
    raise CodecError(f"unexpected type {msg_type} on the data port")


# ----------------------------------------------------------------------
# Byte-window accounting
# ----------------------------------------------------------------------


class ByteWindow:
    """Bounded-byte admission accounting for one queue.

    The policy shared by the simulator's kernel
    :class:`~repro.net.host.SocketBuffer` (which subclasses this and
    inlines the arithmetic on its hot receive path) and the runtime
    daemons' per-client send windows: admission is all-or-nothing
    against a byte capacity, drops are counted rather than buffered,
    and the peak committed depth is recorded for observability.

    Subclass hot paths may inline ``_queued_bytes``/``_capacity``
    updates directly; any inline must mirror :meth:`try_reserve` /
    :meth:`release` exactly or the copies drift.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = capacity_bytes
        self._queued_bytes = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.peak_queue_bytes = 0

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def try_reserve(self, size: int) -> bool:
        """Admit ``size`` bytes; False (and a drop count) on overflow."""
        queued = self._queued_bytes + size
        if queued > self._capacity:
            self.frames_dropped += 1
            return False
        self._queued_bytes = queued
        self.frames_received += 1
        if queued > self.peak_queue_bytes:
            self.peak_queue_bytes = queued
        return True

    def release(self, size: int) -> None:
        """Return ``size`` admitted bytes to the window."""
        self._queued_bytes -= size

    def reset(self) -> None:
        """Drop all committed bytes (volatile-state clear)."""
        self._queued_bytes = 0
