"""Extended Virtual Synchrony (EVS) semantics (paper §II).

EVS extends Virtual Synchrony to partitionable environments: delivery and
ordering guarantees are defined with respect to a series of
*configurations* — sets of connected participants plus a unique
identifier.  Membership changes are delivered to the application as
configuration-change events; a *transitional configuration* bridges an old
regular configuration and the next one, so applications can know exactly
which messages were shared with which peers.

:mod:`repro.evs.checker` validates delivery traces against the EVS
properties the paper relies on (Agreed and Safe delivery); the test suite
runs it over randomized fault schedules.
"""

from repro.evs.configuration import Configuration, ConfigurationChange
from repro.evs.events import DeliveryEvent, MessageDelivery, ConfigDelivery
from repro.evs.checker import EvsChecker, EvsViolation

__all__ = [
    "Configuration",
    "ConfigurationChange",
    "DeliveryEvent",
    "MessageDelivery",
    "ConfigDelivery",
    "EvsChecker",
    "EvsViolation",
]
