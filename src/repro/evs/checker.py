"""Trace checker for Extended Virtual Synchrony properties.

Feed it the full delivery trace of every participant (message deliveries
and configuration changes) and it verifies the guarantees of paper §II:

* **Agreed delivery** — all members of a configuration deliver messages in
  the same total order, each message at most once.
* **Safe delivery** — if any member delivers a Safe message in a
  configuration, every other member of that configuration delivers it too,
  unless it crashes.
* **Configuration agreement** — participants installing the same
  configuration id agree on its membership.
* **Virtual synchrony** — two participants transitioning together through
  the same transitional configuration deliver the same set of messages
  before installing the next regular configuration.
* **Self delivery** — a participant delivers its own messages (given the
  submission record), unless it crashes.

The checker is deliberately independent of the protocol implementation:
it sees only traces, so protocol bugs cannot hide inside it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.evs.configuration import Configuration
from repro.evs.events import ConfigDelivery, DeliveryEvent, MessageDelivery
from repro.util.errors import ReproError


class EvsViolation(ReproError, AssertionError):
    """An EVS guarantee was violated by the recorded traces."""


MessageKey = Tuple[int, int]  # (origin ring/config of ordering, seq)


class EvsChecker:
    """Collects per-participant delivery traces and validates them."""

    def __init__(self) -> None:
        self.traces: Dict[int, List[DeliveryEvent]] = defaultdict(list)
        #: Optional: pid -> number of messages it submitted (for self-delivery).
        #: Cumulative across incarnations — reports and goldens read this.
        self.submissions: Dict[int, int] = {}
        #: Pids whose crash/recovery lifecycle is reported to the checker
        #: (via :meth:`record_crash` / :meth:`record_recovery`).  For
        #: these, self-delivery is judged per incarnation; for untracked
        #: pids the legacy ``crashed`` waiver applies wholesale.
        self._incarnation_tracked: Set[int] = set()
        self._currently_crashed: Set[int] = set()
        #: Snapshots taken at the last crash of each tracked pid.
        self._submissions_at_crash: Dict[int, int] = {}
        self._own_deliveries_at_crash: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def record(self, pid: int, event: DeliveryEvent) -> None:
        self.traces[pid].append(event)

    def record_batch(self, pid: int, events: Sequence[DeliveryEvent]) -> None:
        """Append a run of delivery events in order (one list op, not
        one :meth:`record` call per event — the batched delivery path)."""
        self.traces[pid].extend(events)

    def record_submission(self, pid: int, count: int = 1) -> None:
        self.submissions[pid] = self.submissions.get(pid, 0) + count

    def record_crash(self, pid: int) -> None:
        """``pid``'s process fail-stopped.

        Snapshots the pid's submission and own-delivery counts: messages
        submitted before the crash belong to the dead incarnation, so a
        later recovered incarnation is only held to self-delivery of what
        it submits *after* recovering.  (Without this, a pid that crashes
        with undelivered submissions in flight and later restarts would
        be flagged for messages the crashed incarnation legitimately
        lost.)  ``submissions`` itself stays cumulative — reports built
        on it are unaffected.
        """
        self._incarnation_tracked.add(pid)
        self._currently_crashed.add(pid)
        self._submissions_at_crash[pid] = self.submissions.get(pid, 0)
        self._own_deliveries_at_crash[pid] = self._own_delivery_count(pid)

    def record_recovery(self, pid: int) -> None:
        """``pid`` restarted with empty state after a crash.

        From here on the pid is live again: self-delivery is enforced for
        submissions of the new incarnation (measured against the
        :meth:`record_crash` snapshot), instead of being waived wholesale
        by the ``crashed`` set.
        """
        self._incarnation_tracked.add(pid)
        self._currently_crashed.discard(pid)

    # ------------------------------------------------------------------

    def check(self, crashed: Iterable[int] = ()) -> None:
        """Run every property check; raises :class:`EvsViolation`."""
        crashed_set = frozenset(crashed)
        self.check_no_duplicates()
        self.check_total_order()
        self.check_configuration_agreement()
        self.check_safe_delivery(crashed_set)
        self.check_virtual_synchrony()
        if self.submissions:
            self.check_self_delivery(crashed_set)

    # ------------------------------------------------------------------

    def _message_events(self, pid: int) -> List[MessageDelivery]:
        return [e for e in self.traces[pid] if isinstance(e, MessageDelivery)]

    def _key(self, event: MessageDelivery) -> MessageKey:
        ring = event.origin_ring if event.origin_ring is not None else event.config_id
        return (ring, event.seq)

    def check_no_duplicates(self) -> None:
        for pid, trace in self.traces.items():
            seen: Set[MessageKey] = set()
            for event in trace:
                if not isinstance(event, MessageDelivery):
                    continue
                key = self._key(event)
                if key in seen:
                    raise EvsViolation(f"participant {pid} delivered {key} twice")
                seen.add(key)

    def check_total_order(self) -> None:
        """Common messages appear in the same relative order everywhere.

        Order is compared per ordering domain (ring): within one ring,
        delivery order must follow sequence numbers.
        """
        for pid, trace in self.traces.items():
            per_ring_last: Dict[int, int] = {}
            for event in trace:
                if not isinstance(event, MessageDelivery):
                    continue
                ring, seq = self._key(event)
                last = per_ring_last.get(ring, 0)
                if seq <= last:
                    raise EvsViolation(
                        f"participant {pid} delivered ring {ring} seq {seq} "
                        f"after seq {last} (order violation)"
                    )
                per_ring_last[ring] = seq

    def check_configuration_agreement(self) -> None:
        """Regular configurations with the same id have the same members.

        Transitional configurations derived from the same regular
        configuration may legitimately differ across a partition (each
        side installs its own survivor set); the required property is
        *mutual* agreement — if p delivers transitional (id, M) then every
        member of M that delivers a transitional configuration with that
        id delivers exactly (id, M).
        """
        views: Dict[Tuple[int, bool], FrozenSet[int]] = {}
        for pid, trace in self.traces.items():
            for event in trace:
                if not isinstance(event, ConfigDelivery):
                    continue
                configuration = event.configuration
                key = (configuration.config_id, configuration.transitional)
                previous = views.get(key)
                if previous is None:
                    views[key] = configuration.members
                elif previous != configuration.members:
                    raise EvsViolation(
                        f"configuration {key} installed with different members: "
                        f"{sorted(previous)} vs {sorted(configuration.members)}"
                    )

    def check_safe_delivery(self, crashed: FrozenSet[int]) -> None:
        """A Safe message delivered by anyone must be delivered by every
        non-crashed member of the configuration it was delivered in.

        The configuration a delivery belongs to is the nearest preceding
        configuration-change event in that participant's own trace: normal
        operation follows a regular configuration; recovery deliveries
        after a transitional configuration are guaranteed only with
        respect to the transitional members (EVS).
        """
        delivered_by: Dict[MessageKey, Set[int]] = defaultdict(set)
        requirements: Dict[MessageKey, List[FrozenSet[int]]] = defaultdict(list)
        for pid, trace in self.traces.items():
            current_members: Optional[FrozenSet[int]] = None
            for event in trace:
                if isinstance(event, ConfigDelivery):
                    current_members = event.configuration.members
                    continue
                if not isinstance(event, MessageDelivery):
                    continue
                key = self._key(event)
                delivered_by[key].add(pid)
                if event.is_safe and current_members is not None:
                    requirements[key].append(current_members)
        for key, member_sets in requirements.items():
            required: Set[int] = set()
            for members in member_sets:
                required |= members
            for member in required:
                if member in crashed:
                    continue
                if member not in delivered_by[key]:
                    raise EvsViolation(
                        f"safe message {key} was delivered but non-crashed "
                        f"member {member} never delivered it"
                    )

    def check_virtual_synchrony(self) -> None:
        """Participants moving together through the same transitional
        configuration deliver the same set of that ring's messages before
        the transitional configuration is delivered.

        Only messages ordered by the ring the transitional configuration
        closes (``origin_ring == config_id``) are compared: members that
        arrived from different previous rings legitimately have different
        earlier histories.
        """
        # (transitional config id, members) -> pid -> messages delivered before
        before_transitional: Dict[Tuple[int, FrozenSet[int]], Dict[int, Set[MessageKey]]]
        before_transitional = defaultdict(dict)
        for pid, trace in self.traces.items():
            delivered: Set[MessageKey] = set()
            for event in trace:
                if isinstance(event, MessageDelivery):
                    delivered.add(self._key(event))
                elif isinstance(event, ConfigDelivery) and event.configuration.transitional:
                    ring = event.configuration.closes
                    if ring is None:
                        continue
                    key = (event.configuration.config_id, event.configuration.members)
                    before_transitional[key][pid] = {
                        message for message in delivered if message[0] == ring
                    }
        for (config_id, members), snapshots in before_transitional.items():
            participants = [pid for pid in snapshots if pid in members]
            if len(participants) < 2:
                continue
            reference_pid = participants[0]
            reference = snapshots[reference_pid]
            for pid in participants[1:]:
                if snapshots[pid] != reference:
                    raise EvsViolation(
                        self._format_vs_violation(
                            config_id,
                            members,
                            reference_pid,
                            reference,
                            pid,
                            snapshots[pid],
                        )
                    )

    # -- violation formatting ------------------------------------------

    def _format_vs_violation(
        self,
        config_id: int,
        members: FrozenSet[int],
        reference_pid: int,
        reference: Set[MessageKey],
        pid: int,
        other: Set[MessageKey],
    ) -> str:
        """Build a debuggable virtual-synchrony violation message.

        Includes the diverging pids, the transitional configuration, the
        exact message keys each side is missing, and a minimal trace
        excerpt around each side's transitional delivery — enough to see
        *where* the delivered sets forked without replaying the run.
        """
        lines = [
            f"virtual synchrony violated at transitional config {config_id}",
            f"  members: {sorted(members)}",
            f"  pids {reference_pid} and {pid} disagree on the closed "
            "ring's delivered set:",
            "    delivered only by "
            f"{reference_pid}: {self._format_keys(reference - other)}",
            f"    delivered only by {pid}: {self._format_keys(other - reference)}",
            f"  trace excerpt, pid {reference_pid}:",
        ]
        lines.extend(self._trace_excerpt(reference_pid, config_id))
        lines.append(f"  trace excerpt, pid {pid}:")
        lines.extend(self._trace_excerpt(pid, config_id))
        return "\n".join(lines)

    @staticmethod
    def _format_keys(keys: Set[MessageKey], limit: int = 10) -> str:
        ordered = sorted(keys)
        text = str(ordered[:limit])
        if len(ordered) > limit:
            text += f" (+{len(ordered) - limit} more)"
        return text

    def _format_event(self, event: DeliveryEvent) -> str:
        if isinstance(event, MessageDelivery):
            ring, seq = self._key(event)
            return (
                f"deliver ({ring}, {seq}) "
                f"{event.service.name.lower()} from {event.sender}"
            )
        if isinstance(event, ConfigDelivery):
            configuration = event.configuration
            kind = "transitional" if configuration.transitional else "regular"
            return (
                f"install {kind} config {configuration.config_id} "
                f"members={sorted(configuration.members)}"
            )
        return repr(event)

    def _trace_excerpt(self, pid: int, config_id: int, context: int = 4) -> List[str]:
        """The last ``context`` events before (and including) ``pid``'s
        delivery of transitional configuration ``config_id``."""
        trace = self.traces.get(pid, [])
        anchor = next(
            (
                index
                for index, event in enumerate(trace)
                if isinstance(event, ConfigDelivery)
                and event.configuration.transitional
                and event.config_id == config_id
            ),
            None,
        )
        if anchor is None:
            return ["    (no transitional config delivery recorded)"]
        start = max(0, anchor - context)
        lines = []
        if start > 0:
            lines.append(f"    ... {start} earlier events ...")
        lines.extend("    " + self._format_event(e) for e in trace[start : anchor + 1])
        return lines

    def _own_delivery_count(self, pid: int) -> int:
        return sum(
            1
            for event in self.traces[pid]
            if isinstance(event, MessageDelivery) and event.sender == pid
        )

    def check_self_delivery(self, crashed: FrozenSet[int]) -> None:
        """A live participant delivers everything it submitted.

        For pids with incarnation tracking (:meth:`record_crash` /
        :meth:`record_recovery`), only the *current* incarnation is
        judged: a pid that is crashed right now is waived entirely, and a
        recovered pid answers for submissions after its last crash, not
        for the dead incarnation's in-flight tail.  Untracked pids keep
        the legacy semantics — the ``crashed`` set waives them outright.
        """
        for pid, submitted in self.submissions.items():
            baseline = 0
            if pid in self._incarnation_tracked:
                if pid in self._currently_crashed:
                    continue
                submitted -= self._submissions_at_crash.get(pid, 0)
                baseline = self._own_deliveries_at_crash.get(pid, 0)
            elif pid in crashed:
                continue
            own = self._own_delivery_count(pid) - baseline
            if own < submitted:
                raise EvsViolation(
                    f"participant {pid} submitted {submitted} messages "
                    "(current incarnation) but delivered only "
                    f"{own} of its own"
                )
