"""Configurations: the membership views of Extended Virtual Synchrony."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple


@dataclass(frozen=True)
class Configuration:
    """One configuration: a unique id plus a set of connected members.

    A *regular* configuration is installed when membership settles; a
    *transitional* configuration contains only those members of the
    preceding regular configuration that continue together into the next
    one, and carries no new messages — it exists so the application can
    attribute the final messages of the old configuration precisely.
    """

    config_id: int
    members: FrozenSet[int]
    transitional: bool = False
    #: For transitional configurations: the regular configuration (ring)
    #: this transitional configuration closes.
    closes: "int | None" = None

    @staticmethod
    def regular(config_id: int, members: Iterable[int]) -> "Configuration":
        return Configuration(config_id=config_id, members=frozenset(members))

    @staticmethod
    def transitional_of(
        config_id: int, members: Iterable[int], closes: "int | None" = None
    ) -> "Configuration":
        return Configuration(
            config_id=config_id,
            members=frozenset(members),
            transitional=True,
            closes=closes,
        )

    def __contains__(self, pid: int) -> bool:
        return pid in self.members

    def sorted_members(self) -> Tuple[int, ...]:
        return tuple(sorted(self.members))


@dataclass(frozen=True)
class ConfigurationChange:
    """A configuration-change event as delivered to the application."""

    old: Configuration
    new: Configuration
