"""Typed delivery-trace events consumed by the EVS checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import DeliveryService
from repro.evs.configuration import Configuration


class DeliveryEvent:
    """Base class for events in a participant's delivery trace."""

    __slots__ = ()


@dataclass(frozen=True)
class MessageDelivery(DeliveryEvent):
    """A message delivered to the application."""

    seq: int
    sender: int
    service: DeliveryService
    config_id: int
    origin_ring: Optional[int] = None

    @property
    def is_safe(self) -> bool:
        return self.service is DeliveryService.SAFE


@dataclass(frozen=True)
class ConfigDelivery(DeliveryEvent):
    """A configuration change delivered to the application."""

    configuration: Configuration

    @property
    def config_id(self) -> int:
        return self.configuration.config_id
