"""Deterministic fault injection and chaos scenarios.

The faults layer turns the simulator's ad-hoc fault hooks into scripted,
reproducible chaos experiments:

* :mod:`repro.faults.events` — typed fault events (crash, recover,
  partition, heal, token drop, loss burst, pause/resume).
* :mod:`repro.faults.plan` — :class:`FaultPlan`: a validated,
  time-ordered schedule with a builder DSL and JSON round-trip.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: compiles a
  plan into simulator events via first-class injection points (switch
  frame filters, host receive interceptors, the cluster fault surface).
* :mod:`repro.faults.scenarios` — a named scenario library whose
  reports are EVS-checked and byte-identical per seed.
* :mod:`repro.faults.generator` — seeded random *valid* fault-plan
  generation, shared by the hypothesis suite and the soak harness.
* :mod:`repro.faults.soak` — the soak harness: N seeded random plans
  under full EVS checking, with minimized replayable counterexamples
  (``python -m repro soak``).

Quickstart::

    from repro.faults import PlanBuilder, FaultInjector
    from repro.sim.build import ClusterBuilder

    cluster = ClusterBuilder().hosts(4).membership().build()
    cluster.start(); cluster.run(0.08)
    plan = PlanBuilder().crash(1, at=0.02).recover(1, at=0.2).build()
    FaultInjector(cluster, plan, seed=7).arm()
    cluster.run(1.0)
    cluster.checker.check(crashed={1})

or from the command line: ``python -m repro chaos partition-heal --seed 7``.
"""

from repro.faults.events import (
    Crash,
    EVENT_TYPES,
    FaultEvent,
    Heal,
    LossBurst,
    Partition,
    Pause,
    Recover,
    Resume,
    TokenDrop,
    event_from_dict,
)
from repro.faults.generator import build_plan, random_plan, random_steps
from repro.faults.injector import FaultInjector, run_plan
from repro.faults.plan import FaultPlan, PlanBuilder
from repro.faults.soak import (
    Counterexample,
    SoakCase,
    SoakReport,
    check_plan,
    drive_plan,
    minimize_steps,
    run_soak,
)
from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioReport,
    ScenarioSpec,
    run_all,
    run_scenario,
)

__all__ = [
    "Counterexample",
    "Crash",
    "EVENT_TYPES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Heal",
    "LossBurst",
    "Partition",
    "Pause",
    "PlanBuilder",
    "Recover",
    "Resume",
    "SCENARIOS",
    "ScenarioReport",
    "ScenarioSpec",
    "SoakCase",
    "SoakReport",
    "TokenDrop",
    "build_plan",
    "check_plan",
    "drive_plan",
    "event_from_dict",
    "minimize_steps",
    "random_plan",
    "random_steps",
    "run_all",
    "run_plan",
    "run_scenario",
    "run_soak",
]
