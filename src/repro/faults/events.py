"""Typed fault events.

A fault event is a small frozen dataclass with an absolute schedule time
``at`` (seconds, relative to when the injector is armed) plus the
parameters of one fault.  Events serialize to plain dicts (and therefore
JSON) losslessly, so a chaos scenario can live in a file next to the
benchmark configs.

The event vocabulary mirrors the failure model of paper §II and the
fault experiments of §IV-A4:

* :class:`Crash` / :class:`Recover` — fail-stop and restart of one
  process (the membership layer's reason to exist).
* :class:`Partition` / :class:`Heal` — switch-level network partition
  into connectivity groups, and its repair (ring split + merge).
* :class:`TokenDrop` — lose the next ``count`` token frames on the wire
  (the event Totem's token-loss timeout defends against).
* :class:`LossBurst` — a transient window of receiver-side data loss at
  ``rate`` on the targeted pids (a flapping lossy link).
* :class:`RackPowerLoss` — correlated fail-stop of every process in one
  rack (a PDU failure in a leaf–spine fabric).
* :class:`Pause` / :class:`Resume` — GC-stall-style freeze of one
  process: it stops executing but keeps receiving into kernel buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, FrozenSet, Iterable, Optional, Tuple, Type

from repro.util.errors import FaultError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault."""

    at: float

    #: Stable wire name of the event type (set by each subclass).
    kind: ClassVar[str] = ""

    def validate(self) -> None:
        if self.at < 0:
            raise FaultError(f"{self.kind}: schedule time must be >= 0, got {self.at}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict`` inverts it exactly."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for field in fields(self):
            payload[field.name] = _jsonify(getattr(self, field.name))
        return payload


def _jsonify(value: Any) -> Any:
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


@dataclass(frozen=True)
class Crash(FaultEvent):
    """Fail-stop process ``pid``."""

    pid: int = 0
    kind: ClassVar[str] = "crash"


@dataclass(frozen=True)
class Recover(FaultEvent):
    """Restart a crashed process ``pid`` (fresh state, rejoins the ring)."""

    pid: int = 0
    kind: ClassVar[str] = "recover"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Split connectivity into the given groups (switch-level filter).

    Hosts not named in any group form an implicit group of their own.
    """

    groups: Tuple[FrozenSet[int], ...] = ()
    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        normalized = tuple(
            frozenset(group) for group in self.groups
        )
        object.__setattr__(
            self, "groups", tuple(sorted(normalized, key=lambda g: min(g) if g else -1))
        )

    def validate(self) -> None:
        super().validate()
        if len(self.groups) < 2:
            raise FaultError(f"partition at {self.at}: need at least two groups")
        seen: set = set()
        for group in self.groups:
            if not group:
                raise FaultError(f"partition at {self.at}: empty group")
            overlap = seen & group
            if overlap:
                raise FaultError(
                    f"partition at {self.at}: pids {sorted(overlap)} appear in two groups"
                )
            seen |= group


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove any active partition; the membership layer merges rings."""

    kind: ClassVar[str] = "heal"


@dataclass(frozen=True)
class TokenDrop(FaultEvent):
    """Drop the next ``count`` token frames crossing the switch."""

    count: int = 1
    kind: ClassVar[str] = "token_drop"

    def validate(self) -> None:
        super().validate()
        if self.count < 1:
            raise FaultError(f"token_drop at {self.at}: count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Receiver-side data loss at ``rate`` for ``duration`` seconds.

    ``pids`` limits the burst to specific receivers; ``None`` hits every
    host (a switch-wide congestion episode).
    """

    rate: float = 0.0
    duration: float = 0.0
    pids: Optional[FrozenSet[int]] = None
    kind: ClassVar[str] = "loss_burst"

    def __post_init__(self) -> None:
        if self.pids is not None:
            object.__setattr__(self, "pids", frozenset(self.pids))

    def validate(self) -> None:
        super().validate()
        if not 0.0 < self.rate <= 1.0:
            raise FaultError(
                f"loss_burst at {self.at}: rate must be in (0, 1], got {self.rate}"
            )
        if self.duration <= 0:
            raise FaultError(
                f"loss_burst at {self.at}: duration must be > 0, got {self.duration}"
            )


@dataclass(frozen=True)
class RackPowerLoss(FaultEvent):
    """Simultaneous fail-stop of every member of one rack.

    The correlated failure of data centers: a rack PDU dies and every
    co-located process fails in the same instant.  ``pids`` names the
    rack's members explicitly (keeping the plan validator's crash
    bookkeeping exact); with ``pids=None`` the injector resolves the
    membership from the topology's rack map at apply time, which
    requires a fabric topology (see :mod:`repro.net.fabric`).
    """

    rack: int = 0
    pids: Optional[FrozenSet[int]] = None
    kind: ClassVar[str] = "rack_power_loss"

    def __post_init__(self) -> None:
        if self.pids is not None:
            object.__setattr__(self, "pids", frozenset(self.pids))

    def validate(self) -> None:
        super().validate()
        if self.rack < 0:
            raise FaultError(
                f"rack_power_loss at {self.at}: rack must be >= 0, got {self.rack}"
            )
        if self.pids is not None and not self.pids:
            raise FaultError(
                f"rack_power_loss at {self.at}: explicit pid set must be non-empty"
            )


@dataclass(frozen=True)
class Pause(FaultEvent):
    """Freeze process ``pid`` (GC stall): no execution, frames queue up."""

    pid: int = 0
    kind: ClassVar[str] = "pause"


@dataclass(frozen=True)
class Resume(FaultEvent):
    """Unfreeze a paused process; deferred timers fire late."""

    pid: int = 0
    kind: ClassVar[str] = "resume"


#: Registry used by :func:`event_from_dict` (and the plan JSON codec).
EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        Crash,
        Recover,
        Partition,
        Heal,
        TokenDrop,
        LossBurst,
        RackPowerLoss,
        Pause,
        Resume,
    )
}


def event_from_dict(payload: Dict[str, Any]) -> FaultEvent:
    """Inverse of :meth:`FaultEvent.to_dict`."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise FaultError(f"unknown fault event kind {kind!r}")
    if cls is Partition and "groups" in data:
        data["groups"] = tuple(frozenset(group) for group in data["groups"])
    if cls in (LossBurst, RackPowerLoss) and data.get("pids") is not None:
        data["pids"] = frozenset(data["pids"])
    try:
        event = cls(**data)
    except TypeError as exc:
        raise FaultError(f"bad {kind} event fields: {exc}") from None
    return event


def events_from_dicts(payloads: Iterable[Dict[str, Any]]) -> Tuple[FaultEvent, ...]:
    return tuple(event_from_dict(payload) for payload in payloads)
