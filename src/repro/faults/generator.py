"""Random *valid* fault-plan generation.

The soak harness (:mod:`repro.faults.soak`) and the hypothesis property
tests (``tests/property/test_fault_schedules.py``) share one notion of
"a random fault plan": a sequence of abstract steps
``(delta_ms, action, pid)`` folded through a state machine that skips
steps which would be invalid at that point (crash of an already-crashed
pid, a second overlapping partition, ...).  That keeps generators
exploring the space of *valid* schedules instead of mostly-rejected
ones, and it means a soak counterexample minimizes the same way a
hypothesis shrink does: by deleting steps.

``Step`` triples are plain data so they serialize alongside the plan in
counterexample artifacts.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro.faults.plan import FaultPlan, PlanBuilder

#: One abstract plan step: (time since previous event in ms, action, pid).
Step = Tuple[int, str, int]

#: Every action :func:`build_plan` understands, in a fixed order so a
#: seeded RNG draws identically across runs and python versions.
ACTIONS: Tuple[str, ...] = (
    "crash",
    "recover",
    "partition",
    "heal",
    "token_drop",
    "loss_burst",
    "pause",
    "resume",
)

#: Bounds for the inter-step gap, milliseconds (matches the hypothesis
#: strategy in ``tests/property/test_fault_schedules.py``).
MIN_DELTA_MS = 5
MAX_DELTA_MS = 60

#: The action vocabulary for fabric (leaf–spine) soak runs: everything
#: above plus correlated rack failure.  A separate tuple — appending to
#: ``ACTIONS`` would shift every existing seeded draw stream.
FABRIC_ACTIONS: Tuple[str, ...] = ACTIONS + ("rack_power_loss",)


def build_plan(steps: Iterable[Step], num_hosts: int, racks: int = 0) -> FaultPlan:
    """Turn arbitrary abstract steps into a *valid* plan.

    Tracks the same state machine the validator enforces and skips steps
    that would be invalid at that point.  The mapping is deterministic:
    the same steps always produce the same plan.  ``racks > 0`` enables
    the ``rack_power_loss`` action (pid selects the rack, modulo), with
    hosts assigned rack-major as in
    :class:`~repro.net.fabric.LeafSpineSpec`.
    """
    builder = PlanBuilder()
    crashed = set()
    paused = set()
    partitioned = False
    at = 0.0
    for delta_ms, action, pid in steps:
        at += delta_ms / 1000.0
        if action == "rack_power_loss" and racks > 0:
            hosts_per_rack = num_hosts // racks
            if hosts_per_rack < 1:
                continue
            rack = pid % racks
            members = range(rack * hosts_per_rack, (rack + 1) * hosts_per_rack)
            fresh = [member for member in members if member not in crashed]
            if fresh:
                builder.rack_power_loss(rack, at=at, pids=fresh)
                crashed.update(fresh)
                paused.difference_update(fresh)
        elif action == "crash" and pid not in crashed:
            builder.crash(pid, at=at)
            crashed.add(pid)
            paused.discard(pid)
        elif action == "recover" and pid in crashed:
            builder.recover(pid, at=at)
            crashed.discard(pid)
        elif action == "partition" and not partitioned:
            # Clamp so both sides are non-empty whatever pid was drawn.
            split = max(1, min(pid, num_hosts - 1))
            builder.partition(set(range(split)), set(range(split, num_hosts)), at=at)
            partitioned = True
        elif action == "heal" and partitioned:
            builder.heal(at=at)
            partitioned = False
        elif action == "token_drop":
            builder.token_drop(at=at, count=1 + pid % 2)
        elif action == "loss_burst":
            builder.loss_burst(at=at, duration=0.03, rate=0.3, pids={pid})
        elif action == "pause" and pid not in paused and pid not in crashed:
            builder.pause(pid, at=at)
            paused.add(pid)
        elif action == "resume" and pid in paused:
            builder.resume(pid, at=at)
            paused.discard(pid)
    return builder.build(num_hosts=num_hosts)


def random_steps(
    rng: random.Random,
    num_hosts: int,
    max_steps: int = 8,
    actions: Sequence[str] = ACTIONS,
) -> List[Step]:
    """Draw a random abstract step sequence from a seeded RNG.

    The default ``actions`` keeps the historical draw stream; fabric
    soaks pass :data:`FABRIC_ACTIONS`.
    """
    count = rng.randint(0, max_steps)
    return [
        (
            rng.randint(MIN_DELTA_MS, MAX_DELTA_MS),
            rng.choice(actions),
            rng.randrange(num_hosts),
        )
        for _ in range(count)
    ]


def random_plan(
    rng: random.Random,
    num_hosts: int,
    max_steps: int = 8,
    actions: Sequence[str] = ACTIONS,
    racks: int = 0,
) -> Tuple[FaultPlan, List[Step]]:
    """One random valid plan plus the abstract steps that produced it.

    The steps are returned too so callers (the soak minimizer, the
    counterexample artifact) can manipulate the pre-validation form.
    """
    steps = random_steps(rng, num_hosts, max_steps=max_steps, actions=actions)
    return build_plan(steps, num_hosts, racks=racks), steps


def steps_to_lists(steps: Sequence[Step]) -> List[List[object]]:
    """JSON-friendly form of a step sequence."""
    return [[delta, action, pid] for delta, action, pid in steps]


def steps_from_lists(payload: Iterable[Sequence[object]]) -> List[Step]:
    """Inverse of :func:`steps_to_lists`."""
    return [(int(delta), str(action), int(pid)) for delta, action, pid in payload]
