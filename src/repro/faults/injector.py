"""The fault-injection engine.

:class:`FaultInjector` compiles a validated :class:`~repro.faults.plan.
FaultPlan` into simulator events against a cluster.  It works through
first-class injection points — the switch's frame filters
(:meth:`repro.net.switch.Switch.add_filter`), the hosts' receive
interceptors (:meth:`repro.net.host.SimHost.add_interceptor`), and the
cluster fault surface (``crash``/``restart``/``pause``/``resume``/
``partition``/``heal``) — never by monkey-patching protocol internals,
so injected behaviour is exactly what a deployed system would see at the
same layer.

Determinism: every probabilistic decision draws from one
``random.Random(seed)`` owned by the injector, and all scheduling goes
through the deterministic discrete-event simulator, so two runs of the
same plan with the same seed produce identical traces byte for byte.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.faults.events import (
    Crash,
    FaultEvent,
    Heal,
    LossBurst,
    Partition,
    Pause,
    RackPowerLoss,
    Recover,
    Resume,
    TokenDrop,
)
from repro.faults.plan import FaultPlan
from repro.net.packet import Frame, PortKind
from repro.util.errors import FaultError


class FaultInjector:
    """Drives one fault plan against one cluster.

    ``cluster`` is anything exposing the simulated fault surface:
    :class:`~repro.sim.membership_driver.MembershipCluster` (full
    crash/recover support) or :class:`~repro.sim.cluster.RingCluster`
    (normal-case protocol; ``Recover`` is rejected because there is no
    membership layer to rejoin through).
    """

    def __init__(
        self,
        cluster: Any,
        plan: FaultPlan,
        seed: int = 0,
        rng: Optional[random.Random] = None,
        observer: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan.validate(num_hosts=len(cluster.topology.hosts))
        self.rng = rng if rng is not None else random.Random(seed)
        self.observer = observer if observer is not None else getattr(
            cluster, "observer", None
        )
        #: Chronological log of applied events: ``{"t": sim-time, ...event}``.
        self.applied: List[Dict[str, Any]] = []
        self.partitions_active = 0
        self._armed = False

    # ------------------------------------------------------------------

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def switch(self):
        return self.cluster.topology.switch

    def arm(self) -> "FaultInjector":
        """Schedule every plan event, relative to the current sim time.

        Events that share a timestamp apply in plan order (the simulator
        breaks ties by schedule order).
        """
        if self._armed:
            raise FaultError("injector already armed")
        self._armed = True
        base = self.sim.now
        for event in self.plan.events:
            self.sim.schedule_at(base + event.at, self._apply, event)
        return self

    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        detail = event.to_dict()
        detail.pop("at", None)
        kind = detail.pop("kind")
        if isinstance(event, Crash):
            self.cluster.crash(event.pid)
        elif isinstance(event, Recover):
            restart = getattr(self.cluster, "restart", None)
            if restart is None:
                raise FaultError(
                    "this cluster has no membership layer: Recover is not supported"
                )
            restart(event.pid)
        elif isinstance(event, Partition):
            self.cluster.partition(*event.groups)
            self.partitions_active = 1
            detail["active"] = self.partitions_active
        elif isinstance(event, Heal):
            self.cluster.heal()
            self.partitions_active = 0
            detail["active"] = self.partitions_active
        elif isinstance(event, TokenDrop):
            self._arm_token_drop(event)
        elif isinstance(event, LossBurst):
            self._arm_loss_burst(event)
        elif isinstance(event, RackPowerLoss):
            detail["pids"] = self._apply_rack_power_loss(event)
        elif isinstance(event, Pause):
            self.cluster.pause(event.pid)
        elif isinstance(event, Resume):
            self.cluster.resume(event.pid)
        else:
            raise FaultError(f"unknown fault event {event!r}")
        self.applied.append({"t": self.sim.now, "kind": kind, **detail})
        if self.observer is not None:
            self.observer.on_fault(kind, detail=detail, now=self.sim.now)

    # ------------------------------------------------------------------

    def _apply_rack_power_loss(self, event: RackPowerLoss) -> List[int]:
        """Crash every member of the rack; returns the resolved pids."""
        pids = event.pids
        if pids is None:
            racks = getattr(self.cluster.topology, "racks", None)
            if racks is None:
                raise FaultError(
                    "rack_power_loss without explicit pids needs a fabric "
                    "topology with a rack map; pass pids= on star topologies"
                )
            try:
                pids = racks[event.rack]
            except KeyError:
                raise FaultError(
                    f"rack {event.rack} not in the fabric rack map "
                    f"(racks {sorted(racks)})"
                ) from None
        resolved = sorted(pids)
        for pid in resolved:
            self.cluster.crash(pid)
        return resolved

    def _arm_token_drop(self, event: TokenDrop) -> None:
        """Eat the next ``count`` token frames at the switch."""
        state = {"remaining": event.count}
        switch = self.switch

        def drop_token(frame: Frame, dst: int) -> bool:
            if frame.kind is not PortKind.TOKEN or state["remaining"] <= 0:
                return False
            state["remaining"] -= 1
            if state["remaining"] == 0:
                switch.remove_filter(drop_token)
            return True

        switch.add_filter(drop_token)

    def _arm_loss_burst(self, event: LossBurst) -> None:
        """Receiver-side loss at ``rate`` on the targeted hosts, removed
        after ``duration`` seconds of simulated time."""
        topology = self.cluster.topology
        pids = sorted(event.pids) if event.pids is not None else topology.host_ids
        rng = self.rng
        rate = event.rate

        def burst(frame: Frame) -> bool:
            return frame.kind is PortKind.DATA and rng.random() < rate

        hosts = []
        for pid in pids:
            host = topology.host(pid)
            host.add_interceptor(burst)
            hosts.append(host)

        def end_burst() -> None:
            for host in hosts:
                host.remove_interceptor(burst)
            if self.observer is not None:
                self.observer.on_fault(
                    "loss_burst_end",
                    detail={"pids": list(pids), "rate": rate},
                    now=self.sim.now,
                )

        self.sim.schedule(event.duration, end_burst)


def run_plan(
    cluster: Any,
    plan: FaultPlan,
    duration: float,
    seed: int = 0,
    observer: Optional[Any] = None,
) -> FaultInjector:
    """Convenience: arm ``plan`` on ``cluster`` and run ``duration``
    simulated seconds.  Returns the injector (for its ``applied`` log)."""
    injector = FaultInjector(cluster, plan, seed=seed, observer=observer)
    injector.arm()
    cluster.run(duration)
    return injector
