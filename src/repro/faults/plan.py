"""Declarative fault plans.

A :class:`FaultPlan` is a time-ordered schedule of typed fault events
(:mod:`repro.faults.events`).  Plans are validated *before* anything
runs: a plan that recovers a process it never crashed, stacks a second
partition on an active one, or resumes a process that is not paused is a
scenario-authoring bug, and rejecting it up front keeps chaos runs
interpretable.

Plans are plain data — they serialize to JSON (:meth:`FaultPlan.to_json`
/ :meth:`FaultPlan.from_json`) so a scenario can live in a file, and the
:class:`PlanBuilder` DSL makes inline authoring read like a timeline::

    plan = (PlanBuilder()
            .crash(1, at=0.02)
            .partition({0, 2}, {3}, at=0.05)
            .heal(at=0.12)
            .recover(1, at=0.15)
            .build())
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.faults.events import (
    Crash,
    FaultEvent,
    Heal,
    LossBurst,
    Partition,
    Pause,
    RackPowerLoss,
    Recover,
    Resume,
    TokenDrop,
    events_from_dicts,
)
from repro.util.errors import FaultError


class FaultPlan:
    """An immutable, time-sorted schedule of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        # sorted() is stable: events at equal times keep authoring order,
        # which the injector preserves at execution time too.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.at)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.events)!r})"

    @property
    def horizon(self) -> float:
        """When the last scheduled event fires (loss bursts include their
        duration); 0.0 for an empty plan."""
        horizon = 0.0
        for event in self.events:
            end = event.at
            if isinstance(event, LossBurst):
                end += event.duration
            horizon = max(horizon, end)
        return horizon

    def pids(self) -> Set[int]:
        """Every pid the plan touches directly."""
        touched: Set[int] = set()
        for event in self.events:
            pid = getattr(event, "pid", None)
            if pid is not None:
                touched.add(pid)
            if isinstance(event, Partition):
                for group in event.groups:
                    touched |= group
            if isinstance(event, LossBurst) and event.pids is not None:
                touched |= event.pids
            if isinstance(event, RackPowerLoss) and event.pids is not None:
                touched |= event.pids
        return touched

    def crashed_pids(self) -> Set[int]:
        """Pids the plan ever crashes (for EVS-checker waivers)."""
        crashed: Set[int] = set()
        for event in self.events:
            if isinstance(event, Crash):
                crashed.add(event.pid)
            elif isinstance(event, RackPowerLoss) and event.pids is not None:
                crashed |= event.pids
        return crashed

    # -- validation ----------------------------------------------------

    def validate(self, num_hosts: Optional[int] = None) -> "FaultPlan":
        """Check per-event fields plus cross-event ordering invariants.

        Raises :class:`~repro.util.errors.FaultError` on the first
        problem; returns ``self`` so calls chain.
        """
        crashed: Set[int] = set()
        paused: Set[int] = set()
        partitioned = False
        # A rack_power_loss without explicit pids crashes a set only the
        # injector can resolve (it needs the topology's rack map), so the
        # crash/recover bookkeeping below turns best-effort once one is
        # seen: cluster-level crash/restart are idempotent, and rejecting
        # plausible plans would be worse than letting them run.
        rack_wildcard = False
        for event in self.events:
            event.validate()
            if num_hosts is not None:
                for pid in self._event_pids(event):
                    if not 0 <= pid < num_hosts:
                        raise FaultError(
                            f"{event.kind} at {event.at}: pid {pid} out of "
                            f"range for {num_hosts} hosts"
                        )
            if isinstance(event, Crash):
                if event.pid in crashed:
                    raise FaultError(
                        f"crash at {event.at}: pid {event.pid} is already crashed"
                    )
                crashed.add(event.pid)
                paused.discard(event.pid)
            elif isinstance(event, Recover):
                if event.pid not in crashed and not rack_wildcard:
                    raise FaultError(
                        f"recover at {event.at}: pid {event.pid} was never "
                        "crashed (recover-before-crash)"
                    )
                crashed.discard(event.pid)
            elif isinstance(event, RackPowerLoss):
                if event.pids is None:
                    rack_wildcard = True
                else:
                    for pid in sorted(event.pids):
                        if pid in crashed:
                            raise FaultError(
                                f"rack_power_loss at {event.at}: pid {pid} "
                                "is already crashed"
                            )
                        crashed.add(pid)
                        paused.discard(pid)
            elif isinstance(event, Partition):
                if partitioned:
                    raise FaultError(
                        f"partition at {event.at}: a partition is already "
                        "active (heal first; overlapping partitions are ambiguous)"
                    )
                partitioned = True
            elif isinstance(event, Heal):
                partitioned = False
            elif isinstance(event, Pause):
                if event.pid in paused:
                    raise FaultError(
                        f"pause at {event.at}: pid {event.pid} is already paused"
                    )
                if event.pid in crashed:
                    raise FaultError(
                        f"pause at {event.at}: pid {event.pid} is crashed"
                    )
                paused.add(event.pid)
            elif isinstance(event, Resume):
                if event.pid not in paused:
                    raise FaultError(
                        f"resume at {event.at}: pid {event.pid} is not paused"
                    )
                paused.discard(event.pid)
        return self

    @staticmethod
    def _event_pids(event: FaultEvent) -> Set[int]:
        pids: Set[int] = set()
        pid = getattr(event, "pid", None)
        if pid is not None:
            pids.add(pid)
        if isinstance(event, Partition):
            for group in event.groups:
                pids |= group
        if isinstance(event, LossBurst) and event.pids is not None:
            pids |= event.pids
        if isinstance(event, RackPowerLoss) and event.pids is not None:
            pids |= event.pids
        return pids

    # -- serialization -------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, payloads: Iterable[Dict[str, Any]]) -> "FaultPlan":
        return cls(events_from_dicts(payloads))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payloads = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"invalid fault-plan JSON: {exc}") from None
        if not isinstance(payloads, list):
            raise FaultError("fault-plan JSON must be a list of events")
        return cls.from_dicts(payloads)


class PlanBuilder:
    """Fluent builder for :class:`FaultPlan`.

    Each method appends one event and returns the builder; ``build()``
    sorts, validates, and freezes the plan.
    """

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []

    def crash(self, pid: int, at: float) -> "PlanBuilder":
        self._events.append(Crash(at=at, pid=pid))
        return self

    def recover(self, pid: int, at: float) -> "PlanBuilder":
        self._events.append(Recover(at=at, pid=pid))
        return self

    def partition(self, *groups: Iterable[int], at: float) -> "PlanBuilder":
        self._events.append(
            Partition(at=at, groups=tuple(frozenset(group) for group in groups))
        )
        return self

    def heal(self, at: float) -> "PlanBuilder":
        self._events.append(Heal(at=at))
        return self

    def token_drop(self, at: float, count: int = 1) -> "PlanBuilder":
        self._events.append(TokenDrop(at=at, count=count))
        return self

    def loss_burst(
        self,
        at: float,
        duration: float,
        rate: float,
        pids: Optional[Iterable[int]] = None,
    ) -> "PlanBuilder":
        self._events.append(
            LossBurst(
                at=at,
                rate=rate,
                duration=duration,
                pids=None if pids is None else frozenset(pids),
            )
        )
        return self

    def rack_power_loss(
        self,
        rack: int,
        at: float,
        pids: Optional[Iterable[int]] = None,
    ) -> "PlanBuilder":
        self._events.append(
            RackPowerLoss(
                at=at,
                rack=rack,
                pids=None if pids is None else frozenset(pids),
            )
        )
        return self

    def pause(self, pid: int, at: float) -> "PlanBuilder":
        self._events.append(Pause(at=at, pid=pid))
        return self

    def resume(self, pid: int, at: float) -> "PlanBuilder":
        self._events.append(Resume(at=at, pid=pid))
        return self

    def build(self, num_hosts: Optional[int] = None) -> FaultPlan:
        return FaultPlan(self._events).validate(num_hosts=num_hosts)
