"""Named chaos scenarios with machine-checked outcomes.

Each scenario is a reproducible experiment: build a membership cluster,
arm a :class:`~repro.faults.plan.FaultPlan`, drive deterministic client
traffic through the chaos window, then (a) wait for the survivors to
re-converge to one operational ring and (b) run the full EVS checker
over every delivery trace.  The result is a :class:`ScenarioReport`
whose JSON form is byte-identical across runs with the same seed —
chaos runs are diffable artifacts, not flaky demos.

The library maps to the paper's robustness story:

* ``leader-crash`` / ``cascade`` — fail-stop + recovery (§II's failure
  model; the membership algorithm's gather/commit/recovery path).
* ``token-loss`` — lost token frames during the accelerated window,
  the event the token-loss timeout turns into a ring reformation.
* ``partition-heal`` — a symmetric 4/4 split of the 8-server testbed
  and its merge (EVS transitional-configuration machinery).
* ``lossy-flap`` — a flapping lossy link layered over background
  uniform loss, the §IV-A4 regime pushed into burst territory.
* ``gc-stall`` — a process freezes past the token-loss timeout and
  returns: the ring reforms around it, then merges it back.
* ``incast`` / ``mixed-speed`` / ``rack-power-loss`` — leaf–spine
  fabric scenarios (:mod:`repro.net.fabric`): an oversubscribed spine
  trunk under all-to-all load, 1G and 10G racks sharing one ring, and a
  correlated rack failure with staggered recovery.
* ``reorder-storm`` — heavy data-frame reordering
  (:class:`~repro.net.impair.ReorderModel`) layered under token loss.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.messages import DeliveryService
from repro.evs.checker import EvsViolation
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PlanBuilder
from repro.net.fabric import LeafSpineSpec
from repro.net.impair import ImpairmentModel, ReorderModel
from repro.net.loss import LossModel, UniformLoss
from repro.net.params import GIGABIT, TEN_GIGABIT
from repro.obs.observer import MetricsObserver
from repro.sim.build import ClusterBuilder
from repro.util.errors import FaultError

#: Simulated time given to the cluster to boot into one ring before the
#: injector is armed (matches the integration-test bring-up window).
_BOOT = 0.08

#: Convergence polling: run in fixed slices so the check sequence is
#: itself deterministic.
_CONVERGE_SLICE = 0.25
_CONVERGE_SLICES = 12


@dataclass
class ScenarioSpec:
    """Declarative description of one chaos scenario."""

    name: str
    summary: str
    num_hosts: int
    #: Simulated seconds to run after arming the plan (the chaos window).
    duration: float
    #: Build the fault plan; receives the scenario RNG for randomized
    #: variants (the library's plans are fixed; the seed still drives
    #: loss models and burst sampling).
    plan: Callable[[random.Random], FaultPlan]
    #: (time-after-arm, pid, service) triples of client submissions.
    traffic: List[tuple] = field(default_factory=list)
    #: Optional background loss model sharing the scenario RNG.
    loss_model: Optional[Callable[[random.Random], LossModel]] = None
    accelerated: bool = True
    #: Optional leaf–spine fabric in place of the default star switch.
    fabric: Optional[LeafSpineSpec] = None
    #: Optional impairment model factory sharing the scenario RNG
    #: (applied to every host's delivery path).
    impairment: Optional[Callable[[random.Random], ImpairmentModel]] = None


@dataclass
class ScenarioReport:
    """The checked outcome of one scenario run."""

    name: str
    seed: int
    num_hosts: int
    ok: bool
    converged: bool
    violations: List[str]
    events: List[Dict[str, Any]]
    final_rings: Dict[int, List[int]]
    final_states: Dict[int, str]
    deliveries: Dict[int, int]
    submissions: Dict[int, int]
    fault_metrics: Dict[str, int]
    sim_time: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "num_hosts": self.num_hosts,
            "ok": self.ok,
            "converged": self.converged,
            "violations": self.violations,
            "events": self.events,
            "final_rings": {str(pid): ring for pid, ring in self.final_rings.items()},
            "final_states": {str(pid): s for pid, s in self.final_states.items()},
            "deliveries": {str(pid): n for pid, n in self.deliveries.items()},
            "submissions": {str(pid): n for pid, n in self.submissions.items()},
            "fault_metrics": self.fault_metrics,
            "sim_time": round(self.sim_time, 9),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# The scenario library
# ----------------------------------------------------------------------

def _spread_traffic(pids: List[int], start: float, stop: float, per_pid: int) -> List[tuple]:
    """Evenly spaced submissions per pid, alternating agreed/safe."""
    schedule: List[tuple] = []
    step = (stop - start) / max(per_pid, 1)
    for index in range(per_pid):
        when = start + index * step
        service = DeliveryService.SAFE if index % 2 else DeliveryService.AGREED
        for pid in pids:
            schedule.append((when, pid, service))
    return schedule


def _leader_crash(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .crash(0, at=0.02)
        .recover(0, at=0.3)
        .build()
    )


def _token_loss(rng: random.Random) -> FaultPlan:
    # Two token-loss episodes inside the accelerated window: one single
    # drop (recovered by the token-loss timeout) and one double drop.
    return (
        PlanBuilder()
        .token_drop(at=0.02, count=1)
        .token_drop(at=0.12, count=2)
        .build()
    )


def _partition_heal(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .partition({0, 1, 2, 3}, {4, 5, 6, 7}, at=0.03)
        .heal(at=0.35)
        .build()
    )


def _cascade(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .crash(1, at=0.02)
        .crash(2, at=0.1)
        .recover(1, at=0.22)
        .recover(2, at=0.34)
        .build()
    )


def _lossy_flap(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .loss_burst(at=0.02, duration=0.05, rate=0.25, pids={1})
        .loss_burst(at=0.12, duration=0.05, rate=0.25, pids={1})
        .loss_burst(at=0.22, duration=0.05, rate=0.25, pids={1})
        .build()
    )


def _gc_stall(rng: random.Random) -> FaultPlan:
    # The pause (15 ms) comfortably exceeds the 5 ms token-loss timeout:
    # the survivors must evict the stalled node, then merge it back.
    return (
        PlanBuilder()
        .pause(2, at=0.02)
        .resume(2, at=0.035)
        .build()
    )


def _incast(rng: random.Random) -> FaultPlan:
    # The fabric itself is the adversary (a 4:1 oversubscribed trunk
    # under all-to-all traffic); one token loss on top checks that the
    # loss timeout still works while the trunk is congested.
    return PlanBuilder().token_drop(at=0.1, count=1).build()


def _mixed_speed(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .crash(1, at=0.05)
        .recover(1, at=0.3)
        .build()
    )


def _reorder_storm(rng: random.Random) -> FaultPlan:
    return (
        PlanBuilder()
        .token_drop(at=0.08, count=1)
        .token_drop(at=0.2, count=1)
        .build()
    )


def _rack_loss(rng: random.Random) -> FaultPlan:
    # Rack 1 of the 2x4 fabric loses power (pids 4-7 fail together),
    # then the members return one by one and must all merge back.
    return (
        PlanBuilder()
        .rack_power_loss(rack=1, at=0.03, pids={4, 5, 6, 7})
        .recover(4, at=0.3)
        .recover(5, at=0.33)
        .recover(6, at=0.36)
        .recover(7, at=0.39)
        .build()
    )


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="leader-crash",
            summary="crash the ring leader mid-round, recover it, merge back",
            num_hosts=4,
            duration=0.6,
            plan=_leader_crash,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.2, per_pid=4),
        ),
        ScenarioSpec(
            name="token-loss",
            summary="drop token frames during the accelerated window",
            num_hosts=4,
            duration=0.4,
            plan=_token_loss,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.25, per_pid=4),
        ),
        ScenarioSpec(
            name="partition-heal",
            summary="symmetric 4/4 partition of the 8-server testbed + heal",
            num_hosts=8,
            duration=0.8,
            plan=_partition_heal,
            traffic=_spread_traffic(list(range(8)), 0.005, 0.5, per_pid=3),
        ),
        ScenarioSpec(
            name="cascade",
            summary="cascading crash-recover of two processes",
            num_hosts=5,
            duration=0.7,
            plan=_cascade,
            traffic=_spread_traffic([0, 1, 2, 3, 4], 0.005, 0.4, per_pid=3),
        ),
        ScenarioSpec(
            name="lossy-flap",
            summary="flapping lossy link over background uniform loss",
            num_hosts=4,
            duration=0.6,
            plan=_lossy_flap,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.4, per_pid=4),
            loss_model=lambda rng: UniformLoss(0.01, rng=rng),
        ),
        ScenarioSpec(
            name="gc-stall",
            summary="GC-stall one process past the token-loss timeout",
            num_hosts=4,
            duration=0.6,
            plan=_gc_stall,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.3, per_pid=4),
        ),
        ScenarioSpec(
            name="incast",
            summary="all-to-all burst into a 4:1 oversubscribed spine trunk",
            num_hosts=8,
            duration=0.6,
            plan=_incast,
            traffic=_spread_traffic(list(range(8)), 0.005, 0.4, per_pid=6),
            fabric=LeafSpineSpec(racks=2, hosts_per_rack=4, oversubscription=4.0),
        ),
        ScenarioSpec(
            name="mixed-speed",
            summary="1G and 10G racks on one ring, crash-recover across them",
            num_hosts=4,
            duration=0.6,
            plan=_mixed_speed,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.4, per_pid=4),
            fabric=LeafSpineSpec(
                racks=2,
                hosts_per_rack=2,
                rack_params=(GIGABIT, TEN_GIGABIT),
                rack_trunk_extra_propagation=(0.0, 2e-6),
            ),
        ),
        ScenarioSpec(
            name="reorder-storm",
            summary="heavy data-frame reordering plus token loss",
            num_hosts=4,
            duration=0.5,
            plan=_reorder_storm,
            traffic=_spread_traffic([0, 1, 2, 3], 0.005, 0.3, per_pid=4),
            impairment=lambda rng: ReorderModel(
                rate=0.12, max_displacement=3, rng=rng
            ),
        ),
        ScenarioSpec(
            name="rack-power-loss",
            summary="rack PDU failure: 4 co-located members crash at once",
            num_hosts=8,
            duration=0.8,
            plan=_rack_loss,
            traffic=_spread_traffic(list(range(8)), 0.005, 0.5, per_pid=3),
            fabric=LeafSpineSpec(racks=2, hosts_per_rack=4, oversubscription=2.0),
        ),
    )
}


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_scenario(name: str, seed: int = 0) -> ScenarioReport:
    """Run one named scenario and return its checked report.

    Two calls with the same ``name`` and ``seed`` return reports whose
    ``to_json()`` output is byte-identical.
    """
    spec = SCENARIOS.get(name)
    if spec is None:
        raise FaultError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    rng = random.Random(seed)
    observer = MetricsObserver()
    builder = (
        ClusterBuilder()
        .hosts(spec.num_hosts)
        .membership()
        .accelerated(spec.accelerated)
        .observe(observer)
    )
    if spec.fabric is not None:
        builder.fabric(spec.fabric)
    # rng draw order: loss model first, then impairment — existing
    # scenarios (no impairment) keep their historical rng streams.
    if spec.loss_model is not None:
        builder.loss(spec.loss_model(rng))
    if spec.impairment is not None:
        builder.impair(spec.impairment(rng))
    cluster = builder.build_membership()
    cluster.start()
    cluster.run(_BOOT)

    injector = FaultInjector(cluster, spec.plan(rng), rng=rng, observer=observer)
    injector.arm()
    base = cluster.sim.now
    for when, pid, service in spec.traffic:
        cluster.sim.schedule_at(base + when, _submit, cluster, pid, service)
    cluster.run(spec.duration)

    # Quiesce: remove any leftover partition and let membership settle.
    cluster.heal()
    converged = _wait_converged(cluster)

    violations: List[str] = []
    crashed_waiver = injector.plan.crashed_pids()
    try:
        cluster.checker.check(crashed=crashed_waiver)
    except EvsViolation as violation:
        violations.append(str(violation))
    if not converged:
        violations.append(
            f"live nodes failed to reconverge: rings={cluster.rings()}"
        )

    snapshot = observer.snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    fault_metrics = {
        name: int(value)
        for name, value in sorted(counters.items())
        if name.startswith("fault.")
    }
    fault_metrics.update(
        {
            name: int(value)
            for name, value in sorted(gauges.items())
            if name.startswith("fault.")
        }
    )
    # Fabric congestion counters (deterministic, so they belong in the
    # byte-identical report); only present on multi-switch topologies,
    # leaving star-scenario reports unchanged.
    switch = cluster.topology.switch
    if hasattr(switch, "frames_transited"):
        fault_metrics["fabric.frames_transited"] = switch.frames_transited
        fault_metrics["fabric.peak_trunk_queue_bytes"] = (
            switch.peak_trunk_queue_bytes
        )
        fault_metrics["fabric.total_drops"] = switch.total_drops

    return ScenarioReport(
        name=spec.name,
        seed=seed,
        num_hosts=spec.num_hosts,
        ok=not violations,
        converged=converged,
        violations=violations,
        events=injector.applied,
        final_rings={pid: list(ring) for pid, ring in sorted(cluster.rings().items())},
        final_states=dict(sorted(cluster.states().items())),
        deliveries={
            pid: len(host.delivered) for pid, host in sorted(cluster.hosts.items())
        },
        submissions=dict(sorted(cluster.checker.submissions.items())),
        fault_metrics=fault_metrics,
        sim_time=cluster.sim.now,
    )


def run_all(seed: int = 0) -> List[ScenarioReport]:
    """Run the whole library (CI's chaos-smoke job)."""
    return [run_scenario(name, seed=seed) for name in sorted(SCENARIOS)]


def _submit(cluster: MembershipCluster, pid: int, service: DeliveryService) -> None:
    host = cluster.hosts.get(pid)
    if host is None or host.host.crashed or host._paused:
        return  # the client's daemon is down (or frozen): nothing to hand off
    host.submit(payload_size=64, service=service)


def _wait_converged(cluster: MembershipCluster) -> bool:
    """Deterministically poll until live nodes share one operational ring."""
    for _ in range(_CONVERGE_SLICES):
        live = cluster.live_pids()
        expected = tuple(live)
        rings = set(cluster.rings().values())
        states = set(cluster.states().values())
        if rings == {expected} and states == {"operational"}:
            return True
        cluster.run(_CONVERGE_SLICE)
    live = cluster.live_pids()
    return set(cluster.rings().values()) == {tuple(live)} and set(
        cluster.states().values()
    ) == {"operational"}
