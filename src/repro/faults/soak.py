"""Randomized soak testing for the membership/recovery protocol.

A soak run generates N seeded random fault plans
(:mod:`repro.faults.generator`), drives each through a live
:class:`~repro.sim.membership_driver.MembershipCluster` with traffic
spread over the chaos window, and checks every delivery trace against
the full EVS property suite.  The output is a JSON
:class:`SoakReport`; every failing case additionally produces a
:class:`Counterexample` artifact — a *minimized*, replayable fault plan
plus the exact seed — so a violation found at 3am by the nightly CI job
reproduces with one command::

    python -m repro soak --replay counterexample_17.json

Everything is deterministic: case ``index`` of a soak with seed ``S``
always generates the same plan and the same injector randomness, on any
machine.  Minimization is greedy single-step deletion over the abstract
pre-validation steps (the same shrink direction hypothesis uses), so the
artifact is usually a small handful of events rather than the full
random schedule.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.messages import DeliveryService
from repro.evs.checker import EvsViolation
from repro.faults.generator import (
    ACTIONS,
    FABRIC_ACTIONS,
    Step,
    build_plan,
    random_steps,
    steps_from_lists,
    steps_to_lists,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.fabric import LeafSpineSpec
from repro.net.impair import impairment_from_name
from repro.sim.build import ClusterBuilder
from repro.sim.membership_driver import MembershipCluster

#: Spread between the top-level soak seed and per-case seeds; a large
#: prime so nearby soak seeds do not share case streams.
_SEED_STRIDE = 1_000_003

#: Deterministic traffic injected while the chaos window is open.
_TRAFFIC_MESSAGES = 6
_TRAFFIC_PAYLOAD = 64


def case_seed(seed: int, index: int) -> int:
    """The derived seed for case ``index`` of a soak with ``seed``."""
    return seed * _SEED_STRIDE + index


def drive_plan(
    plan: FaultPlan,
    num_hosts: int,
    seed: int,
    fabric_racks: int = 0,
    impair: Optional[str] = None,
) -> MembershipCluster:
    """Run ``plan`` against a fresh cluster and return it (traces full).

    This is the canonical soak drive, shared with the hypothesis suite in
    ``tests/property/test_fault_schedules.py``: boot, arm the injector,
    submit deterministic traffic spread over the chaos window (alternating
    Safe/Agreed from rotating senders), then quiesce — heal, resume, and
    settle — so the checker sees completed recoveries, not mid-flight
    state.

    ``fabric_racks > 0`` builds the cluster on a leaf–spine fabric
    (2:1 oversubscribed, ``num_hosts`` split evenly across the racks);
    ``impair`` names an impairment preset
    (:func:`repro.net.impair.impairment_from_name`) seeded from the
    case seed.  Both default off, keeping the historical drive.
    """
    builder = ClusterBuilder().hosts(num_hosts).membership()
    if fabric_racks:
        builder.fabric(
            LeafSpineSpec(
                racks=fabric_racks,
                hosts_per_rack=num_hosts // fabric_racks,
                oversubscription=2.0,
            )
        )
    if impair:
        builder.impair(impairment_from_name(impair, seed=seed))
    cluster = builder.build_membership()
    cluster.start()
    cluster.run(0.08)
    injector = FaultInjector(cluster, plan, rng=random.Random(seed))
    injector.arm()
    base = cluster.sim.now
    horizon = plan.horizon + 0.05
    for index in range(_TRAFFIC_MESSAGES):
        when = base + (index + 1) * horizon / (_TRAFFIC_MESSAGES + 1)
        pid = index % num_hosts
        service = DeliveryService.SAFE if index % 2 else DeliveryService.AGREED

        def submit(pid=pid, service=service):
            host = cluster.hosts[pid]
            if not host.host.crashed and not host._paused:
                host.submit(payload_size=_TRAFFIC_PAYLOAD, service=service)

        cluster.sim.schedule_at(when, submit)
    cluster.run(horizon + 0.1)
    # Quiesce: heal, resume anything still paused, settle.
    cluster.heal()
    for host in cluster.hosts.values():
        host.resume()
    cluster.run(1.5)
    return cluster


def check_plan(
    plan: FaultPlan,
    num_hosts: int,
    seed: int,
    fabric_racks: int = 0,
    impair: Optional[str] = None,
) -> Optional[str]:
    """Drive ``plan`` and EVS-check the traces.

    Returns ``None`` when every guarantee holds, or the violation message
    when one does not.  Crashed pids are waived exactly as the property
    suite waives them.
    """
    cluster = drive_plan(
        plan,
        num_hosts=num_hosts,
        seed=seed,
        fabric_racks=fabric_racks,
        impair=impair,
    )
    try:
        cluster.checker.check(crashed=plan.crashed_pids())
    except EvsViolation as violation:
        return str(violation)
    return None


def greedy_minimize(items: List, still_fails: Callable[[List], bool]) -> List:
    """Greedy single-deletion shrinking of a failing item sequence.

    Repeatedly deletes single items as long as ``still_fails`` holds for
    the shortened sequence (the same shrink direction hypothesis uses).
    The result is a local minimum: removing any one remaining item makes
    the failure disappear.  Shared by the soak minimizer and the
    conformance explorer (:mod:`repro.conformance.explorer`), which
    plug in their respective failure predicates.
    """
    current = list(items)
    shrunk = True
    while shrunk:
        shrunk = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            if still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current


def minimize_steps(
    steps: List[Step],
    num_hosts: int,
    seed: int,
    fabric_racks: int = 0,
    impair: Optional[str] = None,
) -> List[Step]:
    """Greedily shrink a failing step sequence.

    Because :func:`build_plan` folds any step sequence through the
    validity state machine, every candidate subsequence yields a valid
    plan — no repair pass needed.
    """

    def still_fails(candidate: List[Step]) -> bool:
        plan = build_plan(candidate, num_hosts, racks=fabric_racks)
        return (
            check_plan(
                plan,
                num_hosts=num_hosts,
                seed=seed,
                fabric_racks=fabric_racks,
                impair=impair,
            )
            is not None
        )

    return greedy_minimize(steps, still_fails)


@dataclass
class Counterexample:
    """A replayable failing soak case.

    ``steps``/``minimized_steps`` are the abstract pre-validation step
    triples; ``plan`` is the minimized plan's event list (what actually
    replays).  ``to_json``/``from_json`` round-trip the artifact file.
    """

    soak_seed: int
    index: int
    seed: int
    num_hosts: int
    violation: str
    steps: List[Step]
    minimized_steps: List[Step]
    #: The soak's topology dimension; needed for a faithful replay.
    fabric_racks: int = 0
    impair: Optional[str] = None

    @property
    def plan(self) -> FaultPlan:
        return build_plan(
            self.minimized_steps, self.num_hosts, racks=self.fabric_racks
        )

    def replay(self) -> Optional[str]:
        """Re-run the minimized plan; returns the violation (or ``None``
        if the failure no longer reproduces)."""
        return check_plan(
            self.plan,
            num_hosts=self.num_hosts,
            seed=self.seed,
            fabric_racks=self.fabric_racks,
            impair=self.impair,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "soak_seed": self.soak_seed,
            "index": self.index,
            "seed": self.seed,
            "num_hosts": self.num_hosts,
            "fabric_racks": self.fabric_racks,
            "impair": self.impair,
            "violation": self.violation,
            "steps": steps_to_lists(self.steps),
            "minimized_steps": steps_to_lists(self.minimized_steps),
            "plan": self.plan.to_dicts(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Counterexample":
        impair = payload.get("impair")
        return cls(
            soak_seed=int(payload["soak_seed"]),
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            num_hosts=int(payload["num_hosts"]),
            violation=str(payload["violation"]),
            steps=steps_from_lists(payload["steps"]),
            minimized_steps=steps_from_lists(payload["minimized_steps"]),
            fabric_racks=int(payload.get("fabric_racks", 0)),
            impair=None if impair is None else str(impair),
        )

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        return cls.from_dict(json.loads(text))


@dataclass
class SoakCase:
    """One plan's outcome inside a soak report."""

    index: int
    seed: int
    events: int
    violation: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "index": self.index,
            "seed": self.seed,
            "events": self.events,
        }
        if self.violation is not None:
            payload["violation"] = self.violation
        return payload


@dataclass
class SoakReport:
    """Summary of a whole soak run, JSON-serializable for CI artifacts."""

    seed: int
    num_hosts: int
    plans: int
    max_steps: int
    fabric_racks: int = 0
    impair: Optional[str] = None
    cases: List[SoakCase] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return len(self.counterexamples)

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "num_hosts": self.num_hosts,
            "plans": self.plans,
            "max_steps": self.max_steps,
            "fabric_racks": self.fabric_racks,
            "impair": self.impair,
            "failures": self.failures,
            "passed": self.passed,
            "cases": [case.to_dict() for case in self.cases],
            "counterexamples": [ce.to_dict() for ce in self.counterexamples],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def run_soak(
    plans: int,
    num_hosts: int,
    seed: int,
    max_steps: int = 8,
    minimize: bool = True,
    fabric_racks: int = 0,
    impair: Optional[str] = None,
    progress: Optional[Callable[[SoakCase], None]] = None,
) -> SoakReport:
    """Run ``plans`` seeded random fault plans and EVS-check each one.

    Every case derives its own seed from ``(seed, index)`` via
    :func:`case_seed`, used both to generate the plan and to drive the
    injector, so any case replays standalone.  Failing cases are
    minimized (unless ``minimize=False``) and recorded as
    :class:`Counterexample` artifacts on the report.  ``progress`` is
    called after each case (CLI progress lines).

    ``fabric_racks > 0`` soaks on a leaf–spine fabric and widens the
    action vocabulary with correlated ``rack_power_loss`` events;
    ``impair`` layers a named impairment preset under every plan.
    """
    report = SoakReport(
        seed=seed,
        num_hosts=num_hosts,
        plans=plans,
        max_steps=max_steps,
        fabric_racks=fabric_racks,
        impair=impair,
    )
    actions = FABRIC_ACTIONS if fabric_racks else ACTIONS
    for index in range(plans):
        derived = case_seed(seed, index)
        rng = random.Random(derived)
        steps = random_steps(rng, num_hosts, max_steps=max_steps, actions=actions)
        plan = build_plan(steps, num_hosts, racks=fabric_racks)
        violation = check_plan(
            plan,
            num_hosts=num_hosts,
            seed=derived,
            fabric_racks=fabric_racks,
            impair=impair,
        )
        case = SoakCase(
            index=index, seed=derived, events=len(plan), violation=violation
        )
        report.cases.append(case)
        if violation is not None:
            minimized = (
                minimize_steps(
                    steps,
                    num_hosts=num_hosts,
                    seed=derived,
                    fabric_racks=fabric_racks,
                    impair=impair,
                )
                if minimize
                else list(steps)
            )
            report.counterexamples.append(
                Counterexample(
                    soak_seed=seed,
                    index=index,
                    seed=derived,
                    num_hosts=num_hosts,
                    violation=violation,
                    steps=list(steps),
                    minimized_steps=minimized,
                    fabric_racks=fabric_racks,
                    impair=impair,
                )
            )
        if progress is not None:
            progress(case)
    return report
