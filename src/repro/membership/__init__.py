"""Totem-style membership algorithm (paper §II / §III).

The Accelerated Ring protocol "directly uses the membership algorithm of
Spread, which is based on the Totem membership algorithm"; the ordering
protocol assumes membership has been established and handles only the
normal case.  This package supplies that substrate: failure detection via
token-loss timeout, a Gather phase that reaches consensus on the set of
connected participants via join messages, a Commit phase that circulates
a commit token collecting each member's old-ring state, and a Recovery
phase that exchanges messages from old rings so that Extended Virtual
Synchrony delivery guarantees hold across configuration changes
(crashes, partitions, and merges).

The recovery exchange uses direct flooding with per-old-ring status
gossip instead of Totem's token-driven recovery; DESIGN.md documents the
substitution (the delivered guarantees — and the EVS checker that
verifies them — are the same).
"""

from repro.membership.params import MembershipTimeouts
from repro.membership.messages import (
    JoinMessage,
    CommitToken,
    MemberInfo,
    RecoveredMessage,
    RecoveryStatus,
)
from repro.membership.effects import (
    SendControl,
    SetTimer,
    CancelTimer,
    DeliverMessage,
    DeliverConfiguration,
)
from repro.membership.ring_id import encode_ring_id, decode_ring_id
from repro.membership.controller import MembershipController, MemberState

__all__ = [
    "MembershipTimeouts",
    "JoinMessage",
    "CommitToken",
    "MemberInfo",
    "RecoveredMessage",
    "RecoveryStatus",
    "SendControl",
    "SetTimer",
    "CancelTimer",
    "DeliverMessage",
    "DeliverConfiguration",
    "encode_ring_id",
    "decode_ring_id",
    "MembershipController",
    "MemberState",
]
