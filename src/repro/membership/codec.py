"""Binary codecs for membership control messages.

Extends the core codec's type space (data=1, token=2) with join=3,
commit=4, recovered=5, status=6, beacon=7.  :func:`decode_any` decodes
every wire message type used by the runtime.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core import codec as core_codec
from repro.core.codec import MAGIC, TYPE_DATA, TYPE_TOKEN
from repro.core.messages import DataMessage
from repro.core.token import RegularToken
from repro.membership.messages import (
    BeaconMessage,
    CommitToken,
    JoinMessage,
    MemberInfo,
    RecoveredMessage,
    RecoveryStatus,
)
from repro.util.errors import CodecError

TYPE_JOIN = 3
TYPE_COMMIT = 4
TYPE_RECOVERED = 5
TYPE_STATUS = 6
TYPE_BEACON = 7

# magic, type, sender, ring_seq, n_proc, n_fail
_JOIN_HEADER = struct.Struct("!BBIQII")
# magic, type, ring_id, rotation, n_members, n_infos
_COMMIT_HEADER = struct.Struct("!BBQIII")
# per info: pid, old_ring_id, old_aru, high_seq, last_delivered
_COMMIT_INFO = struct.Struct("!IQQQQ")
# magic, type, old_ring_id, inner_length
_RECOVERED_HEADER = struct.Struct("!BBQI")
# magic, type, sender, new_ring_id, old_ring_id, complete, n_have
_STATUS_HEADER = struct.Struct("!BBIQQBI")
# magic, type, sender, ring_id
_BEACON_HEADER = struct.Struct("!BBIQ")


def encode_join(message: JoinMessage) -> bytes:
    proc = sorted(message.proc_set)
    fail = sorted(message.fail_set)
    header = _JOIN_HEADER.pack(
        MAGIC, TYPE_JOIN, message.sender, message.ring_seq, len(proc), len(fail)
    )
    body = struct.pack(f"!{len(proc) + len(fail)}I", *(proc + fail))
    return header + body


def _decode_join(data: bytes) -> JoinMessage:
    _m, _t, sender, ring_seq, n_proc, n_fail = _JOIN_HEADER.unpack_from(data)
    values = struct.unpack_from(f"!{n_proc + n_fail}I", data, _JOIN_HEADER.size)
    return JoinMessage(
        sender=sender,
        proc_set=frozenset(values[:n_proc]),
        fail_set=frozenset(values[n_proc:]),
        ring_seq=ring_seq,
    )


def encode_commit(token: CommitToken) -> bytes:
    header = _COMMIT_HEADER.pack(
        MAGIC,
        TYPE_COMMIT,
        token.ring_id,
        token.rotation,
        len(token.members),
        len(token.infos),
    )
    members = struct.pack(f"!{len(token.members)}I", *token.members)
    infos = b"".join(
        _COMMIT_INFO.pack(
            pid, info.old_ring_id, info.old_aru, info.high_seq, info.last_delivered
        )
        for pid, info in sorted(token.infos.items())
    )
    return header + members + infos


def _decode_commit(data: bytes) -> CommitToken:
    _m, _t, ring_id, rotation, n_members, n_infos = _COMMIT_HEADER.unpack_from(data)
    offset = _COMMIT_HEADER.size
    members = struct.unpack_from(f"!{n_members}I", data, offset)
    offset += 4 * n_members
    infos = {}
    for _ in range(n_infos):
        pid, old_ring, old_aru, high_seq, last_delivered = _COMMIT_INFO.unpack_from(
            data, offset
        )
        offset += _COMMIT_INFO.size
        infos[pid] = MemberInfo(
            old_ring_id=old_ring,
            old_aru=old_aru,
            high_seq=high_seq,
            last_delivered=last_delivered,
        )
    return CommitToken(ring_id=ring_id, members=tuple(members), infos=infos, rotation=rotation)


def encode_recovered(message: RecoveredMessage) -> bytes:
    inner = core_codec.encode_data(message.message)
    header = _RECOVERED_HEADER.pack(MAGIC, TYPE_RECOVERED, message.old_ring_id, len(inner))
    return header + inner


def _decode_recovered(data: bytes) -> RecoveredMessage:
    _m, _t, old_ring_id, inner_len = _RECOVERED_HEADER.unpack_from(data)
    inner = data[_RECOVERED_HEADER.size : _RECOVERED_HEADER.size + inner_len]
    if len(inner) != inner_len:
        raise CodecError("truncated recovered message")
    decoded = core_codec.decode(inner)
    if not isinstance(decoded, DataMessage):
        raise CodecError("recovered message does not wrap a data message")
    return RecoveredMessage(old_ring_id=old_ring_id, message=decoded)


def encode_status(status: RecoveryStatus) -> bytes:
    header = _STATUS_HEADER.pack(
        MAGIC,
        TYPE_STATUS,
        status.sender,
        status.new_ring_id,
        status.old_ring_id,
        1 if status.complete else 0,
        len(status.have),
    )
    body = struct.pack(f"!{len(status.have)}Q", *status.have) if status.have else b""
    return header + body


def _decode_status(data: bytes) -> RecoveryStatus:
    _m, _t, sender, new_ring, old_ring, complete, n_have = _STATUS_HEADER.unpack_from(data)
    have = struct.unpack_from(f"!{n_have}Q", data, _STATUS_HEADER.size)
    return RecoveryStatus(
        sender=sender,
        new_ring_id=new_ring,
        old_ring_id=old_ring,
        have=tuple(have),
        complete=bool(complete),
    )


def encode_beacon(beacon: BeaconMessage) -> bytes:
    return _BEACON_HEADER.pack(MAGIC, TYPE_BEACON, beacon.sender, beacon.ring_id)


def _decode_beacon(data: bytes) -> BeaconMessage:
    _m, _t, sender, ring_id = _BEACON_HEADER.unpack_from(data)
    return BeaconMessage(sender=sender, ring_id=ring_id)


def encode_any(message: Any) -> bytes:
    """Encode any wire message (core or membership)."""
    if isinstance(message, (DataMessage, RegularToken)):
        return core_codec.encode(message)
    if isinstance(message, JoinMessage):
        return encode_join(message)
    if isinstance(message, CommitToken):
        return encode_commit(message)
    if isinstance(message, RecoveredMessage):
        return encode_recovered(message)
    if isinstance(message, RecoveryStatus):
        return encode_status(message)
    if isinstance(message, BeaconMessage):
        return encode_beacon(message)
    raise CodecError(f"cannot encode {type(message).__name__}")


def decode_any(data: bytes) -> Any:
    """Decode any wire message (core or membership)."""
    if len(data) < 2:
        raise CodecError(f"datagram too short: {len(data)} bytes")
    if data[0] != MAGIC:
        raise CodecError(f"bad magic byte {data[0]:#x}")
    msg_type = data[1]
    if msg_type in (TYPE_DATA, TYPE_TOKEN):
        return core_codec.decode(data)
    if msg_type == TYPE_JOIN:
        return _decode_join(data)
    if msg_type == TYPE_COMMIT:
        return _decode_commit(data)
    if msg_type == TYPE_RECOVERED:
        return _decode_recovered(data)
    if msg_type == TYPE_STATUS:
        return _decode_status(data)
    if msg_type == TYPE_BEACON:
        return _decode_beacon(data)
    raise CodecError(f"unknown message type {msg_type}")
