"""The membership state machine: Operational / Gather / Commit / Recover.

The controller wraps an ordering participant (accelerated or original)
and supplies everything the paper's §III defers to the membership
algorithm: failure detection (token-loss timeout), consensus on the new
membership (join messages), state exchange (commit token), message
recovery across configuration changes, and delivery of transitional and
regular configurations per Extended Virtual Synchrony.

Like the ordering engines, the controller is sans-io: it consumes
messages and timer fires, and emits effects (including the core ordering
effects, which pass through).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.core.config import ProtocolConfig
from repro.core.events import Deliver, DeliverBatch, Effect, SendToken, Stable
from repro.core.messages import DataMessage, DeliveryService
from repro.core.original import OriginalRingParticipant
from repro.core.participant import AcceleratedRingParticipant
from repro.core.token import RegularToken, initial_token
from repro.evs.configuration import Configuration
from repro.membership.effects import (
    CancelTimer,
    DeliverConfiguration,
    DeliverMessage,
    DeliverMessageBatch,
    SendControl,
    SetTimer,
)
from repro.membership.messages import (
    BeaconMessage,
    CommitToken,
    JoinMessage,
    MemberInfo,
    RecoveredMessage,
    RecoveryStatus,
)
from repro.membership.params import MembershipTimeouts
from repro.membership.ring_id import (
    decode_ring_id,
    encode_ring_id,
    encode_transitional_id,
)

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

TIMER_TOKEN_LOSS = "token_loss"
TIMER_JOIN = "join"
TIMER_CONSENSUS = "consensus"
TIMER_COMMIT = "commit"
TIMER_RECOVERY_STATUS = "recovery_status"
TIMER_RECOVERY = "recovery"
TIMER_BEACON = "beacon"
TIMER_SETTLE = "settle"
TIMER_GATHER_RESTART = "gather_restart"


class MemberState(Enum):
    OPERATIONAL = "operational"
    GATHER = "gather"
    COMMIT = "commit"
    RECOVER = "recover"


@dataclass
class _RecoveryState:
    """Per-view-change recovery bookkeeping."""

    new_ring_id: int
    members: Tuple[int, ...]
    infos: Dict[int, MemberInfo]
    my_old_ring: int
    old_members: Tuple[int, ...]  # members of my old ring present in the new ring
    low: int
    high: int
    #: Highest old-ring seq any old-ring survivor already delivered to its
    #: application.  All survivors must deliver up to here in the old
    #: *regular* configuration (even Safe messages: a survivor's delivery
    #: is proof that stability was established in the old ring) so the
    #: delivered set of the closed ring agrees across the transitional
    #: configuration — the EVS virtual-synchrony property.
    deliver_high: int = 0
    my_have: Set[int] = field(default_factory=set)
    peer_have: Dict[int, Set[int]] = field(default_factory=dict)
    complete_peers: Set[int] = field(default_factory=set)
    done: bool = False
    #: Self-healing bookkeeping: which retry round this recovery is on
    #: (0 = the initial attempt), and the round at which each old-ring
    #: peer last gossiped a status (for liveness suspicion).
    attempt: int = 0
    status_attempt: Dict[int, int] = field(default_factory=dict)
    suspects: Set[int] = field(default_factory=set)

    def available(self) -> Set[int]:
        union = set(self.my_have)
        for have in self.peer_have.values():
            union |= have
        return union

    def needed(self) -> Set[int]:
        return self.available() - self.my_have


class MembershipController:
    """Drives one participant through membership changes.

    Args:
        pid: this participant's id.
        accelerated: run the Accelerated Ring or the original protocol
            inside each installed ring.
        protocol_config: windows/priority configuration for the ordering
            engine installed in each ring.
        timeouts: membership timer intervals.
        observer: optional :class:`~repro.obs.observer.ProtocolObserver`;
            receives membership events here and is handed down to every
            ordering engine the controller installs.
        clock: optional zero-argument callable for observer timestamps,
            in the hosting layer's clock domain.
    """

    def __init__(
        self,
        pid: int,
        accelerated: bool = True,
        protocol_config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        initial_ring_seq: int = 0,
        observer: Optional["ProtocolObserver"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.pid = pid
        self.accelerated = accelerated
        self.protocol_config = (protocol_config or ProtocolConfig()).validate()
        self.timeouts = (timeouts or MembershipTimeouts()).validate()
        self.observer = observer
        self.clock = clock

        self.state = MemberState.GATHER
        self.ordering: Optional[AcceleratedRingParticipant] = None
        self.ring_config: Optional[Configuration] = None
        #: Highest ring sequence number ever observed.  A recovering
        #: process must restart from its pre-crash value (Totem keeps this
        #: on stable storage) so it can never reuse a ring id it has
        #: already been the representative of.
        self.highest_ring_seq = initial_ring_seq

        self._proc_set: Set[int] = {pid}
        self._fail_set: Set[int] = set()
        self._joins: Dict[int, Tuple[frozenset, frozenset]] = {}
        self._settle_armed = False
        self._consensus_strikes = 0
        self._expected_members: Optional[Tuple[int, ...]] = None
        self._rec: Optional[_RecoveryState] = None
        self._final_recovery: Optional[_RecoveryState] = None
        self._old_buffer = None  # previous ring's MessageBuffer, kept to help stragglers
        #: Straggler-help damping (see _on_status): when the current ring
        #: was installed, and when each peer was last sent a help reply.
        self._installed_at: Optional[float] = None
        self._help_sent: Dict[int, float] = {}
        self._past_rings: Set[int] = set()
        #: Ring ids whose recovery this controller has ever entered.  A
        #: commit token for one of these is a stale echo: ring ids are
        #: never reused (the ring sequence number is monotonic per
        #: representative), so accepting the echo would re-run recovery
        #: for a ring we already installed or abandoned — re-delivering
        #: its configurations and churning forever.  Bounded by the
        #: number of view changes, like ``_past_rings``.
        self._attempted_rings: Set[int] = set()
        self._stash: List[object] = []
        self._pre_ring_pending: Deque[Tuple[bytes, DeliveryService, Optional[float], Optional[int]]] = deque()
        # Deterministic per-pid jitter for the gather-phase timers.
        # Without it, symmetric standoffs (mutual fail verdicts after a
        # recovery) can phase-lock: every node restarts its gather in
        # lockstep and is reinfected by a peer whose own restart never
        # overlaps.  Real deployments get this jitter for free from OS
        # scheduling noise.
        self._rng = random.Random(pid * 7919 + 13)

        # Statistics.
        self.view_changes = 0
        self.joins_sent = 0
        self.recoveries_completed = 0
        self.recovery_retries = 0
        self.recovery_aborts = 0
        self.token_losses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def ring_id(self) -> Optional[int]:
        return self.ring_config.config_id if self.ring_config else None

    @property
    def members(self) -> Tuple[int, ...]:
        return self.ring_config.sorted_members() if self.ring_config else ()

    def _jittered(self, delay: float) -> float:
        """Gather-phase timers get +/-25% deterministic jitter (see __init__)."""
        return delay * self._rng.uniform(0.75, 1.25)

    def _now(self) -> Optional[float]:
        return self.clock() if self.clock is not None else None

    def _set_state(self, new_state: MemberState) -> None:
        """Transition the membership state, notifying the observer.

        Same-state transitions (e.g. a gather restart) are reported too:
        they mark real protocol events, not bookkeeping noise.
        """
        old_state = self.state
        self.state = new_state
        if self.observer is not None:
            self.observer.on_membership_event(
                self.pid,
                "state_change",
                detail={"from": old_state.value, "to": new_state.value},
                now=self._now(),
            )

    def start(self) -> List[Effect]:
        """Begin membership: gather a first ring."""
        effects: List[Effect] = []
        self._enter_gather(effects)
        return effects

    def submit(
        self,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
        timestamp: Optional[float] = None,
        payload_size: Optional[int] = None,
    ) -> None:
        """Queue an application message; it survives view changes until
        it is eventually ordered in some ring."""
        if self.ordering is not None:
            self.ordering.submit(payload, service, timestamp, payload_size)
        else:
            self._pre_ring_pending.append((payload, service, timestamp, payload_size))

    def on_message(self, message: object) -> List[Effect]:
        """Dispatch one received message (any protocol or control type)."""
        effects: List[Effect] = []
        if isinstance(message, RegularToken):
            self._on_regular_token(message, effects)
        elif isinstance(message, DataMessage):
            self._on_data(message, effects)
        elif isinstance(message, JoinMessage):
            self._on_join(message, effects)
        elif isinstance(message, CommitToken):
            self._on_commit_token(message, effects)
        elif isinstance(message, RecoveredMessage):
            self._on_recovered(message, effects)
        elif isinstance(message, RecoveryStatus):
            self._on_status(message, effects)
        elif isinstance(message, BeaconMessage):
            self._on_beacon(message, effects)
        else:
            raise TypeError(f"unknown message type {type(message).__name__}")
        return effects

    def on_timer(self, name: str) -> List[Effect]:
        """Handle a timer the controller previously armed via SetTimer."""
        effects: List[Effect] = []
        if name == TIMER_TOKEN_LOSS:
            if self.state is MemberState.OPERATIONAL:
                self.token_losses += 1
                if self.observer is not None:
                    self.observer.on_membership_event(
                        self.pid,
                        "token_loss",
                        detail={"ring_id": self.ring_id},
                        now=self._now(),
                    )
                self._enter_gather(effects)
        elif name == TIMER_JOIN:
            if self.state is MemberState.GATHER:
                self._send_join(effects)
                effects.append(SetTimer(TIMER_JOIN, self._jittered(self.timeouts.join_interval)))
        elif name == TIMER_CONSENSUS:
            if self.state is MemberState.GATHER:
                self._consensus_timeout(effects)
        elif name == TIMER_COMMIT:
            if self.state is MemberState.COMMIT:
                self._enter_gather(effects)
        elif name == TIMER_RECOVERY_STATUS:
            if self.state is MemberState.RECOVER:
                self._recovery_gossip(effects)
                effects.append(
                    SetTimer(TIMER_RECOVERY_STATUS, self.timeouts.recovery_status_interval)
                )
        elif name == TIMER_RECOVERY:
            # Idempotent by construction: a stray or deferred firing after
            # the recovery completed or aborted finds state != RECOVER (or
            # no recovery in flight) and is a no-op.
            if self.state is MemberState.RECOVER and self._rec is not None:
                self._on_recovery_timeout(effects)
        elif name == TIMER_BEACON:
            if self.state is MemberState.OPERATIONAL:
                effects.append(
                    SendControl(BeaconMessage(sender=self.pid, ring_id=self.ring_id))
                )
                effects.append(SetTimer(TIMER_BEACON, self.timeouts.beacon_interval))
        elif name == TIMER_SETTLE:
            self._settle_armed = False
            if self.state is MemberState.GATHER:
                self._commit_if_consensus(effects)
        elif name == TIMER_GATHER_RESTART:
            if self.state is MemberState.GATHER:
                # The gather stalled (e.g. contradictory fail verdicts from
                # interleaved attempts).  Start over with a clean slate —
                # fail verdicts are re-derived from scratch.
                self._enter_gather(effects)
        else:
            raise ValueError(f"unknown timer {name!r}")
        return effects

    # ------------------------------------------------------------------
    # Operational: route through the ordering engine
    # ------------------------------------------------------------------

    @property
    def token_has_priority(self) -> bool:
        return self.ordering.token_has_priority if self.ordering else True

    def _participant_class(self) -> Type[AcceleratedRingParticipant]:
        return AcceleratedRingParticipant if self.accelerated else OriginalRingParticipant

    def _translate(self, core_effects: Sequence[Effect], effects: List[Effect]) -> None:
        assert self.ring_config is not None
        for effect in core_effects:
            if isinstance(effect, Deliver):
                effects.append(
                    DeliverMessage(
                        message=effect.message,
                        config_id=self.ring_config.config_id,
                        origin_ring=self.ring_config.config_id,
                    )
                )
                if self.observer is not None:
                    self.observer.on_deliver(
                        self.pid, effect.message, now=self._now()
                    )
            elif isinstance(effect, DeliverBatch):
                effects.append(
                    DeliverMessageBatch(
                        messages=effect.messages,
                        config_id=self.ring_config.config_id,
                        origin_ring=self.ring_config.config_id,
                    )
                )
                if self.observer is not None:
                    self.observer.on_deliver_batch(
                        self.pid, effect.messages, now=self._now()
                    )
            elif isinstance(effect, Stable):
                pass
            else:
                effects.append(effect)

    def _on_regular_token(self, token: RegularToken, effects: List[Effect]) -> None:
        if self.state is MemberState.OPERATIONAL and token.ring_id == self.ring_id:
            assert self.ordering is not None
            self._translate(self.ordering.on_token(token), effects)
            effects.append(CancelTimer(TIMER_TOKEN_LOSS))
            effects.append(SetTimer(TIMER_TOKEN_LOSS, self.timeouts.token_loss))
            return
        if self._rec is not None and token.ring_id == self._rec.new_ring_id:
            self._stash.append(token)
            return
        if token.ring_id in self._past_rings or token.ring_id == self.ring_id:
            return  # stale traffic from a ring we have left (or are leaving)
        # Foreign ring: evidence of a partition healing — re-gather.
        if self.state is MemberState.OPERATIONAL:
            self._enter_gather(effects)

    def _on_data(self, message: DataMessage, effects: List[Effect]) -> None:
        if self.ordering is not None and message.ring_id == self.ordering.ring_id:
            # Accept data for the current ring in every state: during
            # Gather/Commit it still fills recovery holes.
            core = self.ordering.on_data(message)
            if self.state is MemberState.OPERATIONAL:
                self._translate(core, effects)
            else:
                # Delay deliveries until recovery decides attribution.
                for effect in core:
                    if not isinstance(effect, (Deliver, DeliverBatch, Stable)):
                        effects.append(effect)
                self._rewind_deliveries(core)
            return
        if self._rec is not None and message.ring_id == self._rec.new_ring_id:
            self._stash.append(message)
            return
        if message.ring_id in self._past_rings:
            return
        if self.state is MemberState.OPERATIONAL:
            self._enter_gather(effects)

    def on_data_batch(self, messages: Sequence[DataMessage]) -> List[Effect]:
        """Handle one coalesced datagram's worth of data messages.

        The homogeneous case (every message for the current ring — the
        only batch a peer on the same ring ever emits) routes through
        the ordering engine's batch entry point so delivery runs stay
        batched end to end; anything else (mixed or foreign rings, e.g.
        a batch straggling across a configuration change) falls back to
        the per-message path, which already handles stashing, stale
        rings, and gather triggers.
        """
        effects: List[Effect] = []
        ordering = self.ordering
        if ordering is not None and all(
            m.ring_id == ordering.ring_id for m in messages
        ):
            core = ordering.on_data_batch(messages)
            if self.state is MemberState.OPERATIONAL:
                self._translate(core, effects)
            else:
                for effect in core:
                    if not isinstance(effect, (Deliver, DeliverBatch, Stable)):
                        effects.append(effect)
                self._rewind_deliveries(core)
            return effects
        for message in messages:
            self._on_data(message, effects)
        return effects

    def _rewind_deliveries(self, core_effects: Sequence[Effect]) -> None:
        """While not Operational, the ordering engine must not advance its
        delivery frontier (recovery owns attribution).  The engine has no
        un-deliver operation, so instead we roll its frontier back."""
        assert self.ordering is not None
        seqs = [
            e.message.seq if isinstance(e, Deliver) else e.messages[0].seq
            for e in core_effects
            if isinstance(e, (Deliver, DeliverBatch))
        ]
        if seqs:
            self.ordering.rollback_delivery_frontier(min(seqs) - 1)

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------

    def _enter_gather(
        self, effects: List[Effect], pre_failed: Optional[Set[int]] = None
    ) -> None:
        self._set_state(MemberState.GATHER)
        self._expected_members = None
        self._rec = None
        self._proc_set = {self.pid}
        if self.ring_config is not None:
            self._proc_set |= set(self.ring_config.members)
        # ``pre_failed`` seeds the fail set: peers an aborted recovery
        # proved unresponsive start this gather already condemned, so
        # consensus does not stall waiting for them again (graceful
        # degradation — the candidate set shrinks instead of hanging).
        self._fail_set = set(pre_failed or ()) - {self.pid}
        self._joins = {}
        self._settle_armed = False
        self._consensus_strikes = 0
        effects.append(CancelTimer(TIMER_SETTLE))
        effects.append(CancelTimer(TIMER_TOKEN_LOSS))
        effects.append(CancelTimer(TIMER_COMMIT))
        effects.append(CancelTimer(TIMER_RECOVERY_STATUS))
        effects.append(CancelTimer(TIMER_RECOVERY))
        effects.append(CancelTimer(TIMER_BEACON))
        self._send_join(effects)
        effects.append(SetTimer(TIMER_JOIN, self._jittered(self.timeouts.join_interval)))
        effects.append(SetTimer(TIMER_CONSENSUS, self._jittered(self.timeouts.consensus_timeout)))
        effects.append(
            SetTimer(TIMER_GATHER_RESTART, self._jittered(self.timeouts.consensus_timeout * 4))
        )
        # No immediate consensus check: a lone candidate must wait out the
        # consensus timeout before forming a singleton ring, giving joins
        # from peers (including the one that triggered this gather) a
        # chance to arrive first.

    def _send_join(self, effects: List[Effect]) -> None:
        join = JoinMessage(
            sender=self.pid,
            proc_set=frozenset(self._proc_set),
            fail_set=frozenset(self._fail_set),
            ring_seq=self.highest_ring_seq,
        )
        self.joins_sent += 1
        effects.append(SendControl(join))

    def _on_join(self, join: JoinMessage, effects: List[Effect]) -> None:
        if join.sender == self.pid:
            return
        if self.state is MemberState.OPERATIONAL:
            # Stale joins from the gather that produced the current ring
            # must not tear it down again.  Only joins from our *members*
            # can be such stragglers; a member in genuine distress has seen
            # this ring, so its ring_seq is >= ours.  A join from a
            # non-member is always a real merge request (a recovered
            # process or a foreign partition), whatever its epoch.
            if join.sender in self.ring_config.members:
                my_seq, _rep = decode_ring_id(self.ring_id)
                if join.ring_seq < my_seq:
                    return
            self._enter_gather(effects)
        if self.state is MemberState.RECOVER and self._rec is not None:
            # A join from a member of the ring under recovery, at or past
            # that ring's epoch, is explicit evidence the exchange is dead:
            # joins are only sent while gathering, so the sender abandoned
            # this recovery and can never answer its status exchange.
            # Abort now — cheaper and faster than burning the whole retry
            # budget on a peer that told us it left.  (Joins from before
            # the commit carry an older ring_seq and do not trigger this.)
            new_seq, _rep = decode_ring_id(self._rec.new_ring_id)
            if join.sender in self._rec.members and join.ring_seq >= new_seq:
                self._abort_recovery(
                    self._rec, effects, reason="peer_regathered"
                )
                # State is Gather now; fall through and process the join.
        if self.state is not MemberState.GATHER:
            return  # committing/recovering: let timeouts sort out failures
        # Epoch scoping: fail verdicts and views from an older epoch are
        # dead history — a ring has formed since they were uttered.
        # Accepting them (or even retaliating against them) lets abandoned
        # gathers poison fresh ones indefinitely.  The sender learns the
        # current epoch from our next join and re-sends at it.
        if join.ring_seq < self.highest_ring_seq:
            return
        self.highest_ring_seq = max(self.highest_ring_seq, join.ring_seq)
        # Totem's anti-poisoning rules: a processor we have declared failed
        # cannot influence this gather, and a processor that declares *us*
        # failed is declared failed in return (the network bifurcates into
        # two consistent candidate sets instead of stalling forever) — its
        # verdicts are not merged.
        if join.sender in self._fail_set:
            return
        if self.pid in join.fail_set:
            self._fail_set.add(join.sender)
            self._joins.pop(join.sender, None)
            self._send_join(effects)
            self._check_consensus(effects)
            return
        self._joins[join.sender] = (join.proc_set, join.fail_set)
        merged_proc = self._proc_set | set(join.proc_set) | {join.sender}
        merged_fail = (self._fail_set | set(join.fail_set)) - {self.pid}
        if merged_proc != self._proc_set or merged_fail != self._fail_set:
            self._proc_set = merged_proc
            self._fail_set = merged_fail
            self._send_join(effects)
            effects.append(CancelTimer(TIMER_CONSENSUS))
            effects.append(SetTimer(TIMER_CONSENSUS, self._jittered(self.timeouts.consensus_timeout)))
            if self._settle_armed:
                self._settle_armed = False
                effects.append(CancelTimer(TIMER_SETTLE))
        self._check_consensus(effects)

    def _candidates(self) -> Set[int]:
        return self._proc_set - self._fail_set

    def _consensus_holds(self) -> bool:
        candidates = self._candidates()
        if not candidates or candidates == {self.pid}:
            return False
        my_view = (frozenset(self._proc_set), frozenset(self._fail_set))
        return all(
            self._joins.get(peer) == my_view
            for peer in candidates
            if peer != self.pid
        )

    def _check_consensus(self, effects: List[Effect]) -> None:
        """When everyone agrees, wait a short settle window before
        committing: during merges, joins from slightly-later arrivals
        would otherwise race a premature smaller ring into existence."""
        if not self._consensus_holds():
            return
        if not self._settle_armed:
            self._settle_armed = True
            effects.append(SetTimer(TIMER_SETTLE, self._jittered(self.timeouts.consensus_settle)))

    def _commit_if_consensus(self, effects: List[Effect]) -> None:
        if self._consensus_holds():
            self._enter_commit(sorted(self._candidates()), effects)

    def _consensus_timeout(self, effects: List[Effect]) -> None:
        # Patience: declare a candidate failed only on the second
        # consecutive timeout without a join from it.  A live peer can be
        # legitimately silent for one window while it finishes committing
        # or recovering a competing proposal (joins are only sent while
        # gathering); condemning it on the first timeout seeds mutual
        # fail verdicts that take far longer to clear than the wait.
        self._consensus_strikes += 1
        if self._consensus_strikes >= 2:
            unresponsive = {
                peer
                for peer in self._candidates()
                if peer != self.pid and peer not in self._joins
            }
            if unresponsive:
                self._fail_set |= unresponsive
                self._joins = {
                    peer: view
                    for peer, view in self._joins.items()
                    if peer not in unresponsive
                }
        self._send_join(effects)
        effects.append(SetTimer(TIMER_CONSENSUS, self._jittered(self.timeouts.consensus_timeout)))
        if self._candidates() == {self.pid}:
            # Alone after the wait: form a singleton ring.
            self._form_singleton(effects)
        else:
            self._check_consensus(effects)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _my_info(self) -> MemberInfo:
        if self.ordering is None:
            return MemberInfo(
                old_ring_id=encode_ring_id(0, self.pid), old_aru=0, high_seq=0
            )
        # ``last_delivered`` is the application-visible frontier: while
        # not Operational the controller rolls speculative deliveries
        # back (_rewind_deliveries), so this is exactly what the local
        # application saw from the old ring.
        return MemberInfo(
            old_ring_id=self.ordering.ring_id,
            old_aru=self.ordering.local_aru,
            high_seq=self.ordering.buffer.max_seq,
            last_delivered=self.ordering.last_delivered,
        )

    def _form_singleton(self, effects: List[Effect]) -> None:
        new_seq = self.highest_ring_seq + 1
        ring_id = encode_ring_id(new_seq, self.pid)
        self.highest_ring_seq = new_seq
        token = CommitToken(ring_id=ring_id, members=(self.pid,))
        token.infos[self.pid] = self._my_info()
        effects.append(CancelTimer(TIMER_JOIN))
        effects.append(CancelTimer(TIMER_CONSENSUS))
        self._enter_recover(token, effects)

    def _enter_commit(self, members: List[int], effects: List[Effect]) -> None:
        self._set_state(MemberState.COMMIT)
        self._expected_members = tuple(members)
        effects.append(CancelTimer(TIMER_GATHER_RESTART))
        effects.append(CancelTimer(TIMER_JOIN))
        effects.append(CancelTimer(TIMER_CONSENSUS))
        effects.append(SetTimer(TIMER_COMMIT, self.timeouts.commit_timeout))
        representative = members[0]
        if self.pid != representative:
            return  # wait for the commit token
        new_seq = self.highest_ring_seq + 1
        ring_id = encode_ring_id(new_seq, representative)
        self.highest_ring_seq = new_seq
        token = CommitToken(ring_id=ring_id, members=tuple(members))
        token.infos[self.pid] = self._my_info()
        effects.append(SendControl(token, destination=token.successor_of(self.pid)))

    def _on_commit_token(self, token: CommitToken, effects: List[Effect]) -> None:
        if self.pid not in token.members:
            return
        if (
            token.ring_id == self.ring_id
            or token.ring_id in self._past_rings
            or token.ring_id in self._attempted_rings
        ):
            # A stale echo still circulating for a ring we already
            # installed, left, or abandoned mid-recovery.  Ring ids are
            # never reused, so this can only be dead history; accepting it
            # would re-run recovery (re-delivering its configurations) in
            # an endless install/teardown churn loop.
            return
        if self.state not in (MemberState.GATHER, MemberState.COMMIT):
            if self._rec is not None and token.ring_id == self._rec.new_ring_id:
                return  # second-pass echo while already recovering
            return
        if self.state is MemberState.GATHER and set(token.members) != self._candidates():
            return  # we have not agreed to this membership
        if (
            self.state is MemberState.COMMIT
            and self._expected_members is not None
            and tuple(token.members) != self._expected_members
        ):
            return  # stale commit token from an earlier proposal
        token = token.copy()
        seq, _rep = decode_ring_id(token.ring_id)
        self.highest_ring_seq = max(self.highest_ring_seq, seq)
        if self.pid not in token.infos:
            token.infos[self.pid] = self._my_info()
        self._set_state(MemberState.COMMIT)
        effects.append(CancelTimer(TIMER_JOIN))
        effects.append(CancelTimer(TIMER_CONSENSUS))
        effects.append(CancelTimer(TIMER_COMMIT))
        effects.append(SetTimer(TIMER_COMMIT, self.timeouts.commit_timeout))
        effects.append(
            SendControl(token.copy(), destination=token.successor_of(self.pid))
        )
        if token.complete:
            self._enter_recover(token, effects)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _enter_recover(self, token: CommitToken, effects: List[Effect]) -> None:
        self._set_state(MemberState.RECOVER)
        self._attempted_rings.add(token.ring_id)
        effects.append(CancelTimer(TIMER_COMMIT))
        effects.append(CancelTimer(TIMER_GATHER_RESTART))
        effects.append(CancelTimer(TIMER_JOIN))
        my_info = token.infos[self.pid]
        old_ring = my_info.old_ring_id
        old_members = tuple(
            member
            for member in token.members
            if token.infos[member].old_ring_id == old_ring
        )
        low = min(token.infos[m].old_aru for m in old_members)
        high = max(token.infos[m].high_seq for m in old_members)
        # The commit token is identical at every member, so every old-ring
        # survivor computes the same delivery split point — the basis of
        # their agreement on the closed ring's delivered set.
        deliver_high = max(token.infos[m].last_delivered for m in old_members)
        rec = _RecoveryState(
            new_ring_id=token.ring_id,
            members=token.members,
            infos=dict(token.infos),
            my_old_ring=old_ring,
            old_members=old_members,
            low=low,
            high=high,
            deliver_high=deliver_high,
        )
        if self.ordering is not None:
            rec.my_have = {
                seq
                for seq in range(low + 1, high + 1)
                if self.ordering.buffer.get(seq) is not None
            }
        rec.done = self._recovery_complete(rec)
        self._rec = rec
        if self.observer is not None:
            self.observer.on_recovery_started(
                self.pid,
                detail={
                    "ring_id": rec.new_ring_id,
                    "old_ring_id": rec.my_old_ring,
                    "old_members": sorted(rec.old_members),
                    "window": [rec.low, rec.high],
                    "deliver_high": rec.deliver_high,
                },
                now=self._now(),
            )
        self._flood(rec, rec.my_have, effects)
        self._send_status(rec, effects)
        effects.append(
            SetTimer(TIMER_RECOVERY_STATUS, self.timeouts.recovery_status_interval)
        )
        effects.append(SetTimer(TIMER_RECOVERY, self.timeouts.recovery_timeout))
        self._maybe_finalize(effects)

    def _recovery_complete(self, rec: _RecoveryState) -> bool:
        return not rec.needed()

    def _flood(self, rec: _RecoveryState, seqs: Set[int], effects: List[Effect]) -> None:
        if self.ordering is None:
            return
        for seq in sorted(seqs):
            message = self.ordering.buffer.get(seq)
            if message is not None:
                effects.append(
                    SendControl(RecoveredMessage(rec.my_old_ring, message))
                )

    def _send_status(self, rec: _RecoveryState, effects: List[Effect]) -> None:
        effects.append(
            SendControl(
                RecoveryStatus(
                    sender=self.pid,
                    new_ring_id=rec.new_ring_id,
                    old_ring_id=rec.my_old_ring,
                    have=tuple(sorted(rec.my_have)),
                    complete=rec.done,
                )
            )
        )

    def _on_recovered(self, message: RecoveredMessage, effects: List[Effect]) -> None:
        rec = self._rec
        if (
            self.state is not MemberState.RECOVER
            or rec is None
            or message.old_ring_id != rec.my_old_ring
            or self.ordering is None
        ):
            return
        if not (rec.low < message.message.seq <= rec.high):
            return
        if self.ordering.buffer.insert(message.message):
            rec.my_have.add(message.message.seq)
            if not rec.done and not rec.needed():
                rec.done = True
                self._send_status(rec, effects)
            self._maybe_finalize(effects)

    def _on_status(self, status: RecoveryStatus, effects: List[Effect]) -> None:
        rec = self._rec
        if self.state is MemberState.RECOVER and rec is not None:
            if status.new_ring_id != rec.new_ring_id:
                return
            if status.old_ring_id != rec.my_old_ring:
                return  # another old ring's exchange; not our concern
            rec.peer_have[status.sender] = set(status.have)
            # Liveness: any status is proof of life for this retry round.
            rec.status_attempt[status.sender] = rec.attempt
            rec.suspects.discard(status.sender)
            if status.complete:
                rec.complete_peers.add(status.sender)
            else:
                rec.complete_peers.discard(status.sender)
            if not rec.done and not rec.needed():
                rec.done = True
                self._send_status(rec, effects)
            self._maybe_finalize(effects)
            return
        # Help stragglers after we have installed the new ring: a member
        # still gossiping recovery status for our ring missed our final
        # status (e.g. it was still in Commit when we sent it) — re-send
        # it, and re-flood anything it lacks.
        if (
            self.state is MemberState.OPERATIONAL
            and status.new_ring_id == self.ring_id
            and status.sender != self.pid
            and self._final_recovery is not None
            and status.old_ring_id == self._final_recovery.my_old_ring
        ):
            # Echo control.  An operational member answering a status is a
            # positive-feedback loop if the answer is itself a status every
            # other operational member answers: multicast replies made each
            # status seen by the other N-1 members spawn N-1 more — an
            # exponential storm (for N > 2) that starved the token on the
            # shared control port until the token-loss timer split the
            # ring.  Three dampers make help loop-free while keeping a real
            # straggler unblocked: the reply goes unicast to the straggler
            # (operational peers never see it, so never re-answer it), each
            # peer is helped at most once per status interval (the
            # straggler's own re-gossip rate, so nothing is lost), and help
            # stops recovery_timeout after install — by then any straggler
            # has timed out into a fresh gather and needs a join exchange,
            # not an old status.
            now = self._now()
            if now is not None:
                if (
                    self._installed_at is not None
                    and now - self._installed_at > self.timeouts.recovery_timeout
                ):
                    return
                last = self._help_sent.get(status.sender)
                if (
                    last is not None
                    and now - last < self.timeouts.recovery_status_interval
                ):
                    return
                self._help_sent[status.sender] = now
            final = self._final_recovery
            missing = final.my_have - set(status.have)
            if missing and self._old_buffer is not None:
                for seq in sorted(missing):
                    message = self._old_buffer.get(seq)
                    if message is not None:
                        effects.append(
                            SendControl(
                                RecoveredMessage(final.my_old_ring, message),
                                destination=status.sender,
                            )
                        )
            effects.append(
                SendControl(
                    RecoveryStatus(
                        sender=self.pid,
                        new_ring_id=final.new_ring_id,
                        old_ring_id=final.my_old_ring,
                        have=tuple(sorted(final.my_have)),
                        complete=True,
                    ),
                    destination=status.sender,
                )
            )

    def _on_beacon(self, beacon: BeaconMessage, effects: List[Effect]) -> None:
        # Beacons carry the sender's ring epoch; adopting it ensures our
        # next joins are not dismissed as stale by that ring's members.
        beacon_seq, _rep = decode_ring_id(beacon.ring_id)
        self.highest_ring_seq = max(self.highest_ring_seq, beacon_seq)
        if self.state is not MemberState.OPERATIONAL:
            return
        if beacon.ring_id == self.ring_id or beacon.ring_id in self._past_rings:
            return
        # A foreign operational ring exists: merge.
        self._enter_gather(effects)

    def _recovery_gossip(self, effects: List[Effect]) -> None:
        rec = self._rec
        assert rec is not None
        self._send_status(rec, effects)
        # Re-flood what known peers are missing (unknown peers will ask by
        # sending their first status).
        known = [rec.peer_have[p] for p in rec.old_members if p in rec.peer_have and p != self.pid]
        if known:
            missing_somewhere = set()
            for have in known:
                missing_somewhere |= rec.my_have - have
            self._flood(rec, missing_somewhere, effects)

    # -- self-healing: retry / backoff / abort-and-regather ------------

    def _recovery_backoff_delay(self, attempt: int) -> float:
        """Interval before retry ``attempt`` expires: exponential backoff
        from ``recovery_timeout``, capped, with deterministic +/- jitter
        (applied after the cap) to desynchronize retry storms."""
        timeouts = self.timeouts
        base = min(
            timeouts.recovery_timeout * (timeouts.recovery_backoff ** attempt),
            timeouts.recovery_cap,
        )
        jitter = timeouts.recovery_jitter
        if jitter:
            base *= self._rng.uniform(1.0 - jitter, 1.0 + jitter)
        return base

    def _recovery_suspects(self, rec: _RecoveryState) -> Set[int]:
        """Old-ring peers silent for >= ``recovery_suspect_after``
        consecutive retry rounds of this recovery."""
        threshold = self.timeouts.recovery_suspect_after
        return {
            peer
            for peer in rec.old_members
            if peer != self.pid
            and rec.attempt - rec.status_attempt.get(peer, 0) >= threshold
        }

    def _on_recovery_timeout(self, effects: List[Effect]) -> None:
        """A recovery round expired without finalizing.

        Instead of tearing the exchange down on the first deadline (the
        legacy behaviour) the controller retries: it re-gossips status and
        re-floods what known peers are missing, backing off exponentially
        with jitter, and tracks which peers have gone quiet.  Only when
        the retry budget is exhausted does it abort back to Gather — with
        the quiet peers pre-condemned, so the next membership shrinks
        around them rather than stalling on them again.
        """
        rec = self._rec
        assert rec is not None
        rec.attempt += 1
        rec.suspects = self._recovery_suspects(rec)
        if rec.attempt > self.timeouts.recovery_retries:
            self._abort_recovery(rec, effects)
            return
        self.recovery_retries += 1
        delay = self._recovery_backoff_delay(rec.attempt)
        if self.observer is not None:
            self.observer.on_recovery_retry(
                self.pid,
                detail={
                    "ring_id": rec.new_ring_id,
                    "attempt": rec.attempt,
                    "retries_left": self.timeouts.recovery_retries - rec.attempt,
                    "next_delay": delay,
                    "missing": len(rec.needed()),
                    "suspects": sorted(rec.suspects),
                },
                now=self._now(),
            )
        # Unanswered flood/status round: say it all again, louder.  The
        # status re-announces our holdings (prompting peers to flood what
        # we lack); the flood re-sends everything known peers lack.
        self._recovery_gossip(effects)
        effects.append(SetTimer(TIMER_RECOVERY, delay))

    def _abort_recovery(
        self,
        rec: _RecoveryState,
        effects: List[Effect],
        reason: str = "retry_budget",
    ) -> None:
        """Give up on this exchange and regather — because the retry
        budget ran out, or because a recovery peer demonstrably abandoned
        the exchange (``reason="peer_regathered"``).

        Never finalizes a torn state — no configuration or message is
        delivered here.  Suspected-dead peers seed the new gather's fail
        set, shrinking the candidate set (graceful degradation)."""
        self.recovery_aborts += 1
        if self.observer is not None:
            self.observer.on_recovery_aborted(
                self.pid,
                detail={
                    "ring_id": rec.new_ring_id,
                    "attempts": rec.attempt,
                    "missing": len(rec.needed()),
                    "suspects": sorted(rec.suspects),
                    "reason": reason,
                },
                now=self._now(),
            )
        self._enter_gather(effects, pre_failed=rec.suspects)

    def _maybe_finalize(self, effects: List[Effect]) -> None:
        rec = self._rec
        assert rec is not None
        if not rec.done:
            return
        for peer in rec.old_members:
            if peer != self.pid and peer not in rec.complete_peers:
                return
        self._finalize_recovery(rec, effects)

    def _finalize_recovery(self, rec: _RecoveryState, effects: List[Effect]) -> None:
        """Deliver remaining old-ring messages per EVS, install the ring."""
        old_config = self.ring_config
        if self.ordering is not None:
            ordering = self.ordering
            # Phase 1: messages still deliverable in the old regular
            # configuration — the contiguous prefix up to the first
            # undelivered Safe message whose old-config stability cannot
            # be proven, or the first permanent gap.  The split point must
            # be *agreed*, not local: up to ``rec.deliver_high`` (the
            # maximum delivery frontier on the commit token) some old-ring
            # member already delivered every message — including Safe ones,
            # whose delivery is itself the stability proof — so every
            # survivor delivers through it in the regular configuration.
            # Stopping instead at the local first-undelivered-Safe made
            # survivors disagree on the closed ring's delivered set (the
            # seed-7 EVS violation pinned in
            # tests/integration/test_evs_regressions.py).
            seq = ordering.last_delivered + 1
            while seq <= rec.high:
                message = ordering.buffer.get(seq)
                if message is None:
                    break
                if seq > rec.deliver_high and message.service.requires_stability:
                    break
                effects.append(
                    DeliverMessage(
                        message=message,
                        config_id=rec.my_old_ring,
                        origin_ring=rec.my_old_ring,
                    )
                )
                if self.observer is not None:
                    self.observer.on_deliver(self.pid, message, now=self._now())
                seq += 1
            # Transitional configuration: my old ring's survivors.
            transitional_members = [m for m in rec.old_members]
            if old_config is not None:
                effects.append(
                    DeliverConfiguration(
                        Configuration.transitional_of(
                            encode_transitional_id(rec.my_old_ring, rec.new_ring_id),
                            transitional_members,
                            closes=rec.my_old_ring,
                        )
                    )
                )
            # Phase 2: everything else recovered, gaps skipped (EVS allows
            # delivery past holes only in the transitional configuration).
            while seq <= rec.high:
                message = ordering.buffer.get(seq)
                if message is not None:
                    effects.append(
                        DeliverMessage(
                            message=message,
                            config_id=rec.my_old_ring,
                            origin_ring=rec.my_old_ring,
                        )
                    )
                    if self.observer is not None:
                        self.observer.on_deliver(self.pid, message, now=self._now())
                seq += 1
            self._old_buffer = ordering.buffer
            self._past_rings.add(ordering.ring_id)

        # Install the new ring.
        members = sorted(rec.members)
        new_config = Configuration.regular(rec.new_ring_id, members)
        effects.append(DeliverConfiguration(new_config))
        carried = self.ordering.pending if self.ordering is not None else deque()
        participant = self._participant_class()(
            pid=self.pid,
            ring=members,
            config=self.protocol_config,
            ring_id=rec.new_ring_id,
            observer=self.observer,
            clock=self.clock,
        )
        participant.pending = carried
        while self._pre_ring_pending:
            payload, service, timestamp, size = self._pre_ring_pending.popleft()
            participant.submit(payload, service, timestamp, size)
        self.ordering = participant
        self.ring_config = new_config
        self._set_state(MemberState.OPERATIONAL)
        self.view_changes += 1
        self.recoveries_completed += 1
        if self.observer is not None:
            now = self._now()
            self.observer.on_recovery_completed(
                self.pid,
                detail={
                    "ring_id": rec.new_ring_id,
                    "attempts": rec.attempt,
                    "members": list(members),
                },
                now=now,
            )
            self.observer.on_membership_event(
                self.pid,
                "ring_installed",
                detail={"ring_id": rec.new_ring_id, "members": list(members)},
                now=now,
            )
            self.observer.on_membership_event(
                self.pid,
                "view_change",
                detail={"ring_id": rec.new_ring_id},
                now=now,
            )
        self._final_recovery = rec
        self._installed_at = self._now()
        self._help_sent = {}
        self._rec = None
        effects.append(CancelTimer(TIMER_RECOVERY_STATUS))
        effects.append(CancelTimer(TIMER_RECOVERY))
        effects.append(SetTimer(TIMER_TOKEN_LOSS, self.timeouts.token_loss))
        effects.append(SetTimer(TIMER_BEACON, self.timeouts.beacon_interval))
        if self.pid == members[0]:
            effects.append(
                SendToken(initial_token(rec.new_ring_id), destination=self.pid)
            )
        # Replay traffic that raced ahead of installation.
        stash, self._stash = self._stash, []
        for message in stash:
            effects.extend(self.on_message(message))
