"""Effects emitted by the membership controller.

These extend the core protocol effects: drivers executing a controller
must also handle control sends, timers, and configuration deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.events import Effect
from repro.core.messages import DataMessage
from repro.evs.configuration import Configuration


@dataclass
class SendControl(Effect):
    """Send a membership control message.

    ``destination`` of ``None`` means multicast to all attached hosts.
    Control messages travel on the token port class.
    """

    message: Any
    destination: Optional[int] = None


@dataclass
class SetTimer(Effect):
    """(Re)arm a named timer to fire ``delay`` seconds from now."""

    name: str
    delay: float


@dataclass
class CancelTimer(Effect):
    """Cancel a named timer if armed."""

    name: str


@dataclass
class DeliverMessage(Effect):
    """Deliver an application message, attributed to a configuration.

    Replaces the core :class:`~repro.core.events.Deliver` effect when a
    membership controller wraps the ordering engine, so traces carry the
    configuration context the EVS checker needs.
    """

    message: DataMessage
    config_id: int
    origin_ring: int


@dataclass
class DeliverMessageBatch(Effect):
    """Deliver a contiguous in-order run of messages at once.

    The membership mirror of :class:`~repro.core.events.DeliverBatch`:
    one configuration attribution covers the whole slice (a batch never
    spans a view change — the engine only batches runs it delivered
    under one ring).  Drivers record per-message checker events in
    order, but fire observer/tap hooks once per batch.
    """

    messages: Tuple[DataMessage, ...]
    config_id: int
    origin_ring: int


@dataclass
class DeliverConfiguration(Effect):
    """Deliver a configuration change (regular or transitional)."""

    configuration: Configuration
