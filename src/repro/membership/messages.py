"""Membership control messages.

All control messages travel on the token port class, so the normal-case
data path never has to inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.core.messages import DataMessage


@dataclass(frozen=True)
class JoinMessage:
    """Multicast while gathering: the sender's current view of who is
    reachable (``proc_set``) and who has been declared failed
    (``fail_set``), plus the highest ring sequence number it has seen."""

    sender: int
    proc_set: FrozenSet[int]
    fail_set: FrozenSet[int]
    ring_seq: int

    def wire_size(self) -> int:
        return 24 + 4 * (len(self.proc_set) + len(self.fail_set))

    def candidates(self) -> FrozenSet[int]:
        return self.proc_set - self.fail_set


@dataclass(frozen=True)
class MemberInfo:
    """One member's state from its previous ring, carried on the commit
    token so every member can compute the recovery exchange.

    ``last_delivered`` is the member's application-visible delivery
    frontier in its old ring.  Survivors take the maximum over their old
    ring's members: every sequence number at or below it was delivered by
    *someone* in the old regular configuration (so its stability was
    already proven there), and therefore must be delivered by every
    survivor in the old regular configuration too — even Safe messages —
    or the survivors would disagree on the delivered set of the closed
    ring (an Extended Virtual Synchrony violation)."""

    old_ring_id: int
    old_aru: int
    high_seq: int
    last_delivered: int = 0


@dataclass
class CommitToken:
    """Circulates (twice) around the proposed new ring.

    The first rotation collects each member's :class:`MemberInfo`; on the
    second rotation each member sees the complete picture and moves to
    Recovery.  ``rotation`` counts completed passes at the representative.
    """

    ring_id: int
    members: Tuple[int, ...]
    infos: Dict[int, MemberInfo] = field(default_factory=dict)
    rotation: int = 0

    def wire_size(self) -> int:
        return 32 + 8 * len(self.members) + 32 * len(self.infos)

    def copy(self) -> "CommitToken":
        return CommitToken(
            ring_id=self.ring_id,
            members=self.members,
            infos=dict(self.infos),
            rotation=self.rotation,
        )

    def successor_of(self, pid: int) -> int:
        index = self.members.index(pid)
        return self.members[(index + 1) % len(self.members)]

    @property
    def complete(self) -> bool:
        return len(self.infos) == len(self.members)


@dataclass(frozen=True)
class RecoveredMessage:
    """A data message from an old ring re-multicast during Recovery."""

    old_ring_id: int
    message: DataMessage

    def wire_size(self, header_bytes: int) -> int:
        return 16 + self.message.wire_size(header_bytes)


@dataclass(frozen=True)
class BeaconMessage:
    """Low-rate presence beacon multicast by operational members.

    Rings merge when one ring observes traffic from another (a "foreign
    message", as in Totem).  Data traffic triggers this naturally; beacons
    guarantee discovery even when rings are idle after a partition heals.
    """

    sender: int
    ring_id: int

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class RecoveryStatus:
    """Recovery gossip: which old-ring sequence numbers the sender holds.

    ``have`` lists held seqs in the exchange window ``(low, high]`` of the
    sender's old ring; ``complete`` means the sender has every seq that is
    collectively available.  The union of everyone's ``have`` defines what
    is recoverable — seqs nobody holds are permanent gaps, skipped after
    the transitional configuration (EVS permits this).
    """

    sender: int
    new_ring_id: int
    old_ring_id: int
    have: Tuple[int, ...]
    complete: bool

    def wire_size(self) -> int:
        return 32 + 4 * len(self.have)
