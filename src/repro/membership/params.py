"""Membership timeouts.

Defaults are scaled for the discrete-event simulator (token rounds of
tens to hundreds of microseconds); the real asyncio runtime passes
wall-clock-scale values instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MembershipTimeouts:
    """Timer intervals driving failure detection and membership phases.

    Attributes:
        token_loss: max time between token receipts in Operational state
            before the ring is declared broken (the protocol's fast
            failure detection).
        join_interval: how often a gathering participant re-multicasts its
            join message.
        consensus_timeout: how long to wait for matching joins before
            declaring unresponsive candidates failed.
        commit_timeout: max time in the Commit phase before falling back
            to Gather.
        recovery_status_interval: how often recovery status gossip and
            re-floods are sent.
        recovery_timeout: how long the first Recovery attempt may run
            before the self-healing machinery retries (base interval of
            the backoff schedule).
        recovery_retries: how many retransmission retry rounds an
            unanswered recovery gets before it is aborted back to Gather.
            0 restores the legacy fixed-deadline behaviour (first expiry
            aborts).
        recovery_backoff: multiplier applied to the recovery interval on
            each retry (exponential backoff); must be >= 1.
        recovery_jitter: +/- fraction of deterministic per-pid jitter
            applied to each retry interval, desynchronizing retry storms;
            0 <= jitter < 1.
        recovery_timeout_cap: upper bound on a single backed-off retry
            interval, so deep retry rounds stay responsive.  ``None``
            (the default) means 8x ``recovery_timeout``, which tracks
            whatever time scale the deployment runs on.
        recovery_suspect_after: a recovery peer is suspected once this
            many consecutive recovery attempts pass without a status
            message from it; suspects seed the fail set of the regather
            when the retry budget runs out.
    """

    token_loss: float = 5e-3
    join_interval: float = 1e-3
    consensus_timeout: float = 4e-3
    #: How long the agreed (proc, fail) sets must hold still before the
    #: ring is committed — damps racing proposals during merges.
    consensus_settle: float = 1.5e-3
    commit_timeout: float = 10e-3
    recovery_status_interval: float = 1e-3
    recovery_timeout: float = 30e-3
    beacon_interval: float = 5e-3
    recovery_retries: int = 3
    recovery_backoff: float = 2.0
    recovery_jitter: float = 0.2
    recovery_timeout_cap: Optional[float] = None
    recovery_suspect_after: int = 2

    @property
    def recovery_cap(self) -> float:
        """The effective retry-interval ceiling (resolves the default)."""
        if self.recovery_timeout_cap is not None:
            return self.recovery_timeout_cap
        return 8.0 * self.recovery_timeout

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "MembershipTimeouts":
        """Reject nonsensical intervals and backoff knobs.

        Mirrors :meth:`repro.core.config.ProtocolConfig.validate`: called
        from ``__post_init__`` and again at the protocol boundary (the
        membership controller), so hand-built or deserialized instances
        fail loudly too.  Returns ``self`` so call sites can chain.
        """
        for name in (
            "token_loss",
            "join_interval",
            "consensus_timeout",
            "consensus_settle",
            "commit_timeout",
            "recovery_status_interval",
            "recovery_timeout",
            "beacon_interval",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not isinstance(self.recovery_retries, int) or self.recovery_retries < 0:
            raise ConfigurationError(
                f"recovery_retries must be a non-negative integer, "
                f"got {self.recovery_retries!r}"
            )
        if self.recovery_backoff < 1.0:
            raise ConfigurationError(
                f"recovery_backoff must be >= 1 (got {self.recovery_backoff}): "
                "a shrinking retry interval hammers an already-struggling ring"
            )
        if not 0.0 <= self.recovery_jitter < 1.0:
            raise ConfigurationError(
                f"recovery_jitter must be in [0, 1), got {self.recovery_jitter}"
            )
        if (
            self.recovery_timeout_cap is not None
            and self.recovery_timeout_cap < self.recovery_timeout
        ):
            raise ConfigurationError(
                f"recovery_timeout_cap ({self.recovery_timeout_cap}) must be >= "
                f"recovery_timeout ({self.recovery_timeout})"
            )
        if not isinstance(self.recovery_suspect_after, int) or self.recovery_suspect_after < 1:
            raise ConfigurationError(
                f"recovery_suspect_after must be a positive integer, "
                f"got {self.recovery_suspect_after!r}"
            )
        return self

    def scaled(self, factor: float) -> "MembershipTimeouts":
        return MembershipTimeouts(
            token_loss=self.token_loss * factor,
            join_interval=self.join_interval * factor,
            consensus_timeout=self.consensus_timeout * factor,
            consensus_settle=self.consensus_settle * factor,
            commit_timeout=self.commit_timeout * factor,
            recovery_status_interval=self.recovery_status_interval * factor,
            recovery_timeout=self.recovery_timeout * factor,
            beacon_interval=self.beacon_interval * factor,
            recovery_retries=self.recovery_retries,
            recovery_backoff=self.recovery_backoff,
            recovery_jitter=self.recovery_jitter,
            recovery_timeout_cap=(
                None
                if self.recovery_timeout_cap is None
                else self.recovery_timeout_cap * factor
            ),
            recovery_suspect_after=self.recovery_suspect_after,
        )
