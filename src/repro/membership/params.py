"""Membership timeouts.

Defaults are scaled for the discrete-event simulator (token rounds of
tens to hundreds of microseconds); the real asyncio runtime passes
wall-clock-scale values instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MembershipTimeouts:
    """Timer intervals driving failure detection and membership phases.

    Attributes:
        token_loss: max time between token receipts in Operational state
            before the ring is declared broken (the protocol's fast
            failure detection).
        join_interval: how often a gathering participant re-multicasts its
            join message.
        consensus_timeout: how long to wait for matching joins before
            declaring unresponsive candidates failed.
        commit_timeout: max time in the Commit phase before falling back
            to Gather.
        recovery_status_interval: how often recovery status gossip and
            re-floods are sent.
        recovery_timeout: max time in the Recovery phase before falling
            back to Gather.
    """

    token_loss: float = 5e-3
    join_interval: float = 1e-3
    consensus_timeout: float = 4e-3
    #: How long the agreed (proc, fail) sets must hold still before the
    #: ring is committed — damps racing proposals during merges.
    consensus_settle: float = 1.5e-3
    commit_timeout: float = 10e-3
    recovery_status_interval: float = 1e-3
    recovery_timeout: float = 30e-3
    beacon_interval: float = 5e-3

    def __post_init__(self) -> None:
        for name in (
            "token_loss",
            "join_interval",
            "consensus_timeout",
            "consensus_settle",
            "commit_timeout",
            "recovery_status_interval",
            "recovery_timeout",
            "beacon_interval",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def scaled(self, factor: float) -> "MembershipTimeouts":
        return MembershipTimeouts(
            token_loss=self.token_loss * factor,
            join_interval=self.join_interval * factor,
            consensus_timeout=self.consensus_timeout * factor,
            consensus_settle=self.consensus_settle * factor,
            commit_timeout=self.commit_timeout * factor,
            recovery_status_interval=self.recovery_status_interval * factor,
            recovery_timeout=self.recovery_timeout * factor,
            beacon_interval=self.beacon_interval * factor,
        )
