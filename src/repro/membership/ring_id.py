"""Ring identifiers.

A ring id must be unique across partitions that form rings concurrently,
so it combines a monotonically increasing sequence number with the
representative's pid (Totem uses the same pair).  The two are packed into
one integer so the ordering layer can treat ring ids opaquely.
"""

from __future__ import annotations

from typing import Tuple

_REP_SPACE = 1_000_003  # prime > any realistic pid


def encode_ring_id(ring_seq: int, representative: int) -> int:
    if representative >= _REP_SPACE or representative < 0:
        raise ValueError(f"representative pid out of range: {representative}")
    if ring_seq < 0:
        raise ValueError(f"ring_seq must be non-negative: {ring_seq}")
    return ring_seq * _REP_SPACE + representative


def decode_ring_id(ring_id: int) -> Tuple[int, int]:
    """Returns ``(ring_seq, representative)``."""
    return divmod(ring_id, _REP_SPACE)


_TRANSITIONAL_SHIFT = 64


def encode_transitional_id(old_ring_id: int, new_ring_id: int) -> int:
    """Unique id for the transitional configuration between two rings.

    EVS identifies every installed configuration uniquely; competing ring
    proposals emerging from the same old ring must yield *distinct*
    transitional configurations, so the id pairs the ring being closed
    with the ring being installed.
    """
    return (old_ring_id << _TRANSITIONAL_SHIFT) | new_ring_id


def decode_transitional_id(transitional_id: int) -> Tuple[int, int]:
    """Returns ``(old_ring_id, new_ring_id)``."""
    return (
        transitional_id >> _TRANSITIONAL_SHIFT,
        transitional_id & ((1 << _TRANSITIONAL_SHIFT) - 1),
    )
