"""Multi-ring sharded ordering.

One Accelerated Ring is a hard throughput ceiling: the token circuit
serializes every ordered message through a single rotation.  The
multi-ring layer scales past it the way Multi-Ring Paxos and HT-Ring
Paxos do (PAPERS.md): run N independent rings on the shared simulated
fabric, deterministically shard Spread group names onto them, and give
subscribers that span rings one merged total order.

* :mod:`repro.multiring.shard_map` — :class:`ShardMap`: deterministic
  group-name → ring mapping (stable CRC hash, explicit overrides).
* :mod:`repro.multiring.merge` — the deterministic cross-shard merge:
  round-robin with skips, as in Multi-Ring Paxos §M.  Every subscriber
  of the same group set observes the same merged order because the
  merge is a pure function of the per-ring delivery orders.
* :mod:`repro.multiring.cluster` — :class:`MultiRingCluster`: N rings
  (full membership stacks or bare ordering engines) on one simulator,
  with per-shard EVS checking and a group-routed submit path.

Construction goes through the topology API::

    from repro.sim.build import ClusterBuilder

    cluster = ClusterBuilder().rings(2).hosts(4).membership().build_multiring()
    cluster.start(); cluster.run(0.1)
    cluster.submit("chat", b"hello")       # routed to shard_of("chat")

Per-shard guarantee: each ring totally orders the groups mapped to it
(full EVS semantics per ring).  Cross-shard guarantee: the merged order
is identical for all subscribers of the same group set — but it is a
deterministic interleaving, not a temporal or causal order across
rings (see docs/PROTOCOL.md §11).
"""

from repro.multiring.shard_map import ShardMap
from repro.multiring.merge import RoundRobinMerger, merge_streams
from repro.multiring.cluster import MultiRingCluster

__all__ = [
    "ShardMap",
    "RoundRobinMerger",
    "merge_streams",
    "MultiRingCluster",
]
