"""N independent rings on one simulated fabric.

:class:`MultiRingCluster` runs ``num_rings`` Accelerated (or original)
rings side by side on a single deterministic :class:`~repro.net.
simulator.Simulator`.  Each ring is a complete, independent stack —
its own switch, hosts, and (in membership mode) its own
:class:`~repro.membership.controller.MembershipController` ring with a
dedicated :class:`~repro.evs.checker.EvsChecker` — so per-ring
guarantees are exactly the single-ring guarantees, and a fault on one
ring cannot touch another except through the shared wall clock.

Group traffic routes through a :class:`~repro.multiring.shard_map.
ShardMap`: ``submit("chat", b"...")`` lands on the ring that owns
``"chat"`` and every daemon on that ring delivers it in the ring's
total order.  Subscribers spanning rings read
:meth:`MultiRingCluster.merged_stream`, the deterministic round-robin
merge of the per-ring orders (:mod:`repro.multiring.merge`).

Two modes, one fabric:

* **membership mode** (default) — full membership + EVS stacks; the
  conformance and chaos layers drive this one.
* **protocol mode** (``membership=False``) — bare ordering engines
  (:class:`~repro.sim.cluster.RingCluster` per ring) for the scaling
  benchmarks; exposes the same ``drivers``/``aggregate()`` surface the
  single-ring workload generators and the bench harness already use,
  with globally unique pids ``ring_index * hosts_per_ring + local``.

Build through :class:`repro.sim.build.ClusterBuilder` — a single ring
is just the N=1 case of the same spec.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

from repro.core.config import ProtocolConfig
from repro.core.messages import DeliveryService
from repro.core.original import OriginalRingParticipant
from repro.core.participant import AcceleratedRingParticipant
from repro.evs.checker import EvsViolation
from repro.membership.params import MembershipTimeouts
from repro.net.loss import LossModel
from repro.net.params import NetworkParams, GIGABIT
from repro.net.simulator import Simulator
from repro.net.topology import build_star
from repro.multiring.merge import merge_streams
from repro.multiring.shard_map import ShardMap, stable_hash
from repro.sim.cluster import ClusterStats, RingCluster
from repro.sim.driver import ProtocolHost
from repro.sim.profiles import ImplementationProfile, DAEMON, LIBRARY
from repro.util.errors import ConfigurationError, FaultError
from repro.util.stats import LatencyStats

#: Stream event kinds recorded by the per-ring group taps.
MSG, CONFIG, RESTART = "m", "c", "r"


def encode_group_payload(group: str, payload: bytes) -> bytes:
    """Frame ``payload`` with its target group for transport on a ring."""
    name = group.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ConfigurationError(f"group name too long: {group!r}")
    return struct.pack("!H", len(name)) + name + payload


def decode_group_payload(data: bytes) -> Tuple[Optional[str], bytes]:
    """Inverse of :func:`encode_group_payload`.

    Returns ``(None, data)`` for frames that were not group-framed, so
    taps stay safe against raw submissions.
    """
    if len(data) < 2:
        return None, bytes(data)
    (length,) = struct.unpack_from("!H", data)
    if len(data) < 2 + length:
        return None, bytes(data)
    try:
        group = data[2 : 2 + length].decode("utf-8")
    except UnicodeDecodeError:
        return None, bytes(data)
    return group, bytes(data[2 + length :])


class GroupStreamTap:
    """Per-ring delivery tap recording group-framed streams per pid.

    Events are ``("m", group, payload)``, ``("c", config_id,
    transitional)``, and ``("r",)`` — the group-aware mirror of the
    conformance tap, shared by the merge API and the sharded oracle.
    (Duck-typed to :class:`~repro.sim.membership_driver.DeliveryTap`.)
    """

    def __init__(self) -> None:
        self.streams: Dict[int, List[tuple]] = {}
        #: Live subscribers (e.g. replicated state machines in
        #: :mod:`repro.apps`): duck-typed objects with ``on_deliver(pid,
        #: group, payload, config_id, origin_ring)``, ``on_config(pid,
        #: configuration)``, and ``on_restart(pid)`` hooks, called in
        #: exact delivery order as events happen — where :meth:`labels`
        #: is a post-hoc read, listeners see the stream *during* the
        #: run, so they can interact with fault timing.
        self.listeners: List[object] = []

    def add_listener(self, listener: object) -> None:
        """Subscribe ``listener`` to live delivery/config/restart events."""
        self.listeners.append(listener)

    def _stream(self, pid: int) -> List[tuple]:
        return self.streams.setdefault(pid, [])

    def on_deliver(self, pid, message, config_id, origin_ring) -> None:
        group, payload = decode_group_payload(bytes(message.payload))
        self._stream(pid).append((MSG, group, payload))
        for listener in self.listeners:
            listener.on_deliver(pid, group, payload, config_id, origin_ring)

    def on_deliver_batch(self, pid, messages, config_id, origin_ring) -> None:
        # Duck-typed taps don't inherit DeliveryTap's fan-out shim, so the
        # batched hook is spelled out: same per-message decode and
        # listener order as len(messages) scalar on_deliver calls, one
        # stream lookup for the run.
        stream_append = self._stream(pid).append
        listeners = self.listeners
        for message in messages:
            group, payload = decode_group_payload(bytes(message.payload))
            stream_append((MSG, group, payload))
            for listener in listeners:
                listener.on_deliver(pid, group, payload, config_id, origin_ring)

    def on_config(self, pid, configuration) -> None:
        self._stream(pid).append(
            (CONFIG, configuration.config_id, configuration.transitional)
        )
        for listener in self.listeners:
            listener.on_config(pid, configuration)

    def on_restart(self, pid) -> None:
        self._stream(pid).append((RESTART,))
        for listener in self.listeners:
            listener.on_restart(pid)

    def labels(
        self, pid: int, groups: Optional[Iterable[str]] = None
    ) -> List[Tuple[str, bytes]]:
        """``(group, payload)`` deliveries of ``pid``, optionally
        restricted to ``groups``."""
        wanted = None if groups is None else set(groups)
        out: List[Tuple[str, bytes]] = []
        for event in self.streams.get(pid, []):
            if event[0] != MSG or event[1] is None:
                continue
            if wanted is None or event[1] in wanted:
                out.append((event[1], event[2]))
        return out


class MultiRingCluster:
    """``num_rings`` independent rings sharing one simulator."""

    def __init__(
        self,
        num_rings: int,
        hosts_per_ring: int,
        membership: bool = True,
        accelerated: bool = True,
        profile: Optional[ImplementationProfile] = None,
        params: NetworkParams = GIGABIT,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        loss_model: Optional[LossModel] = None,
        observer=None,
        shard_map: Optional[ShardMap] = None,
        ring_id_base: int = 1,
        sim: Optional[Simulator] = None,
    ) -> None:
        if num_rings < 1:
            raise ConfigurationError(f"need at least one ring, got {num_rings}")
        if hosts_per_ring < 1:
            raise ConfigurationError(
                f"need at least one host per ring, got {hosts_per_ring}"
            )
        self.num_rings = num_rings
        self.hosts_per_ring = hosts_per_ring
        self.membership = membership
        self.observer = observer
        self.sim = sim if sim is not None else Simulator()
        self.shard_map = shard_map if shard_map is not None else ShardMap(num_rings)
        if self.shard_map.num_rings != num_rings:
            raise ConfigurationError(
                f"shard map covers {self.shard_map.num_rings} rings, "
                f"cluster has {num_rings}"
            )
        self.taps: List[GroupStreamTap] = []
        self.rings: List[object] = []
        if membership:
            # Imported here: membership_driver imports nothing from this
            # package, but keeping the dependency one-way at module load
            # leaves the builder free to import both.
            from repro.sim.membership_driver import MembershipCluster

            for index in range(num_rings):
                tap = GroupStreamTap()
                self.taps.append(tap)
                self.rings.append(
                    MembershipCluster(
                        num_hosts=hosts_per_ring,
                        accelerated=accelerated,
                        profile=profile if profile is not None else DAEMON,
                        params=params,
                        config=config,
                        timeouts=timeouts,
                        loss_model=loss_model,
                        observer=observer,
                        delivery_tap=tap,
                        sim=self.sim,
                        _from_builder=True,
                    )
                )
        else:
            resolved = (config or ProtocolConfig()).validate()
            participant_cls: Type[AcceleratedRingParticipant]
            participant_cls = (
                AcceleratedRingParticipant if accelerated else OriginalRingParticipant
            )
            use_profile = profile if profile is not None else LIBRARY
            for index in range(num_rings):
                topology = build_star(
                    self.sim, hosts_per_ring, params, loss_model=loss_model
                )
                ring_order = topology.host_ids
                drivers: Dict[int, ProtocolHost] = {}
                for pid in ring_order:
                    participant = participant_cls(
                        pid,
                        ring_order,
                        resolved,
                        ring_id=ring_id_base + index,
                        observer=observer,
                        clock=lambda: self.sim.now,
                    )
                    drivers[pid] = ProtocolHost(
                        host=topology.host(pid),
                        participant=participant,
                        profile=use_profile,
                        observer=observer,
                    )
                self.rings.append(
                    RingCluster(
                        sim=self.sim,
                        topology=topology,
                        drivers=drivers,
                        ring_id=ring_id_base + index,
                        observer=observer,
                    )
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def ring(self, index: int):
        try:
            return self.rings[index]
        except IndexError:
            raise FaultError(
                f"unknown ring {index}: cluster has rings 0..{self.num_rings - 1}"
            ) from None

    #: Protocol-mode rings get their initial token ``index * RING_STAGGER``
    #: seconds apart.  Started simultaneously, N identical closed-loop
    #: rings are bit-for-bit clones of each other — every per-ring metric
    #: (the scaling suite's ``latency_us`` most visibly) collapses to the
    #: single-ring value, which hides any cross-ring interference a real
    #: deployment would see.  A sub-token-rotation offset de-phases the
    #: rings while staying far below the workload start time, so it costs
    #: no measured window.  Deterministic: same seed-free value each run.
    RING_STAGGER = 13.7e-6

    def start(self) -> None:
        if self.membership:
            # Membership-mode start sequencing belongs to the membership
            # protocol itself (and the chaos goldens pin its traces).
            for ring in self.rings:
                ring.start()
            return
        stagger = self.RING_STAGGER
        for index, ring in enumerate(self.rings):
            if index == 0:
                ring.start()
            else:
                self.sim.post(stagger * index, ring.start)

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------
    # Group-routed traffic (membership mode)
    # ------------------------------------------------------------------

    def ring_of(self, group: str) -> int:
        return self.shard_map.shard_of(group)

    def sender_of(self, group: str) -> int:
        """The canonical submitting pid for ``group`` on its ring.

        Deterministic per group so per-group delivery order is the
        sender's FIFO submission order — the property the cross-topology
        oracle compares.
        """
        return stable_hash(group) % self.hosts_per_ring

    def submit(
        self,
        group: str,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
        sender: Optional[int] = None,
        payload_size: Optional[int] = None,
    ) -> None:
        """Order ``payload`` within ``group`` on the group's ring."""
        if not self.membership:
            raise ConfigurationError(
                "group-routed submit needs membership mode; protocol-mode "
                "clusters are driven through their per-ring drivers"
            )
        ring = self.rings[self.ring_of(group)]
        pid = sender if sender is not None else self.sender_of(group)
        host = ring.hosts[pid]
        if host.host.crashed or host._paused:
            return
        host.submit(
            payload=encode_group_payload(group, payload),
            service=service,
            payload_size=payload_size,
        )

    # ------------------------------------------------------------------
    # Streams and the cross-shard merge
    # ------------------------------------------------------------------

    def group_stream(
        self,
        ring_index: int,
        pid: int,
        groups: Optional[Iterable[str]] = None,
    ) -> List[Tuple[str, bytes]]:
        """``(group, payload)`` deliveries observed by ``pid`` on one ring."""
        return self.taps[ring_index].labels(pid, groups=groups)

    def merged_stream(
        self,
        groups: Sequence[str],
        vantage: Optional[int] = None,
    ) -> List[Tuple[str, bytes]]:
        """The deterministic cross-shard order a subscriber of
        ``groups`` observes.

        ``vantage`` picks the observing pid on every spanned ring
        (default: the lowest live pid per ring).  Because each ring
        delivers the same order to all its members, every vantage — and
        therefore every subscriber of the same group set — computes the
        identical merge.
        """
        shards = self.shard_map.rings_for(groups)
        wanted = set(groups)
        streams: List[List[Tuple[str, bytes]]] = []
        for shard in shards:
            ring = self.rings[shard]
            if vantage is not None:
                pid = vantage
            else:
                live = ring.live_pids()
                pid = live[0] if live else 0
            streams.append(self.group_stream(shard, pid, groups=wanted))
        return merge_streams(streams)

    # ------------------------------------------------------------------
    # Per-shard EVS checking and convergence
    # ------------------------------------------------------------------

    def check_evs(
        self, crashed: Optional[Mapping[int, frozenset]] = None
    ) -> Dict[int, str]:
        """Run every ring's EVS checker; returns ring → violation text
        for the rings that failed (empty dict == all clean).

        ``crashed`` maps ring index → pids whose guarantees that ring
        waives (the standard crashed-incarnation waiver).
        """
        if not self.membership:
            raise ConfigurationError("protocol-mode rings have no EVS checker")
        violations: Dict[int, str] = {}
        for index, ring in enumerate(self.rings):
            waive = frozenset((crashed or {}).get(index, frozenset()))
            try:
                ring.checker.check(crashed=waive)
            except EvsViolation as exc:
                violations[index] = str(exc)
        return violations

    def converged(self) -> bool:
        """True when every ring's live members share one operational ring."""
        if not self.membership:
            return True
        for ring in self.rings:
            states = ring.states()
            views = set(ring.rings().values())
            if not (
                len(views) == 1
                and all(state == "operational" for state in states.values())
                and len(next(iter(views))) == len(states)
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Fault surface (per ring)
    # ------------------------------------------------------------------

    def crash(self, ring_index: int, pid: int) -> None:
        self.ring(ring_index).crash(pid)

    def restart(self, ring_index: int, pid: int) -> None:
        self.ring(ring_index).restart(pid)

    def pause(self, ring_index: int, pid: int) -> None:
        self.ring(ring_index).pause(pid)

    def resume(self, ring_index: int, pid: int) -> None:
        self.ring(ring_index).resume(pid)

    def partition(self, ring_index: int, *groups) -> None:
        self.ring(ring_index).partition(*groups)

    def heal(self, ring_index: Optional[int] = None) -> None:
        targets = self.rings if ring_index is None else [self.ring(ring_index)]
        for ring in targets:
            ring.heal()

    # ------------------------------------------------------------------
    # Benchmark surface (protocol mode): the single-ring duck type
    # ------------------------------------------------------------------

    @property
    def drivers(self) -> Dict[int, ProtocolHost]:
        """Globally keyed drivers across every ring.

        Global pid = ``ring_index * hosts_per_ring + local_pid``, so the
        existing workload generators drive an N-ring cluster unchanged.
        """
        if self.membership:
            raise ConfigurationError(
                "drivers are a protocol-mode surface; membership clusters "
                "submit through submit(group, ...)"
            )
        merged: Dict[int, ProtocolHost] = {}
        for index, ring in enumerate(self.rings):
            base = index * self.hosts_per_ring
            for pid, driver in ring.drivers.items():
                merged[base + pid] = driver
        return merged

    def driver(self, global_pid: int) -> ProtocolHost:
        return self.drivers[global_pid]

    def set_measure_from(self, time: float) -> None:
        for ring in self.rings:
            ring.set_measure_from(time)

    def aggregate(self) -> ClusterStats:
        """Cluster-wide statistics: latency pooled over every receiver,
        goodput summed across rings (the aggregate ordered-delivery
        rate the sharded system sustains)."""
        if self.membership:
            raise ConfigurationError("aggregate() is a protocol-mode surface")
        latency = LatencyStats()
        goodput = 0.0
        retransmissions = 0
        token_rounds = 0
        messages_sent = 0
        switch_drops = 0
        worst: List[float] = []
        for ring in self.rings:
            stats = ring.aggregate()
            latency.merge(stats.latency)
            goodput += stats.goodput_bps
            retransmissions += stats.retransmissions
            token_rounds = max(token_rounds, stats.token_rounds)
            messages_sent += stats.messages_sent
            switch_drops += stats.switch_drops
            if stats.per_sender_worst_5pct_mean:
                worst.append(stats.per_sender_worst_5pct_mean)
        return ClusterStats(
            latency=latency,
            goodput_bps=goodput,
            retransmissions=retransmissions,
            token_rounds=token_rounds,
            messages_sent=messages_sent,
            switch_drops=switch_drops,
            per_sender_worst_5pct_mean=(sum(worst) / len(worst)) if worst else 0.0,
        )
