"""The deterministic cross-shard merge (Multi-Ring Paxos §M).

Each ring delivers its own total order.  A subscriber joined to groups
on several rings needs *one* order — and every subscriber of the same
group set must observe the same one.  Multi-Ring Paxos solves this with
round-robin delivery: learners consume one message per ring per round,
in ring-index order, and idle rings emit *skip* messages so a quiet
ring never stalls the merge.

Two faces of the same rule live here:

* :func:`merge_streams` — the offline merge of completed per-ring
  streams, used by the oracles: round ``k`` emits the ``k``-th message
  of each ring in ring-index order; an exhausted ring is skipped.  The
  result is a pure function of the per-ring orders, so any two
  subscribers holding identical per-ring streams (which per-ring total
  order guarantees) compute the identical merged order — regardless of
  the wall-clock interleaving in which messages reached them.
* :class:`RoundRobinMerger` — the online, incremental form: push
  per-ring deliveries (and explicit skips, the idle-ring signal) as
  they arrive, drain merged output as soon as the head-of-round is
  available.

What the merge does **not** provide: a temporal or causal order across
rings.  Two messages on different rings are interleaved by round
arithmetic, not by send or delivery time (docs/PROTOCOL.md §11).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence, Tuple, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")

#: Queue entry marking one skip (an idle-ring round-slot).
_SKIP = object()


def merge_streams(streams: Sequence[Sequence[T]]) -> List[T]:
    """Merge completed per-ring streams round-robin by ring index.

    Round ``k`` takes element ``k`` of every stream that still has one,
    in stream (ring-index) order; shorter streams simply drop out of
    later rounds — the offline equivalent of a tail of skips.
    """
    if not streams:
        return []
    merged: List[T] = []
    longest = max(len(stream) for stream in streams)
    for position in range(longest):
        for stream in streams:
            if position < len(stream):
                merged.append(stream[position])
    return merged


class RoundRobinMerger:
    """Incremental round-robin merge over ``num_streams`` ordered feeds.

    ``push(ring, item)`` appends a delivery, ``push_skip(ring)``
    records that the ring's next round-slot is empty (the idle-ring
    signal).  :meth:`drain` emits every merged delivery whose turn has
    come; it stops — without emitting — at the first ring whose next
    slot is still unknown, so output order never depends on arrival
    timing across rings.
    """

    def __init__(self, num_streams: int) -> None:
        if num_streams < 1:
            raise ConfigurationError(
                f"need at least one stream, got {num_streams}"
            )
        self.num_streams = num_streams
        self._queues: Tuple[Deque[object], ...] = tuple(
            deque() for _ in range(num_streams)
        )
        self._turn = 0
        #: Total deliveries (skips excluded) emitted so far.
        self.emitted = 0

    # ------------------------------------------------------------------

    def push(self, stream: int, item: T) -> None:
        self._queues[stream].append(item)

    def push_skip(self, stream: int, count: int = 1) -> None:
        if count < 0:
            raise ConfigurationError(f"skip count must be >= 0, got {count}")
        self._queues[stream].extend(_SKIP for _ in range(count))

    def drain(self) -> List[T]:
        """Emit merged deliveries up to the first unknown round-slot."""
        out: List[T] = []
        while True:
            queue = self._queues[self._turn]
            if not queue:
                return out
            head = queue.popleft()
            self._turn = (self._turn + 1) % self.num_streams
            if head is not _SKIP:
                out.append(head)  # type: ignore[arg-type]
                self.emitted += 1

    def pending(self) -> Tuple[int, ...]:
        """Per-stream count of queued (not yet merged) entries."""
        return tuple(len(queue) for queue in self._queues)
