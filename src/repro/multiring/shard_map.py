"""Deterministic group → ring sharding.

Every daemon, client, and oracle must agree on which ring orders which
group without any coordination, so the mapping has to be a pure
function of the group name.  We use CRC-32 (stable across processes,
machines, and Python versions — unlike ``hash()``, which is salted)
modulo the ring count, with an explicit-assignment escape hatch for
operators who want to pin hot groups to dedicated rings.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.util.errors import ConfigurationError


def stable_hash(name: str) -> int:
    """A process-independent 32-bit hash of ``name``."""
    return zlib.crc32(name.encode("utf-8"))


class ShardMap:
    """Maps Spread group names onto ``num_rings`` independent rings.

    The mapping is total (every name maps somewhere), deterministic
    (same name, same ring, everywhere), and stable under explicit
    overrides: ``assignments`` pins named groups to rings, everything
    else falls through to the hash.

    A single ring is just the N=1 case: every group maps to ring 0 and
    the cross-shard merge degenerates to the ring's own order.
    """

    def __init__(
        self,
        num_rings: int,
        assignments: Optional[Mapping[str, int]] = None,
    ) -> None:
        if num_rings < 1:
            raise ConfigurationError(
                f"need at least one ring, got {num_rings}"
            )
        self.num_rings = num_rings
        self._assignments: Dict[str, int] = dict(assignments or {})
        for group, ring in self._assignments.items():
            if not 0 <= ring < num_rings:
                raise ConfigurationError(
                    f"group {group!r} assigned to ring {ring}, but rings "
                    f"are 0..{num_rings - 1}"
                )

    # ------------------------------------------------------------------

    def shard_of(self, group: str) -> int:
        """The ring that totally orders ``group``."""
        pinned = self._assignments.get(group)
        if pinned is not None:
            return pinned
        return stable_hash(group) % self.num_rings

    def partition(self, groups: Iterable[str]) -> Dict[int, List[str]]:
        """Split ``groups`` by ring, preserving the input order within
        each ring.  Rings appear in ascending index order."""
        by_ring: Dict[int, List[str]] = {}
        for group in groups:
            by_ring.setdefault(self.shard_of(group), []).append(group)
        return {ring: by_ring[ring] for ring in sorted(by_ring)}

    def rings_for(self, groups: Iterable[str]) -> Tuple[int, ...]:
        """The ascending ring indices a subscriber of ``groups`` spans."""
        return tuple(sorted({self.shard_of(group) for group in groups}))

    @property
    def assignments(self) -> Dict[str, int]:
        return dict(self._assignments)

    def __repr__(self) -> str:
        return (
            f"ShardMap(num_rings={self.num_rings}, "
            f"assignments={self._assignments!r})"
        )
