"""Discrete-event network substrate.

This package stands in for the paper's physical testbed (8 servers on a
1 GbE Cisco Catalyst 2960 or a 10 GbE Arista 7100T switch).  It models the
pieces of that environment that drive the paper's results:

* link serialization delay (bytes / bit-rate) at the sending NIC and at
  each switch output port (store-and-forward),
* bounded per-port switch buffering — the buffering that the Accelerated
  Ring protocol exploits to overlap senders,
* a single-threaded host CPU with per-message processing costs,
* separate token and data sockets with bounded receive buffers, enabling
  the priority discipline of paper §III-D,
* receiver-side loss models matching the paper's instrumented-drop
  experiments (§IV-A4).
"""

from repro.net.simulator import Simulator, EventHandle
from repro.net.packet import Frame, PortKind
from repro.net.params import NetworkParams, GIGABIT, TEN_GIGABIT
from repro.net.nic import Nic
from repro.net.switch import Switch
from repro.net.host import SimHost, SocketBuffer, Cpu
from repro.net.loss import (
    LossModel,
    NoLoss,
    UniformLoss,
    PositionalLoss,
    BurstLoss,
)
from repro.net.fragment import fragment_datagram, Reassembler
from repro.net.topology import StarTopology, build_star

__all__ = [
    "Simulator",
    "EventHandle",
    "Frame",
    "PortKind",
    "NetworkParams",
    "GIGABIT",
    "TEN_GIGABIT",
    "Nic",
    "Switch",
    "SimHost",
    "SocketBuffer",
    "Cpu",
    "LossModel",
    "NoLoss",
    "UniformLoss",
    "PositionalLoss",
    "BurstLoss",
    "fragment_datagram",
    "Reassembler",
    "StarTopology",
    "build_star",
]
