"""Leaf–spine fabric topologies: multi-switch data-center networks.

The paper's testbed is one switch; real data centers are fabrics.  Hosts
attach to their rack's leaf (top-of-rack) switch, and racks interconnect
through a spine layer over trunk links that are usually *oversubscribed*:
a rack of eight 1G hosts might share a single 4G trunk, so cross-rack
incast congests the trunk long before any host link saturates.

:class:`LeafSpineSpec` declares such a fabric — rack count, hosts per
rack, trunk oversubscription, per-rack link parameters (mixed 1G/10G
hosts on one ring), and per-rack extra trunk propagation (cross-rack
latency asymmetry) — and :func:`build_leaf_spine` assembles it from the
same :class:`~repro.net.switch.OutputPort` building blocks the star
switch uses, so serialization, propagation, and tail-drop behaviour
price identically per hop.

Fault-surface parity with the star switch is deliberate and exact: the
:class:`Fabric` facade exposes the same ``set_partition`` / ``heal`` /
``add_filter`` / ``remove_filter`` / ``port`` / ``total_drops`` API as
:class:`~repro.net.switch.Switch`, and partitions/filters are consulted
exactly once per (frame, destination) — at the destination leaf's host
port, the same logical point the star switch consults them — so a fault
plan or chaos scenario means the same thing on either topology, and the
fault injector works unchanged.

Frame lifetime through the fabric mirrors the star switch's pooling
discipline: local fan-out enqueues per-destination ``clone_for`` copies;
the multicast original travels up the trunk (or is recycled when there
is nowhere further to go); the spine clones once per remote rack and
recycles; each remote leaf clones per local host and recycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.net.host import SimHost
from repro.net.impair import ImpairmentModel
from repro.net.loss import LossModel
from repro.net.packet import Frame
from repro.net.params import NetworkParams
from repro.net.simulator import Simulator
from repro.net.switch import OutputPort


@dataclass(frozen=True)
class LeafSpineSpec:
    """Declarative description of a leaf–spine fabric.

    Host ids are rack-major: rack ``r`` owns hosts
    ``r*hosts_per_rack .. (r+1)*hosts_per_rack - 1``.

    Attributes:
        racks: number of leaf (top-of-rack) switches.
        hosts_per_rack: hosts attached to each leaf.
        oversubscription: trunk oversubscription factor.  Each rack's
            trunk serializes at ``hosts_per_rack * host_rate /
            oversubscription`` — ``1.0`` is a non-blocking fabric,
            larger values congest the trunk under cross-rack incast.
        rack_params: optional per-rack host-link parameters (one entry
            per rack), letting mixed 1G/10G racks share one ring; racks
            fall back to the cluster-wide params when ``None``.
        rack_trunk_extra_propagation: optional per-rack extra one-way
            propagation on that rack's trunk (cross-rack latency
            asymmetry, e.g. a rack at the far end of the hall).
        trunk_params: optional explicit trunk link parameters, overriding
            the oversubscription-derived rate.
    """

    racks: int = 2
    hosts_per_rack: int = 4
    oversubscription: float = 1.0
    rack_params: Optional[Tuple[NetworkParams, ...]] = None
    rack_trunk_extra_propagation: Optional[Tuple[float, ...]] = None
    trunk_params: Optional[NetworkParams] = None

    def __post_init__(self) -> None:
        # Normalize sequences to tuples so specs stay hashable/frozen.
        if self.rack_params is not None and not isinstance(self.rack_params, tuple):
            object.__setattr__(self, "rack_params", tuple(self.rack_params))
        extra = self.rack_trunk_extra_propagation
        if extra is not None and not isinstance(extra, tuple):
            object.__setattr__(self, "rack_trunk_extra_propagation", tuple(extra))

    @property
    def num_hosts(self) -> int:
        return self.racks * self.hosts_per_rack

    def rack_of(self, host_id: int) -> int:
        return host_id // self.hosts_per_rack

    def rack_members(self, rack: int) -> Tuple[int, ...]:
        base = rack * self.hosts_per_rack
        return tuple(range(base, base + self.hosts_per_rack))

    def validate(self) -> "LeafSpineSpec":
        if self.racks < 1:
            raise ValueError(f"need at least one rack, got {self.racks}")
        if self.hosts_per_rack < 1:
            raise ValueError(
                f"need at least one host per rack, got {self.hosts_per_rack}"
            )
        if self.oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be positive, got {self.oversubscription}"
            )
        if self.rack_params is not None and len(self.rack_params) != self.racks:
            raise ValueError(
                f"rack_params has {len(self.rack_params)} entries "
                f"for {self.racks} racks"
            )
        extra = self.rack_trunk_extra_propagation
        if extra is not None and len(extra) != self.racks:
            raise ValueError(
                f"rack_trunk_extra_propagation has {len(extra)} entries "
                f"for {self.racks} racks"
            )
        return self

    def host_params_for(self, rack: int, default: NetworkParams) -> NetworkParams:
        if self.rack_params is not None:
            return self.rack_params[rack]
        return default

    def trunk_params_for(self, rack: int, default: NetworkParams) -> NetworkParams:
        """Link parameters for one rack's leaf↔spine trunk."""
        host_params = self.host_params_for(rack, default)
        if self.trunk_params is not None:
            trunk = self.trunk_params
        else:
            trunk = replace(
                host_params,
                rate_bps=host_params.rate_bps
                * self.hosts_per_rack
                / self.oversubscription,
            )
        extra = 0.0
        if self.rack_trunk_extra_propagation is not None:
            extra = self.rack_trunk_extra_propagation[rack]
        if extra:
            trunk = replace(trunk, propagation=trunk.propagation + extra)
        return trunk


def _trunk_clone(frame: Frame) -> Frame:
    """A copy of a multicast frame for another trunk (same frame_id)."""
    clone = Frame.acquire(
        frame.src, frame.dst, frame.kind, frame.size, frame.payload, frame.fragment
    )
    clone.frame_id = frame.frame_id
    return clone


class _LeafSwitch:
    """One top-of-rack switch: local host ports plus an optional uplink."""

    def __init__(self, fabric: "Fabric", rack: int, latency: float) -> None:
        self._fabric = fabric
        self._sim = fabric._sim
        self._rack = rack
        self._latency = latency
        self._ports: Dict[int, OutputPort] = {}
        self._fanout: Tuple[Tuple[int, OutputPort], ...] = ()
        #: Trunk to the spine; ``None`` in a single-rack fabric.
        self._uplink: Optional[OutputPort] = None

    def attach(
        self,
        host_id: int,
        deliver: Callable[[Frame], None],
        params: NetworkParams,
    ) -> None:
        if host_id in self._ports:
            raise ValueError(f"host {host_id} already attached")
        self._ports[host_id] = OutputPort(self._sim, params, deliver)
        self._fanout = tuple(self._ports.items())

    def ingress(self, frame: Frame) -> None:
        """A frame has fully arrived from a local host NIC."""
        self._fabric.frames_received += 1
        self._sim.post(self._latency, self._forward_origin, frame)

    def trunk_ingress(self, frame: Frame) -> None:
        """A frame has fully arrived over the spine downlink."""
        self._fabric.frames_transited += 1
        self._sim.post(self._latency, self._forward_remote, frame)

    def _forward_origin(self, frame: Frame) -> None:
        fabric = self._fabric
        if frame.dst is None:
            src = frame.src
            clone_for = frame.clone_for
            for host_id, port in self._fanout:
                if host_id == src:
                    continue
                if fabric._deliverable(frame, host_id):
                    port.enqueue(clone_for(host_id))
            if self._uplink is not None:
                # The ingress original continues up the trunk; the local
                # deliveries above were per-destination clones.
                self._uplink.enqueue(frame)
            else:
                frame.recycle()
        else:
            port = self._ports.get(frame.dst)
            if port is not None:
                if fabric._deliverable(frame, frame.dst):
                    port.enqueue(frame)
            elif self._uplink is not None:
                self._uplink.enqueue(frame)
            else:
                raise KeyError(f"frame for unattached host {frame.dst}")

    def _forward_remote(self, frame: Frame) -> None:
        fabric = self._fabric
        if frame.dst is None:
            clone_for = frame.clone_for
            for host_id, port in self._fanout:
                if fabric._deliverable(frame, host_id):
                    port.enqueue(clone_for(host_id))
            frame.recycle()
        else:
            port = self._ports.get(frame.dst)
            if port is None:
                raise KeyError(f"frame for unattached host {frame.dst}")
            if fabric._deliverable(frame, frame.dst):
                port.enqueue(frame)


class Fabric:
    """Leaf–spine fabric with the single-switch fault surface.

    Drop-in for :class:`~repro.net.switch.Switch` wherever the cluster
    and fault layers touch the network: partitions, filters, per-port
    counters, and ``total_drops`` behave identically, with partition and
    filter checks applied once per (frame, destination) at the
    destination leaf's host port.
    """

    def __init__(self, sim: Simulator, spec: LeafSpineSpec, params: NetworkParams) -> None:
        self._sim = sim
        self.spec = spec
        self.params = params
        #: Spine forwarding latency (the leaf latency comes from each
        #: rack's own host-link params).
        self._latency = params.switch_latency
        self._leaves: List[_LeafSwitch] = []
        self._downlinks: List[OutputPort] = []
        self.frames_received = 0
        #: Frames that crossed the spine into a remote rack.
        self.frames_transited = 0
        self.frames_partitioned = 0
        self.frames_filtered = 0
        self._partition: Dict[int, int] = {}  # host -> partition group
        self._filters: List[Callable[[Frame, int], bool]] = []

        for rack in range(spec.racks):
            host_params = spec.host_params_for(rack, params)
            self._leaves.append(_LeafSwitch(self, rack, host_params.switch_latency))
        if spec.racks > 1:
            for rack, leaf in enumerate(self._leaves):
                trunk = spec.trunk_params_for(rack, params)
                leaf._uplink = OutputPort(
                    sim, trunk, self._uplink_deliver(rack)
                )
                self._downlinks.append(OutputPort(sim, trunk, leaf.trunk_ingress))

    def _uplink_deliver(self, rack: int) -> Callable[[Frame], None]:
        def deliver(frame: Frame) -> None:
            self._spine_ingress(frame, rack)

        return deliver

    # ------------------------------------------------------------------
    # Spine
    # ------------------------------------------------------------------

    def _spine_ingress(self, frame: Frame, from_rack: int) -> None:
        self._sim.post(self._latency, self._spine_forward, frame, from_rack)

    def _spine_forward(self, frame: Frame, from_rack: int) -> None:
        if frame.dst is None:
            for rack, downlink in enumerate(self._downlinks):
                if rack == from_rack:
                    continue
                downlink.enqueue(_trunk_clone(frame))
            frame.recycle()
        else:
            self._downlinks[self.spec.rack_of(frame.dst)].enqueue(frame)

    # ------------------------------------------------------------------
    # Switch-compatible fault surface
    # ------------------------------------------------------------------

    def set_partition(self, *groups) -> None:
        """Partition the network: frames cross only within a group.

        Same semantics as the star switch — the check happens at the
        destination host's leaf port, so a partition cuts cross-rack and
        intra-rack traffic alike.
        """
        self._partition = {}
        for index, group in enumerate(groups):
            for host_id in group:
                self._partition[host_id] = index

    def heal(self) -> None:
        """Remove any partition."""
        self._partition = {}

    def add_filter(self, fn: Callable[[Frame, int], bool]) -> None:
        """Install a drop filter (consulted once per (frame, destination))."""
        self._filters.append(fn)

    def remove_filter(self, fn: Callable[[Frame, int], bool]) -> None:
        """Remove a previously installed filter (no-op if absent)."""
        try:
            self._filters.remove(fn)
        except ValueError:
            pass

    def _deliverable(self, frame: Frame, dst: int) -> bool:
        partition = self._partition
        if partition:
            default = -1
            if partition.get(frame.src, default) != partition.get(dst, default):
                self.frames_partitioned += 1
                return False
        if self._filters:
            for fn in list(self._filters):
                if fn(frame, dst):
                    self.frames_filtered += 1
                    return False
        return True

    def attach(self, host_id: int, deliver: Callable[[Frame], None]) -> None:
        rack = self.spec.rack_of(host_id)
        self._leaves[rack].attach(
            host_id, deliver, self.spec.host_params_for(rack, self.params)
        )

    def leaf_ingress(self, host_id: int) -> Callable[[Frame], None]:
        """The ``on_wire`` entry point for one host (its leaf's ingress)."""
        return self._leaves[self.spec.rack_of(host_id)].ingress

    def port(self, host_id: int) -> OutputPort:
        """The destination-side host port (where drops/queueing surface)."""
        return self._leaves[self.spec.rack_of(host_id)]._ports[host_id]

    def trunk(self, rack: int) -> Tuple[OutputPort, OutputPort]:
        """(uplink, downlink) trunk ports for one rack (multi-rack only)."""
        uplink = self._leaves[rack]._uplink
        if uplink is None:
            raise ValueError("single-rack fabric has no trunks")
        return uplink, self._downlinks[rack]

    @property
    def total_drops(self) -> int:
        drops = 0
        for leaf in self._leaves:
            drops += sum(port.frames_dropped for port in leaf._ports.values())
            if leaf._uplink is not None:
                drops += leaf._uplink.frames_dropped
        drops += sum(port.frames_dropped for port in self._downlinks)
        return drops

    @property
    def peak_trunk_queue_bytes(self) -> int:
        """Worst trunk-buffer depth seen — the incast congestion signal."""
        peaks = [0]
        for leaf in self._leaves:
            if leaf._uplink is not None:
                peaks.append(leaf._uplink.peak_queue_bytes)
        peaks.extend(port.peak_queue_bytes for port in self._downlinks)
        return max(peaks)


@dataclass
class FabricTopology:
    """A leaf–spine fabric plus its attached hosts.

    Duck-types :class:`~repro.net.topology.StarTopology` (``sim`` /
    ``params`` / ``switch`` / ``hosts`` / ``host_ids`` / ``host``) so the
    cluster drivers and fault injector work unchanged, and adds the rack
    map that correlated-failure events resolve against.
    """

    sim: Simulator
    params: NetworkParams
    switch: Fabric
    spec: LeafSpineSpec
    hosts: Dict[int, SimHost] = field(default_factory=dict)

    @property
    def host_ids(self) -> List[int]:
        return sorted(self.hosts)

    def host(self, host_id: int) -> SimHost:
        return self.hosts[host_id]

    @property
    def racks(self) -> Dict[int, Tuple[int, ...]]:
        """rack id -> tuple of member host ids."""
        return {
            rack: self.spec.rack_members(rack) for rack in range(self.spec.racks)
        }


def build_leaf_spine(
    sim: Simulator,
    spec: LeafSpineSpec,
    params: NetworkParams,
    loss_model: Optional[LossModel] = None,
    loss_models: Optional[Mapping[int, LossModel]] = None,
    impairment: Optional[ImpairmentModel] = None,
    impairments: Optional[Mapping[int, ImpairmentModel]] = None,
) -> FabricTopology:
    """Build a leaf–spine fabric and its hosts.

    ``loss_model`` is the shared receiver-side model (as in
    :func:`~repro.net.topology.build_star`); ``loss_models`` overrides it
    per host id.  ``impairment`` / ``impairments`` wrap each host's
    delivery path analogously (see :mod:`repro.net.impair`).
    """
    spec.validate()
    fabric = Fabric(sim, spec, params)
    topology = FabricTopology(sim=sim, params=params, switch=fabric, spec=spec)
    for host_id in range(spec.num_hosts):
        rack = spec.rack_of(host_id)
        host_loss = loss_model
        if loss_models is not None and host_id in loss_models:
            host_loss = loss_models[host_id]
        host = SimHost(
            host_id=host_id,
            sim=sim,
            params=spec.host_params_for(rack, params),
            on_wire=fabric.leaf_ingress(host_id),
            loss_model=host_loss,
        )
        deliver: Callable[[Frame], None] = host.receive
        model = None
        if impairments is not None and host_id in impairments:
            model = impairments[host_id]
        elif impairment is not None:
            model = impairment
        if model is not None:
            deliver = model.wrap(host_id, deliver, sim)
        fabric.attach(host_id, deliver)
        topology.hosts[host_id] = host
    return topology


def build_topology(
    sim: Simulator,
    num_hosts: int,
    params: NetworkParams,
    fabric: Optional[LeafSpineSpec] = None,
    loss_model: Optional[LossModel] = None,
    loss_models: Optional[Mapping[int, LossModel]] = None,
    impairment: Optional[ImpairmentModel] = None,
    impairments: Optional[Mapping[int, ImpairmentModel]] = None,
):
    """Dispatch between the star default and a leaf–spine fabric.

    With no fabric spec and no per-host models this is exactly
    ``build_star(sim, num_hosts, params, loss_model)`` — the event
    schedule (and therefore every golden trace) is unchanged.
    """
    from repro.net.topology import build_star

    if fabric is not None:
        if fabric.num_hosts != num_hosts:
            raise ValueError(
                f"fabric defines {fabric.num_hosts} hosts but the cluster "
                f"wants {num_hosts}"
            )
        return build_leaf_spine(
            sim,
            fabric,
            params,
            loss_model=loss_model,
            loss_models=loss_models,
            impairment=impairment,
            impairments=impairments,
        )
    return build_star(
        sim,
        num_hosts,
        params,
        loss_model=loss_model,
        loss_models=loss_models,
        impairment=impairment,
        impairments=impairments,
    )
