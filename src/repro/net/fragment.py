"""UDP datagram fragmentation and reassembly.

Paper §IV-A3 evaluates 8850-byte payloads carried in UDP datagrams of up
to 9000 bytes: the kernel fragments them into MTU-sized IP fragments, and
"losing a single frame causes the whole datagram to be lost".  This module
reproduces exactly that: a datagram larger than the MTU becomes several
frames sharing a ``(datagram_id, index, total)`` tag, and the receiver's
:class:`Reassembler` only surfaces the datagram once every fragment has
arrived — if any fragment is dropped the datagram never completes (a
garbage-collection hook expires stale partial datagrams).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.net.packet import Frame, PortKind

_datagram_ids = itertools.count(1)


def fragment_datagram(
    src: int,
    dst: Optional[int],
    kind: PortKind,
    size: int,
    payload: Any,
    mtu: int,
) -> List[Frame]:
    """Split one UDP datagram into MTU-sized frames.

    Returns a single unfragmented frame when ``size`` fits in the MTU.
    """
    acquire = Frame.acquire
    if size <= mtu:
        return [acquire(src, dst, kind, size, payload)]
    datagram_id = next(_datagram_ids)
    total = -(-size // mtu)  # ceil division
    frames = []
    remaining = size
    for index in range(total):
        frag_size = min(mtu, remaining)
        remaining -= frag_size
        frames.append(
            acquire(src, dst, kind, frag_size, payload, (datagram_id, index, total))
        )
    return frames


class Reassembler:
    """Per-host IP fragment reassembly buffer."""

    def __init__(self, max_partial: int = 1024) -> None:
        self._partial: Dict[tuple, set] = {}
        self._max_partial = max_partial
        self.datagrams_completed = 0
        self.datagrams_expired = 0

    def accept(self, frame: Frame) -> Optional[Any]:
        """Feed one frame; returns the datagram payload when complete.

        Unfragmented frames complete immediately.  The key includes the
        source host so fragments from different senders never mix.
        """
        if frame.fragment is None:
            self.datagrams_completed += 1
            return frame.payload
        datagram_id, index, total = frame.fragment
        key = (frame.src, datagram_id)
        seen = self._partial.setdefault(key, set())
        seen.add(index)
        if len(seen) == total:
            del self._partial[key]
            self.datagrams_completed += 1
            return frame.payload
        if len(self._partial) > self._max_partial:
            self._expire_oldest()
        return None

    def _expire_oldest(self) -> None:
        # Datagram ids increase monotonically; the smallest id is the
        # stalest partial datagram, which a dropped fragment has orphaned.
        oldest = min(self._partial, key=lambda key: key[1])
        del self._partial[oldest]
        self.datagrams_expired += 1
