"""UDP datagram fragmentation and reassembly.

Paper §IV-A3 evaluates 8850-byte payloads carried in UDP datagrams of up
to 9000 bytes: the kernel fragments them into MTU-sized IP fragments, and
"losing a single frame causes the whole datagram to be lost".  This module
reproduces exactly that: a datagram larger than the MTU becomes several
frames sharing a ``(datagram_id, index, total)`` tag, and the receiver's
:class:`Reassembler` only surfaces the datagram once every fragment has
arrived — if any fragment is dropped the datagram never completes (a
garbage-collection hook expires stale partial datagrams).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.net.packet import Frame, PortKind

_datagram_ids = itertools.count(1)


class CoalescedDatagram:
    """Several data messages riding one simulated UDP datagram.

    ``payload_size`` is the whole frame's wire size (batch header, per-item
    length prefixes, per-item protocol headers, payloads) *minus* one
    protocol data header, so every existing cost expression of the shape
    ``header_bytes + payload_size`` prices the real datagram bytes without
    a coalescing special case.  Like a real multi-message frame, losing
    any fragment of the datagram loses every message in it.
    """

    __slots__ = ("messages", "payload_size")

    def __init__(self, messages: tuple, payload_size: int) -> None:
        self.messages = messages
        self.payload_size = payload_size

    def __repr__(self) -> str:
        return (
            f"CoalescedDatagram({len(self.messages)} messages, "
            f"payload_size={self.payload_size})"
        )


def fragment_datagram(
    src: int,
    dst: Optional[int],
    kind: PortKind,
    size: int,
    payload: Any,
    mtu: int,
) -> List[Frame]:
    """Split one UDP datagram into MTU-sized frames.

    Returns a single unfragmented frame when ``size`` fits in the MTU.
    """
    acquire = Frame.acquire
    if size <= mtu:
        return [acquire(src, dst, kind, size, payload)]
    datagram_id = next(_datagram_ids)
    total = -(-size // mtu)  # ceil division
    frames = []
    remaining = size
    for index in range(total):
        frag_size = min(mtu, remaining)
        remaining -= frag_size
        frames.append(
            acquire(src, dst, kind, frag_size, payload, (datagram_id, index, total))
        )
    return frames


class Reassembler:
    """Per-host IP fragment reassembly buffer.

    Two garbage-collection policies bound the partial-datagram state:

    * a count cap (``max_partial``), always on, evicting the stalest
      partial when the buffer overflows, and
    * an age cap (``max_age`` seconds read off ``clock``), expiring any
      partial whose *first* fragment arrived more than ``max_age`` ago —
      like a kernel's IP reassembly timer.

    The age check runs lazily on the fragmented-accept path (never from
    a scheduled event, so enabling it perturbs no event schedule).  It
    is the defence against partials no overflow will ever evict on a
    quiet link: a datagram orphaned by a dropped fragment, or — the
    subtle one — a *duplicated* final fragment arriving after its
    datagram completed, which re-creates the partial entry with every
    other fragment already consumed, so it can never complete.
    """

    def __init__(
        self,
        max_partial: int = 1024,
        max_age: Optional[float] = None,
        clock: Optional[Any] = None,
    ) -> None:
        #: key -> bitmask of fragment indices seen so far.  An int bitmask
        #: gives the per-index bookkeeping real IP reassembly keeps
        #: (duplicates are harmless: re-setting a bit is a no-op) without
        #: allocating a set per partial datagram on the hot path.
        self._partial: Dict[tuple, int] = {}
        self._max_partial = max_partial
        if max_age is not None and clock is None:
            raise ValueError("max_age needs a clock")
        self._max_age = max_age
        self._clock = clock
        #: key -> time the partial's first fragment arrived.  Keys are
        #: inserted once per partial lifetime and removed on completion
        #: or expiry, so dict order is oldest-first and the expiry scan
        #: stops at the first fresh entry.
        self._first_seen: Dict[tuple, float] = {}
        self.datagrams_completed = 0
        self.datagrams_expired = 0

    def accept(self, frame: Frame) -> Optional[Any]:
        """Feed one frame; returns the datagram payload when complete.

        Unfragmented frames complete immediately.  The key includes the
        source host so fragments from different senders never mix.
        """
        fragment = frame.fragment
        if fragment is None:
            self.datagrams_completed += 1
            return frame.payload
        max_age = self._max_age
        if max_age is not None:
            now = self._clock()
            self._expire_stale(now)
        partial = self._partial
        key = (frame.src, fragment[0])
        seen = partial.get(key, 0) | (1 << fragment[1])
        if seen == (1 << fragment[2]) - 1:
            if key in partial:
                del partial[key]
                self._first_seen.pop(key, None)
            self.datagrams_completed += 1
            return frame.payload
        partial[key] = seen
        if max_age is not None and key not in self._first_seen:
            # Expiry ran first, so a late fragment of an expired
            # datagram starts a fresh partial with a fresh timer.
            self._first_seen[key] = now
        if len(partial) > self._max_partial:
            self._expire_oldest()
        return None

    def _expire_stale(self, now: float) -> None:
        """Drop every partial older than ``max_age``, oldest first."""
        first_seen = self._first_seen
        cutoff = now - self._max_age
        while first_seen:
            key = next(iter(first_seen))
            if first_seen[key] > cutoff:
                break
            del first_seen[key]
            self._partial.pop(key, None)
            self.datagrams_expired += 1

    def _expire_oldest(self) -> None:
        # Datagram ids increase monotonically; the smallest id is the
        # stalest partial datagram, which a dropped fragment has orphaned.
        oldest = min(self._partial, key=lambda key: key[1])
        del self._partial[oldest]
        self._first_seen.pop(oldest, None)
        self.datagrams_expired += 1
