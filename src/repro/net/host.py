"""Simulated host: receive sockets, a single-threaded CPU, and a NIC.

The host mirrors the implementation architecture described in paper
§III-E: token and data messages arrive on *separate sockets* so the
protocol can prioritize one message type over the other, and all protocol
work (receiving, sending, delivering) runs on one CPU core — the paper is
explicit that the daemon must not consume more than a single core.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Deque, Optional, List

from repro.core.transport_core import ByteWindow
from repro.net.loss import LossModel, NoLoss
from repro.net.nic import Nic
from repro.net.packet import Frame, PortKind
from repro.net.params import NetworkParams
from repro.net.ring import FrameRing
from repro.net.simulator import Simulator

# Hoisted enum member for the receive hot path (one global load instead of
# a module global plus an enum attribute lookup per frame).
_DATA = PortKind.DATA


class SocketBuffer(ByteWindow):
    """A bounded kernel receive buffer for one UDP socket.

    Admission accounting (capacity, drop counting, peak depth) comes
    from the shared :class:`~repro.core.transport_core.ByteWindow`;
    frames sit in a preallocated :class:`FrameRing` — steady-state
    push/pop touch only ring slots and index integers, no heap churn.
    ``SimHost.receive`` inlines both against the same field names.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._ring = FrameRing()

    def __len__(self) -> int:
        ring = self._ring
        return ring._tail - ring._head

    def push(self, frame: Frame) -> bool:
        """Enqueue an arriving frame; False means kernel-buffer overflow."""
        if not self.try_reserve(frame.size):
            return False
        self._ring.push(frame)
        return True

    def pop(self) -> Frame:
        frame = self._ring.pop()
        self._queued_bytes -= frame.size
        return frame

    def peek(self) -> Frame:
        return self._ring.peek()

    def clear(self) -> None:
        """Drop every queued frame (kernel buffers are volatile state)."""
        self._ring.clear()
        self._queued_bytes = 0


class Cpu:
    """A single-threaded CPU.

    Work is either *submitted* explicitly (``submit``) or pulled by the
    ``idle_hook`` when the explicit queue is empty.  The protocol driver
    installs an idle hook that reads the next frame from the sockets
    according to the current token/data priority (paper §III-D); explicit
    submissions model work the protocol has already committed to (e.g. the
    sends making up the pre-token and post-token multicast phases).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._queue: Deque[tuple] = deque()
        self._busy = False
        self._stalled = False
        self.idle_hook: Optional[Callable[[], Optional[tuple]]] = None
        self.busy_time = 0.0
        self.tasks_executed = 0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def stalled(self) -> bool:
        return self._stalled

    def stall(self) -> None:
        """Freeze the CPU (GC-pause-style): the in-flight task finishes,
        then nothing runs until :meth:`resume`.  Queued work is kept."""
        self._stalled = True

    def resume(self) -> None:
        """End a stall and pull the next piece of work."""
        if not self._stalled:
            return
        self._stalled = False
        if not self._busy:
            self._start_next()

    def clear(self) -> None:
        """Drop all queued work and any stall (fail-stop: volatile state
        is lost).  An in-flight task's completion event cannot be
        cancelled; its callback is expected to no-op once its owner is
        dead, after which the CPU goes idle."""
        self._queue.clear()
        self._stalled = False

    def submit(self, cost: float, fn: Callable[..., None], *args: object) -> None:
        """Queue ``fn(*args)`` to run for ``cost`` seconds of CPU time.

        Passing arguments positionally (instead of closing over them)
        keeps the per-task cost to one tuple — no closure allocation on
        the per-frame hot path.
        """
        self._queue.append((cost, fn, args))
        if not self._busy:
            self._start_next()

    def kick(self) -> None:
        """Wake the CPU; if idle it will consult the idle hook."""
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self._stalled:
            self._busy = False
            return
        task = None
        if self._queue:
            task = self._queue.popleft()
        elif self.idle_hook is not None:
            task = self.idle_hook()
        if task is None:
            self._busy = False
            return
        try:
            cost, fn, args = task
        except ValueError:  # (cost, fn) from an idle hook predating task args
            cost, fn = task
            args = ()
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        self._busy = True
        self.busy_time += cost
        sim = self._sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim.now + cost, seq, self._finish, (fn, args)))

    def _finish(self, fn: Callable[..., None], args: tuple) -> None:
        # Hot path: one _finish per CPU task.  The dispatch of the next
        # task is inlined (rather than calling _start_next) and the event
        # is pushed straight onto the simulator heap, skipping the
        # Simulator.post call frame.  Must stay semantically identical to
        # _start_next or seeded traces change.
        self.tasks_executed += 1
        fn(*args)
        if self._stalled:
            self._busy = False
            return
        queue = self._queue
        if queue:
            task = queue.popleft()
        else:
            hook = self.idle_hook
            task = hook() if hook is not None else None
            if task is None:
                self._busy = False
                return
        try:
            cost, next_fn, args = task
        except ValueError:  # (cost, fn) from an idle hook predating task args
            cost, next_fn = task
            args = ()
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        self.busy_time += cost
        sim = self._sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim.now + cost, seq, self._finish, (next_fn, args)))


class SimHost:
    """One server in the simulated testbed."""

    def __init__(
        self,
        host_id: int,
        sim: Simulator,
        params: NetworkParams,
        on_wire: Callable[[Frame], None],
        loss_model: Optional[LossModel] = None,
    ) -> None:
        self.host_id = host_id
        self.sim = sim
        self.params = params
        self.nic = Nic(sim, params, on_wire)
        self.cpu = Cpu(sim)
        self.token_socket = SocketBuffer(params.socket_buffer_bytes)
        self.data_socket = SocketBuffer(params.socket_buffer_bytes)
        self.loss_model = loss_model or NoLoss()
        #: Hot-path flag: skip the per-frame ``should_drop`` call entirely
        #: when no loss model is configured.
        self._lossless = loss_model is None or isinstance(self.loss_model, NoLoss)
        self.frames_lost_to_model = 0
        self.frames_intercepted = 0
        self.crashed = False
        #: Receive interceptors: callables ``fn(frame) -> bool`` consulted
        #: before the loss model; any True drops the frame.  The fault
        #: injector installs these for loss bursts scoped to one host.
        self._interceptors: List[Callable[[Frame], bool]] = []

    def socket_for(self, kind: PortKind) -> SocketBuffer:
        return self.token_socket if kind is PortKind.TOKEN else self.data_socket

    def add_interceptor(self, fn: Callable[[Frame], bool]) -> None:
        """Install a receive-side drop interceptor (see ``_interceptors``)."""
        self._interceptors.append(fn)

    def remove_interceptor(self, fn: Callable[[Frame], bool]) -> None:
        """Remove a previously installed interceptor (no-op if absent)."""
        try:
            self._interceptors.remove(fn)
        except ValueError:
            pass

    def receive(self, frame: Frame) -> None:
        """A frame has fully arrived from the switch output port."""
        if self.crashed:
            return
        if self._interceptors:
            for fn in list(self._interceptors):
                if fn(frame):
                    self.frames_intercepted += 1
                    return
        # Paper §IV-A4: each daemon is instrumented to randomly drop a
        # percentage of the *data* messages it receives; token loss is out
        # of scope for the normal-case protocol (handled by membership).
        if frame.kind is _DATA:
            if not self._lossless and self.loss_model.should_drop(self.host_id, frame):
                self.frames_lost_to_model += 1
                return
            socket = self.data_socket
        else:
            socket = self.token_socket
        # SocketBuffer.push inlined (ring push included): one call per
        # received frame saved.  Must mirror FrameRing.push exactly.
        queued = socket._queued_bytes + frame.size
        if queued > socket._capacity:
            socket.frames_dropped += 1
            return
        ring = socket._ring
        tail = ring._tail
        if tail - ring._head > ring._mask:
            ring._grow()
            tail = ring._tail
        ring._slots[tail & ring._mask] = frame
        ring._tail = tail + 1
        socket._queued_bytes = queued
        socket.frames_received += 1
        if queued > socket.peak_queue_bytes:
            socket.peak_queue_bytes = queued
        cpu = self.cpu
        if not cpu._busy:
            cpu._start_next()

    def crash(self) -> None:
        """Stop receiving and processing (fail-stop).

        All volatile state dies with the process: queued CPU work, any
        GC-stall, and the kernel socket buffers.  Leaving any of it
        behind lets a later :meth:`recover` of the same host resurrect
        work belonging to the dead incarnation (a crashed-while-paused
        process would resume executing after restart, violating
        fail-stop)."""
        self.crashed = True
        self.cpu.clear()
        self.token_socket.clear()
        self.data_socket.clear()

    def recover(self) -> None:
        self.crashed = False
        # A restarted process starts with a fresh, unstalled CPU.
        self.cpu.resume()

    def pause(self) -> None:
        """Stall the CPU without dropping frames (GC-stall-style slowdown).

        Arriving frames keep accumulating in the kernel socket buffers,
        exactly as for a live-but-unscheduled process.
        """
        self.cpu.stall()

    def unpause(self) -> None:
        self.cpu.resume()
