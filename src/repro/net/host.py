"""Simulated host: receive sockets, a single-threaded CPU, and a NIC.

The host mirrors the implementation architecture described in paper
§III-E: token and data messages arrive on *separate sockets* so the
protocol can prioritize one message type over the other, and all protocol
work (receiving, sending, delivering) runs on one CPU core — the paper is
explicit that the daemon must not consume more than a single core.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.net.loss import LossModel, NoLoss
from repro.net.nic import Nic
from repro.net.packet import Frame, PortKind
from repro.net.params import NetworkParams
from repro.net.simulator import Simulator


class SocketBuffer:
    """A bounded kernel receive buffer for one UDP socket."""

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = capacity_bytes
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.peak_queue_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def push(self, frame: Frame) -> bool:
        """Enqueue an arriving frame; False means kernel-buffer overflow."""
        if self._queued_bytes + frame.size > self._capacity:
            self.frames_dropped += 1
            return False
        self._queue.append(frame)
        self._queued_bytes += frame.size
        self.frames_received += 1
        if self._queued_bytes > self.peak_queue_bytes:
            self.peak_queue_bytes = self._queued_bytes
        return True

    def pop(self) -> Frame:
        frame = self._queue.popleft()
        self._queued_bytes -= frame.size
        return frame

    def peek(self) -> Frame:
        return self._queue[0]


class Cpu:
    """A single-threaded CPU.

    Work is either *submitted* explicitly (``submit``) or pulled by the
    ``idle_hook`` when the explicit queue is empty.  The protocol driver
    installs an idle hook that reads the next frame from the sockets
    according to the current token/data priority (paper §III-D); explicit
    submissions model work the protocol has already committed to (e.g. the
    sends making up the pre-token and post-token multicast phases).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._queue: Deque[tuple] = deque()
        self._busy = False
        self._stalled = False
        self.idle_hook: Optional[Callable[[], Optional[tuple]]] = None
        self.busy_time = 0.0
        self.tasks_executed = 0

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def stalled(self) -> bool:
        return self._stalled

    def stall(self) -> None:
        """Freeze the CPU (GC-pause-style): the in-flight task finishes,
        then nothing runs until :meth:`resume`.  Queued work is kept."""
        self._stalled = True

    def resume(self) -> None:
        """End a stall and pull the next piece of work."""
        if not self._stalled:
            return
        self._stalled = False
        if not self._busy:
            self._start_next()

    def submit(self, cost: float, fn: Callable[[], None]) -> None:
        """Queue ``fn`` to run for ``cost`` seconds of CPU time."""
        self._queue.append((cost, fn))
        if not self._busy:
            self._start_next()

    def kick(self) -> None:
        """Wake the CPU; if idle it will consult the idle hook."""
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self._stalled:
            self._busy = False
            return
        task = None
        if self._queue:
            task = self._queue.popleft()
        elif self.idle_hook is not None:
            task = self.idle_hook()
        if task is None:
            self._busy = False
            return
        cost, fn = task
        self._busy = True
        self.busy_time += cost
        self._sim.schedule(cost, self._finish, fn)

    def _finish(self, fn: Callable[[], None]) -> None:
        self.tasks_executed += 1
        fn()
        self._start_next()


class SimHost:
    """One server in the simulated testbed."""

    def __init__(
        self,
        host_id: int,
        sim: Simulator,
        params: NetworkParams,
        on_wire: Callable[[Frame], None],
        loss_model: Optional[LossModel] = None,
    ) -> None:
        self.host_id = host_id
        self.sim = sim
        self.params = params
        self.nic = Nic(sim, params, on_wire)
        self.cpu = Cpu(sim)
        self.token_socket = SocketBuffer(params.socket_buffer_bytes)
        self.data_socket = SocketBuffer(params.socket_buffer_bytes)
        self.loss_model = loss_model or NoLoss()
        self.frames_lost_to_model = 0
        self.frames_intercepted = 0
        self.crashed = False
        #: Receive interceptors: callables ``fn(frame) -> bool`` consulted
        #: before the loss model; any True drops the frame.  The fault
        #: injector installs these for loss bursts scoped to one host.
        self._interceptors: List[Callable[[Frame], bool]] = []

    def socket_for(self, kind: PortKind) -> SocketBuffer:
        return self.token_socket if kind is PortKind.TOKEN else self.data_socket

    def add_interceptor(self, fn: Callable[[Frame], bool]) -> None:
        """Install a receive-side drop interceptor (see ``_interceptors``)."""
        self._interceptors.append(fn)

    def remove_interceptor(self, fn: Callable[[Frame], bool]) -> None:
        """Remove a previously installed interceptor (no-op if absent)."""
        try:
            self._interceptors.remove(fn)
        except ValueError:
            pass

    def receive(self, frame: Frame) -> None:
        """A frame has fully arrived from the switch output port."""
        if self.crashed:
            return
        for fn in list(self._interceptors):
            if fn(frame):
                self.frames_intercepted += 1
                return
        # Paper §IV-A4: each daemon is instrumented to randomly drop a
        # percentage of the *data* messages it receives; token loss is out
        # of scope for the normal-case protocol (handled by membership).
        if frame.kind is PortKind.DATA and self.loss_model.should_drop(self.host_id, frame):
            self.frames_lost_to_model += 1
            return
        if self.socket_for(frame.kind).push(frame):
            self.cpu.kick()

    def crash(self) -> None:
        """Stop receiving and processing (fail-stop)."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False
        # A restarted process starts with a fresh, unstalled CPU.
        self.cpu.resume()

    def pause(self) -> None:
        """Stall the CPU without dropping frames (GC-stall-style slowdown).

        Arriving frames keep accumulating in the kernel socket buffers,
        exactly as for a live-but-unscheduled process.
        """
        self.cpu.stall()

    def unpause(self) -> None:
        self.cpu.resume()
