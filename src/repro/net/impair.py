"""Seeded network impairment models: reordering, jitter, duplication.

The loss models in :mod:`repro.net.loss` cover the paper's own adverse
condition (receiver-side data loss, §IV-A4); real data-center fabrics
also *reorder* packets (multi-path fabrics, ECMP rehashes), add
per-packet latency noise, and occasionally duplicate frames.  An
:class:`ImpairmentModel` wraps a host's delivery callable at topology
build time — the default path never pays for the hook — and perturbs
*data* frames only, mirroring the loss-model scope: token and membership
control traffic ride the token port and stay pristine, so the normal-case
token circulation is never impaired directly.

Determinism contract (same as ``loss.py``): every model draws only from
its own :class:`random.Random` — pass ``rng=`` to share one seeded
stream across models and fault injection, or ``seed=`` for a private
stream.  Global ``random`` is never touched, so impaired runs stay
byte-identical per seed (the conftest tripwire enforces this in tests).

One shared model instance may impair several hosts: per-receiver state
(held frames, and the rng *draw order*) lives in the closure created by
:meth:`ImpairmentModel.wrap`, while the rng stream itself is shared, so
the whole cluster's impairment schedule derives from one seed.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.net.packet import Frame, PortKind
from repro.net.simulator import Simulator

_DATA = PortKind.DATA

Deliver = Callable[[Frame], None]


class ImpairmentModel:
    """Base class: wraps a receiver's delivery callable.

    The base implementation is the identity — subclasses return a
    closure that perturbs data frames before handing them to
    ``deliver``.  ``wrap`` is called once per host at topology build
    time; the returned callable sits where the switch output port's
    ``deliver`` target used to be, *before* the host's receive-side
    loss model and fault interceptors (an impairment happens in the
    fabric, a loss model at the receiver's NIC).
    """

    def wrap(self, receiver_id: int, deliver: Deliver, sim: Simulator) -> Deliver:
        return deliver


class JitterModel(ImpairmentModel):
    """Seeded per-frame latency noise on data frames.

    Each data frame is delayed by an extra ``uniform(0, max_jitter)``
    seconds.  Because delays are independent, jitter may reorder data
    frames relative to each other (and relative to undelayed token
    frames) — that is the point: it models variable queueing on
    alternative fabric paths.
    """

    def __init__(
        self,
        max_jitter: float,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_jitter <= 0:
            raise ValueError(f"max_jitter must be positive, got {max_jitter}")
        self.max_jitter = max_jitter
        self._rng = rng if rng is not None else random.Random(seed)
        self.frames_delayed = 0

    def wrap(self, receiver_id: int, deliver: Deliver, sim: Simulator) -> Deliver:
        rng = self._rng
        max_jitter = self.max_jitter

        def jittered(frame: Frame) -> None:
            if frame.kind is not _DATA:
                deliver(frame)
                return
            self.frames_delayed += 1
            sim.post(rng.random() * max_jitter, deliver, frame)

        return jittered


class ReorderModel(ImpairmentModel):
    """Delay a frame past its successors, with a bounded displacement.

    With probability ``rate`` an arriving data frame is *held*; it is
    released only after ``d`` further data frames (``d`` drawn uniformly
    from ``1..max_displacement``) have arrived and been delivered — the
    held frame lands at most ``max_displacement`` positions late in the
    receiver's data stream.  If traffic dries up before enough
    successors arrive (end of a burst, protocol stalled on the gap the
    hold created), a timeout flush delivers the frame anyway so a held
    frame can never be stranded forever.
    """

    def __init__(
        self,
        rate: float,
        max_displacement: int = 3,
        hold_timeout: float = 0.002,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if max_displacement < 1:
            raise ValueError(f"max_displacement must be >= 1, got {max_displacement}")
        if hold_timeout <= 0:
            raise ValueError(f"hold_timeout must be positive, got {hold_timeout}")
        self.rate = rate
        self.max_displacement = max_displacement
        self.hold_timeout = hold_timeout
        self._rng = rng if rng is not None else random.Random(seed)
        self.frames_held = 0
        self.frames_flushed = 0

    def wrap(self, receiver_id: int, deliver: Deliver, sim: Simulator) -> Deliver:
        rng = self._rng
        rate = self.rate
        max_displacement = self.max_displacement
        hold_timeout = self.hold_timeout
        # Held entries: [remaining_successors, frame, released].  The list
        # is per-receiver (closure state); the rng stream is shared.
        held: List[list] = []

        def flush(entry: list) -> None:
            if entry[2]:
                return
            entry[2] = True
            held.remove(entry)
            self.frames_flushed += 1
            deliver(entry[1])

        def reordered(frame: Frame) -> None:
            if frame.kind is not _DATA:
                deliver(frame)
                return
            release = None
            if held:
                release = [entry for entry in held if entry[0] <= 1]
                for entry in held:
                    entry[0] -= 1
                for entry in release:
                    entry[2] = True
                    held.remove(entry)
            if rng.random() < rate:
                entry = [1 + rng.randrange(max_displacement), frame, False]
                held.append(entry)
                self.frames_held += 1
                sim.post(hold_timeout, flush, entry)
            else:
                deliver(frame)
            if release:
                # Released frames land *after* the frame that displaced
                # them — that is the reordering.
                for entry in release:
                    deliver(entry[1])

        return reordered


class DuplicateModel(ImpairmentModel):
    """Deliver an extra copy of a data frame with probability ``rate``.

    The copy is a fresh pooled frame carrying the same ``frame_id`` and
    payload (frame pooling forbids delivering one object twice), arriving
    back-to-back with the original — the common switch-retransmit shape.
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else random.Random(seed)
        self.frames_duplicated = 0

    def wrap(self, receiver_id: int, deliver: Deliver, sim: Simulator) -> Deliver:
        rng = self._rng
        rate = self.rate

        def duplicated(frame: Frame) -> None:
            if frame.kind is not _DATA:
                deliver(frame)
                return
            copy = None
            if rng.random() < rate:
                # Clone before delivering: once delivered, the frame
                # belongs to the receiver and may be recycled.
                copy = frame.clone_for(frame.dst if frame.dst is not None else receiver_id)
                self.frames_duplicated += 1
            deliver(frame)
            if copy is not None:
                deliver(copy)

        return duplicated


def impairment_from_name(
    name: str,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> ImpairmentModel:
    """The shared CLI/soak/conformance impairment presets by name."""
    if name == "reorder":
        return ReorderModel(rate=0.05, max_displacement=3, seed=seed, rng=rng)
    if name == "jitter":
        return JitterModel(max_jitter=20e-6, seed=seed, rng=rng)
    if name == "duplicate":
        return DuplicateModel(rate=0.05, seed=seed, rng=rng)
    raise ValueError(
        f"unknown impairment {name!r} (expected reorder, jitter, or duplicate)"
    )


IMPAIRMENT_NAMES = ("reorder", "jitter", "duplicate")
