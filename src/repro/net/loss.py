"""Receiver-side loss models.

The paper's loss experiments (§IV-A4) instrument each daemon to randomly
drop a percentage of the data messages it receives, independently per
receiver.  Fig. 13 uses a positional variant: each daemon drops 20% of the
messages sent by the daemon a fixed number of ring positions before it.

Randomness discipline: no model ever touches the module-level ``random``
state.  Each stochastic model draws from its own ``random.Random(seed)``,
or — when an ``rng`` instance is passed — from a caller-owned generator,
which is how the fault injector makes mixed loss+fault runs reproducible
from one seed (``repro.faults``).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.net.packet import Frame


class LossModel:
    """Decides whether a receiving host drops an arriving data frame."""

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    """The default: a stable data-center LAN with no induced loss."""

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        return False


class UniformLoss(LossModel):
    """Drop each received data frame i.i.d. with probability ``rate``.

    Loss decisions are independent per receiver (each daemon drops its own
    share), so the system-wide retransmission rate is a multiple of the
    per-daemon rate — the effect the paper highlights.
    """

    def __init__(
        self, rate: float, seed: int = 0, rng: Optional[random.Random] = None
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else random.Random(seed)

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        if self.rate == 0.0:
            return False
        return self._rng.random() < self.rate


class PositionalLoss(LossModel):
    """Fig. 13's loss pattern.

    Each receiver drops ``rate`` of the frames whose *source* is the host
    ``distance`` positions before it in the ring order.  All other frames
    are received normally.
    """

    def __init__(
        self,
        ring_order: Sequence[int],
        distance: int,
        rate: float = 0.2,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 1 <= distance < len(ring_order):
            raise ValueError(f"distance must be in [1, {len(ring_order) - 1}], got {distance}")
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else random.Random(seed)
        # receiver -> the single source it loses from
        self._lossy_source: Dict[int, int] = {}
        n = len(ring_order)
        for index, receiver in enumerate(ring_order):
            self._lossy_source[receiver] = ring_order[(index - distance) % n]

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        if self._lossy_source.get(receiver_id) != frame.src:
            return False
        return self._rng.random() < self.rate


class BurstLoss(LossModel):
    """Correlated loss: once a drop starts, it continues for a burst.

    A two-state Gilbert model: in the good state each frame is dropped with
    probability ``enter_rate`` (and a drop moves to the bad state); in the
    bad state frames are dropped until the burst ends, with expected burst
    length ``burst_length``.
    """

    def __init__(
        self,
        enter_rate: float,
        burst_length: float = 4.0,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= enter_rate < 1.0:
            raise ValueError(f"enter_rate must be in [0, 1), got {enter_rate}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        self.enter_rate = enter_rate
        self.exit_probability = 1.0 / burst_length
        self._rng = rng if rng is not None else random.Random(seed)
        self._in_burst: Dict[int, bool] = {}

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        if self._in_burst.get(receiver_id, False):
            if self._rng.random() < self.exit_probability:
                self._in_burst[receiver_id] = False
            return True
        if self.enter_rate and self._rng.random() < self.enter_rate:
            self._in_burst[receiver_id] = True
            return True
        return False


class ScriptedLoss(LossModel):
    """Deterministic loss for exact-trace tests: drop listed frame payloads.

    ``plan`` maps receiver id to a set of predicate keys; the predicate is
    evaluated against the frame's payload via ``key(payload)``.
    """

    def __init__(self, plan: Optional[Dict[int, set]] = None, key=None) -> None:
        self.plan = plan or {}
        self.key = key or (lambda payload: getattr(payload, "seq", None))
        self.dropped: Dict[int, list] = {}

    def should_drop(self, receiver_id: int, frame: Frame) -> bool:
        wanted = self.plan.get(receiver_id)
        if not wanted:
            return False
        value = self.key(frame.payload)
        if value in wanted:
            wanted.discard(value)
            self.dropped.setdefault(receiver_id, []).append(value)
            return True
        return False
