"""Host network interface: a serializing transmit queue.

The NIC accepts frames from the host CPU instantly (the CPU cost of the
send system call is modelled separately by the host profile) and puts them
on the wire one at a time at the link rate.  The frame reaches the switch
ingress after serialization plus propagation.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Optional

from repro.net.packet import Frame
from repro.net.params import NetworkParams
from repro.net.ring import FrameRing
from repro.net.simulator import Simulator


class Nic:
    """Transmit side of a host's network interface."""

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        on_wire: Callable[[Frame], None],
        tx_queue_bytes: Optional[int] = None,
    ) -> None:
        self._sim = sim
        self._params = params
        self._on_wire = on_wire
        self._ring = FrameRing()
        self._queued_bytes = 0
        self._capacity = tx_queue_bytes if tx_queue_bytes is not None else 4 * 1024 * 1024
        self._busy = False
        # Hoisted for the per-frame hot path; must reproduce
        # params.serialization_delay(size) bit-for-bit.
        self._overhead = params.per_frame_overhead
        self._rate_bps = params.rate_bps
        self._propagation = params.propagation
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0

    @property
    def queue_depth(self) -> int:
        ring = self._ring
        return ring._tail - ring._head

    def send(self, frame: Frame) -> bool:
        """Enqueue a frame for transmission.

        Returns False (and counts a drop) if the transmit queue is full —
        with the protocol's flow control working this should not happen, and
        tests assert it does not.
        """
        if self._queued_bytes + frame.size > self._capacity:
            self.frames_dropped += 1
            return False
        # FrameRing.push inlined (one call per frame sent saved); must
        # mirror the method exactly.
        ring = self._ring
        tail = ring._tail
        if tail - ring._head > ring._mask:
            ring._grow()
            tail = ring._tail
        ring._slots[tail & ring._mask] = frame
        ring._tail = tail + 1
        self._queued_bytes += frame.size
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        ring = self._ring
        head = ring._head
        if head == ring._tail:
            self._busy = False
            return
        self._busy = True
        slots = ring._slots
        index = head & ring._mask
        frame = slots[index]
        slots[index] = None
        ring._head = head + 1
        size = frame.size
        self._queued_bytes -= size
        sim = self._sim
        sim._seq = seq = sim._seq + 1
        heappush(
            sim._queue,
            (sim.now + (size + self._overhead) * 8.0 / self._rate_bps, seq, self._finish, (frame,)),
        )

    def _finish(self, frame: Frame) -> None:
        # Hot path (one call per frame serialized): the propagation post
        # and the next serialization start are pushed straight onto the
        # simulator heap in the same order Simulator.post would assign.
        size = frame.size
        self.frames_sent += 1
        self.bytes_sent += size
        sim = self._sim
        queue = sim._queue
        sim._seq = seq = sim._seq + 1
        heappush(queue, (sim.now + self._propagation, seq, self._on_wire, (frame,)))
        ring = self._ring
        head = ring._head
        if head == ring._tail:
            self._busy = False
            return
        slots = ring._slots
        index = head & ring._mask
        frame = slots[index]
        slots[index] = None
        ring._head = head + 1
        size = frame.size
        self._queued_bytes -= size
        sim._seq = seq = sim._seq + 1
        heappush(
            queue,
            (sim.now + (size + self._overhead) * 8.0 / self._rate_bps, seq, self._finish, (frame,)),
        )
