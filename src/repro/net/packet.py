"""On-wire frame abstraction for the simulated network.

The simulator does not serialize protocol messages to bytes; a
:class:`Frame` carries the live message object plus the *size* it would
occupy on the wire, which is all the timing model needs.  (The real
asyncio runtime in :mod:`repro.runtime` uses the binary codecs in
:mod:`repro.core.codec` instead.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class PortKind(Enum):
    """Which UDP port class a frame travels on.

    The implementations in the paper send tokens and data on different ports
    and receive them on different sockets (§III-E), which is what lets a
    participant prioritize one type over the other.  Membership control
    messages (join / commit token) travel on the token port class.
    """

    DATA = "data"
    TOKEN = "token"


_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """One network frame (one UDP datagram up to the MTU, or one fragment).

    Attributes:
        src: sending host id.
        dst: destination host id, or ``None`` for multicast to every other
            attached host (IP-multicast on the LAN).
        kind: token-port or data-port traffic.
        size: total on-wire bytes, excluding per-frame Ethernet overhead
            (the :class:`~repro.net.params.NetworkParams` adds that).
        payload: the live protocol message object.
        fragment: optional ``(datagram_id, index, total)`` when this frame
            is one IP fragment of a larger UDP datagram.
    """

    src: int
    dst: Optional[int]
    kind: PortKind
    size: int
    payload: Any
    fragment: Optional[tuple] = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def is_multicast(self) -> bool:
        return self.dst is None

    def clone_for(self, dst: int) -> "Frame":
        """A per-destination copy of a multicast frame (same frame_id)."""
        return Frame(
            src=self.src,
            dst=dst,
            kind=self.kind,
            size=self.size,
            payload=self.payload,
            fragment=self.fragment,
            frame_id=self.frame_id,
        )
