"""On-wire frame abstraction for the simulated network.

The simulator does not serialize protocol messages to bytes; a
:class:`Frame` carries the live message object plus the *size* it would
occupy on the wire, which is all the timing model needs.  (The real
asyncio runtime in :mod:`repro.runtime` uses the binary codecs in
:mod:`repro.core.codec` instead.)

Frames are the most-allocated objects in a benchmark run (one per
fragment per destination), so the class is a hand-written ``__slots__``
class backed by a bounded free list: :meth:`Frame.acquire` reuses a
recycled instance when one is available, and the switch/driver hot paths
call :meth:`Frame.recycle` on frames they know are dead (multicast
originals after fan-out, per-destination clones after reassembly).
Recycling is purely an allocation optimization — a frame that is never
recycled is simply collected by the GC.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, List, Optional


class PortKind(Enum):
    """Which UDP port class a frame travels on.

    The implementations in the paper send tokens and data on different ports
    and receive them on different sockets (§III-E), which is what lets a
    participant prioritize one type over the other.  Membership control
    messages (join / commit token) travel on the token port class.
    """

    DATA = "data"
    TOKEN = "token"


_frame_ids = itertools.count(1)

#: Bounded free list of recycled frames (module-level, like the id counter).
_pool: List["Frame"] = []
_POOL_CAP = 4096


class Frame:
    """One network frame (one UDP datagram up to the MTU, or one fragment).

    Attributes:
        src: sending host id.
        dst: destination host id, or ``None`` for multicast to every other
            attached host (IP-multicast on the LAN).
        kind: token-port or data-port traffic.
        size: total on-wire bytes, excluding per-frame Ethernet overhead
            (the :class:`~repro.net.params.NetworkParams` adds that).
        payload: the live protocol message object.
        fragment: optional ``(datagram_id, index, total)`` when this frame
            is one IP fragment of a larger UDP datagram.
    """

    __slots__ = ("src", "dst", "kind", "size", "payload", "fragment", "frame_id")

    def __init__(
        self,
        src: int,
        dst: Optional[int],
        kind: PortKind,
        size: int,
        payload: Any,
        fragment: Optional[tuple] = None,
        frame_id: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.payload = payload
        self.fragment = fragment
        self.frame_id = frame_id if frame_id is not None else next(_frame_ids)

    def __repr__(self) -> str:
        return (
            f"Frame(src={self.src}, dst={self.dst}, kind={self.kind}, "
            f"size={self.size}, payload={self.payload!r}, "
            f"fragment={self.fragment}, frame_id={self.frame_id})"
        )

    # ------------------------------------------------------------------
    # Pooling
    # ------------------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        src: int,
        dst: Optional[int],
        kind: PortKind,
        size: int,
        payload: Any,
        fragment: Optional[tuple] = None,
    ) -> "Frame":
        """Like the constructor, but reuses a recycled frame when available.

        A fresh ``frame_id`` is always assigned.
        """
        if _pool:
            frame = _pool.pop()
            frame.src = src
            frame.dst = dst
            frame.kind = kind
            frame.size = size
            frame.payload = payload
            frame.fragment = fragment
            frame.frame_id = next(_frame_ids)
            return frame
        return cls(src, dst, kind, size, payload, fragment)

    def recycle(self) -> None:
        """Return this frame to the free list.

        Only call when no other component can still reference the frame
        (the caller owns it).  Payload references are dropped so recycled
        frames never pin protocol messages alive.
        """
        if len(_pool) < _POOL_CAP:
            self.payload = None
            self.fragment = None
            _pool.append(self)

    # ------------------------------------------------------------------

    def is_multicast(self) -> bool:
        return self.dst is None

    def clone_for(self, dst: int) -> "Frame":
        """A per-destination copy of a multicast frame (same frame_id)."""
        if _pool:
            frame = _pool.pop()
            frame.src = self.src
            frame.dst = dst
            frame.kind = self.kind
            frame.size = self.size
            frame.payload = self.payload
            frame.fragment = self.fragment
            frame.frame_id = self.frame_id
            return frame
        return Frame(
            src=self.src,
            dst=dst,
            kind=self.kind,
            size=self.size,
            payload=self.payload,
            fragment=self.fragment,
            frame_id=self.frame_id,
        )
