"""Network parameter presets for the simulated testbed.

``GIGABIT`` models the paper's 1 GbE Cisco Catalyst 2960 fabric and
``TEN_GIGABIT`` the 10 GbE Arista 7100T fabric.  Values are calibrated once
against the operating points the paper reports and then frozen (see
DESIGN.md §6); benchmarks never adjust them per-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import Gbps, usec


@dataclass(frozen=True)
class NetworkParams:
    """Timing and buffering constants for one fabric.

    Attributes:
        rate_bps: link bit-rate (host NIC and switch port are symmetric).
        switch_latency: switch forwarding decision latency, excluding
            store-and-forward serialization (which the model applies at the
            output port).
        propagation: one-way cable propagation delay.
        switch_buffer_bytes: per-output-port buffer.  Tail drop beyond it.
            This buffering is exactly what the Accelerated Ring protocol
            "compensates for, and even benefits from" (paper §I).
        socket_buffer_bytes: per-socket kernel receive buffer on hosts.
        per_frame_overhead: bytes added to every frame on the wire
            (Ethernet header + FCS + preamble + inter-frame gap + IP + UDP).
        mtu: maximum bytes of protocol message per frame; larger UDP
            datagrams are fragmented at the "kernel" (paper §IV-A3).
    """

    rate_bps: float
    switch_latency: float
    propagation: float
    switch_buffer_bytes: int
    socket_buffer_bytes: int
    per_frame_overhead: int = 66
    mtu: int = 1500

    def serialization_delay(self, size: int) -> float:
        """Time to put ``size`` protocol bytes (plus overhead) on the wire."""
        return (size + self.per_frame_overhead) * 8.0 / self.rate_bps

    def with_mtu(self, mtu: int) -> "NetworkParams":
        return replace(self, mtu=mtu)


#: 1-gigabit fabric (Cisco Catalyst 2960 class: store-and-forward, modest
#: per-port buffers).
GIGABIT = NetworkParams(
    rate_bps=Gbps(1),
    switch_latency=usec(4.0),
    propagation=usec(0.3),
    switch_buffer_bytes=256 * 1024,
    socket_buffer_bytes=2 * 1024 * 1024,
)

#: 10-gigabit fabric (Arista 7100T class: low-latency, larger buffers).
TEN_GIGABIT = NetworkParams(
    rate_bps=Gbps(10),
    switch_latency=usec(1.2),
    propagation=usec(0.3),
    switch_buffer_bytes=1024 * 1024,
    socket_buffer_bytes=4 * 1024 * 1024,
)
