"""Preallocated frame ring: the zero-allocation receive/transmit queue.

Every per-frame queue in the simulated network (kernel socket buffers,
NIC transmit queue, switch output ports) holds frames between a producer
and a single consumer.  A ``collections.deque`` serves that fine, but it
allocates internal blocks as it grows and shrinks; under a steady-state
token round that is the last remaining per-frame heap churn in
``repro.net``.  ``FrameRing`` replaces it with a preallocated power-of-2
slot list addressed by monotonically increasing head/tail indices and a
bit mask — pushing and popping in steady state touch only existing slots
and two integers, allocating nothing.

Hot paths (``SimHost.receive``, ``ProtocolHost._select_work``, the NIC
and switch-port serializers) inline these operations against the
``_slots``/``_mask``/``_head``/``_tail`` fields directly, the same way
they already inline ``SocketBuffer.push``; the methods here are the
reference implementation and the API for non-hot callers.  Any inline
must keep the exact semantics (grow when full, slot freed on pop) or the
two copies drift.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Frame

#: Default initial capacity (slots).  Steady-state queue depths are
#: bounded by flow control (global_window=150 frames system-wide), so
#: rings rarely grow past their initial size; growth is transient
#: start-up cost, not per-frame cost.
DEFAULT_CAPACITY = 256


class FrameRing:
    """A power-of-2 ring of frame slots with head/tail index arithmetic."""

    __slots__ = ("_slots", "_mask", "_head", "_tail")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        size = 1
        while size < capacity:
            size <<= 1
        self._slots: List[Optional[Frame]] = [None] * size
        self._mask = size - 1
        #: Next index to pop; increases monotonically (never wrapped —
        #: the mask does the wrapping, and Python ints don't overflow).
        self._head = 0
        #: Next index to push.
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def __bool__(self) -> bool:
        return self._tail != self._head

    def push(self, frame: Frame) -> None:
        tail = self._tail
        if tail - self._head > self._mask:
            # _grow rebases the indices (head becomes 0): re-read tail.
            self._grow()
            tail = self._tail
        self._slots[tail & self._mask] = frame
        self._tail = tail + 1

    def pop(self) -> Frame:
        head = self._head
        if head == self._tail:
            raise IndexError("pop from an empty FrameRing")
        slots = self._slots
        index = head & self._mask
        frame = slots[index]
        # Free the slot so the ring never pins a frame (pooled frames are
        # recycled and reused while still referenced by a stale slot
        # otherwise, which is harmless for correctness but confuses leak
        # accounting and keeps payload buffers alive).
        slots[index] = None
        self._head = head + 1
        return frame  # type: ignore[return-value]

    def peek(self) -> Frame:
        if self._head == self._tail:
            raise IndexError("peek at an empty FrameRing")
        return self._slots[self._head & self._mask]  # type: ignore[return-value]

    def clear(self) -> None:
        slots = self._slots
        for index in range(len(slots)):
            slots[index] = None
        self._head = 0
        self._tail = 0

    def _grow(self) -> None:
        """Double the slot array, relinking live frames in order.

        Runs only when the ring is completely full — transient warm-up
        or a pathological burst — never in steady state.
        """
        old = self._slots
        old_mask = self._mask
        head = self._head
        count = self._tail - head
        size = (old_mask + 1) * 2
        slots: List[Optional[Frame]] = [None] * size
        for offset in range(count):
            slots[offset] = old[(head + offset) & old_mask]
        self._slots = slots
        self._mask = size - 1
        self._head = 0
        self._tail = count
