"""Re-export of :class:`FrameRing` from the shared transport core.

``FrameRing`` began life here as the simulator's zero-allocation
receive/transmit queue; it now lives in
:mod:`repro.core.transport_core`, where the asyncio runtime shares it
for its datagram receive queues.  This module remains the import path
used by the simulated network stack (``repro.net.host``,
``repro.net.nic``, ``repro.net.switch``) and its tests.
"""

from __future__ import annotations

from repro.core.transport_core import DEFAULT_CAPACITY, FrameRing

__all__ = ["DEFAULT_CAPACITY", "FrameRing"]
