"""Deterministic discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence, callback,
args)`` entries.  The monotonically increasing sequence number makes
execution order deterministic when events share a timestamp, which the
test-suite relies on for exact-trace assertions.

Hot-path design notes (the simulator dominates benchmark wall time):

* Heap entries are plain tuples, so ``heapq`` compares them with C-level
  tuple comparison instead of calling a Python ``__lt__`` per comparison.
  ``(time, seq)`` is unique, so later tuple elements are never compared.
* :meth:`Simulator.post` is the fire-and-forget fast path used by the
  network models (NIC, switch, CPU): it pushes a bare tuple and skips
  allocating an :class:`EventHandle`.  :meth:`schedule` keeps the
  cancellable-handle API for timers.
* :meth:`run` inlines the pop/dispatch loop with all lookups bound to
  locals and dispatches same-timestamp batches without re-entering
  :meth:`step`.
* Cancellation stays lazy, but the heap is compacted whenever cancelled
  entries exceed half the queue (see :meth:`_compact`), so timer-heavy
  workloads cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Sentinel marking a heap entry whose third element is an EventHandle
#: (cancellable) rather than a bare callback.
_HANDLE = object()

#: Compaction is considered once the queue holds this many entries.
_COMPACT_MIN = 64


class EventHandle:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped.  This keeps :meth:`Simulator.schedule` and cancel both
    O(log n) amortized; the owning simulator compacts the heap when more
    than half of it is cancelled entries.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled timers don't pin protocol state alive.
        self.callback = _noop
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """A discrete-event simulator clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def cancelled_pending(self) -> int:
        """Cancelled handles still occupying heap slots."""
        return self._cancelled_pending

    @property
    def pending_events(self) -> int:
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns a cancellable :class:`EventHandle`.  Callers that never
        cancel should prefer :meth:`post`, which is cheaper.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} < now {self.now}")
        self._seq = seq = self._seq + 1
        event = EventHandle(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, event, _HANDLE))
        return event

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget fast path: like :meth:`schedule` but without
        allocating a cancellable handle.  Used by the per-frame network
        hot paths (NIC serialization, switch forwarding, CPU tasks)."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, callback, args))

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Absolute-time variant of :meth:`post`."""
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} < now {self.now}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """A handle in the queue was cancelled; compact when the heap is
        mostly dead weight (> 50% cancelled entries)."""
        self._cancelled_pending += 1
        if (
            len(self._queue) >= _COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``(time, seq)`` totally orders live entries, so compaction never
        changes dispatch order — it only frees memory and shrinks every
        subsequent push/pop.

        The list is mutated *in place*: :meth:`run` and :meth:`step` hold
        a local reference to it across callbacks, and compaction can be
        triggered from inside a callback (any timer ``cancel()``).
        Rebinding ``self._queue`` here would leave the dispatch loop
        draining a stale copy and re-dispatch every live entry.
        """
        queue = self._queue
        queue[:] = [
            entry for entry in queue if entry[3] is not _HANDLE or not entry[2].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, callback, args = heapq.heappop(queue)
            if args is _HANDLE:
                handle = callback
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                callback = handle.callback
                args = handle.args
            self.now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue empties earlier, so rate meters see a full window.
        """
        queue = self._queue
        pop = heapq.heappop
        handle_tag = _HANDLE
        events_processed = self._events_processed
        try:
            if max_events is None and until is not None:
                # Benchmark fast path: no per-event max_events check, the
                # clock is written once per same-timestamp batch, and each
                # batch runs without re-checking `until` (equal-time events
                # cannot exceed it once the first one passed).
                while queue:
                    time = queue[0][0]
                    if time > until:
                        self.now = until
                        return
                    self.now = time
                    while queue and queue[0][0] == time:
                        _t, _seq, callback, args = pop(queue)
                        if args is handle_tag:
                            handle = callback
                            if handle.cancelled:
                                self._cancelled_pending -= 1
                                continue
                            callback = handle.callback
                            args = handle.args
                        events_processed += 1
                        callback(*args)
                # Queue drained before `until`: advance the clock so rate
                # meters still see the full window.
                if self.now < until:
                    self.now = until
                return
            processed = 0
            while queue:
                if max_events is not None and processed >= max_events:
                    return
                head = queue[0]
                time = head[0]
                if until is not None and time > until:
                    self.now = until
                    return
                _t, _seq, callback, args = pop(queue)
                if args is handle_tag:
                    handle = callback
                    if handle.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    callback = handle.callback
                    args = handle.args
                self.now = time
                events_processed += 1
                processed += 1
                callback(*args)
        finally:
            self._events_processed = events_processed
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain (with a runaway backstop)."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise RuntimeError(f"simulation did not go idle within {max_events} events")
