"""Deterministic discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, sequence, callback)``
entries.  The monotonically increasing sequence number makes execution order
deterministic when events share a timestamp, which the test-suite relies on
for exact-trace assertions.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class EventHandle:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped.  This keeps :meth:`Simulator.schedule` and cancel both O(log n)
    amortized.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references so cancelled timers don't pin protocol state alive.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """A discrete-event simulator clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} < now {self.now}")
        self._seq += 1
        event = EventHandle(time, self._seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue empties earlier, so rate meters see a full window.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
            processed += 1
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain (with a runaway backstop)."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise RuntimeError(f"simulation did not go idle within {max_events} events")
