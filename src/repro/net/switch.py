"""Store-and-forward switch with bounded per-port output buffers.

Multicast frames are replicated to every attached port except the
ingress port, the way an IGMP-snooping data-center switch delivers
IP-multicast on a LAN.  Each output port serializes independently at the
link rate; when two hosts transmit simultaneously (which the Accelerated
Ring protocol deliberately provokes) the frames interleave in the port
buffers instead of colliding — this buffering is the physical mechanism
behind the protocol's controlled parallelism.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, List, Tuple

from repro.net.packet import Frame
from repro.net.params import NetworkParams
from repro.net.ring import FrameRing
from repro.net.simulator import Simulator


class OutputPort:
    """One switch output port: a bounded byte queue draining at link rate."""

    def __init__(
        self,
        sim: Simulator,
        params: NetworkParams,
        deliver: Callable[[Frame], None],
    ) -> None:
        self._sim = sim
        self._params = params
        self._deliver = deliver
        self._ring = FrameRing()
        self._queued_bytes = 0
        self._busy = False
        # Hoisted for the per-frame hot path; must reproduce
        # params.serialization_delay(size) bit-for-bit.
        self._overhead = params.per_frame_overhead
        self._rate_bps = params.rate_bps
        self._propagation = params.propagation
        self._capacity = params.switch_buffer_bytes
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.peak_queue_bytes = 0

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def enqueue(self, frame: Frame) -> bool:
        size = frame.size
        queued = self._queued_bytes + size
        if queued > self._capacity:
            self.frames_dropped += 1
            return False
        # FrameRing.push inlined (one call per forwarded copy saved);
        # must mirror the method exactly.
        ring = self._ring
        tail = ring._tail
        if tail - ring._head > ring._mask:
            ring._grow()
            tail = ring._tail
        ring._slots[tail & ring._mask] = frame
        ring._tail = tail + 1
        self._queued_bytes = queued
        if queued > self.peak_queue_bytes:
            self.peak_queue_bytes = queued
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        ring = self._ring
        head = ring._head
        if head == ring._tail:
            self._busy = False
            return
        self._busy = True
        slots = ring._slots
        index = head & ring._mask
        frame = slots[index]
        slots[index] = None
        ring._head = head + 1
        size = frame.size
        self._queued_bytes -= size
        sim = self._sim
        sim._seq = seq = sim._seq + 1
        heappush(
            sim._queue,
            (sim.now + (size + self._overhead) * 8.0 / self._rate_bps, seq, self._finish, (frame,)),
        )

    def _finish(self, frame: Frame) -> None:
        # Hot path (one call per frame per output port): propagation post
        # and next serialization start pushed straight onto the simulator
        # heap, in the same order Simulator.post would assign.
        self.frames_forwarded += 1
        sim = self._sim
        queue = sim._queue
        sim._seq = seq = sim._seq + 1
        heappush(queue, (sim.now + self._propagation, seq, self._deliver, (frame,)))
        ring = self._ring
        head = ring._head
        if head == ring._tail:
            self._busy = False
            return
        slots = ring._slots
        index = head & ring._mask
        frame = slots[index]
        slots[index] = None
        ring._head = head + 1
        size = frame.size
        self._queued_bytes -= size
        sim._seq = seq = sim._seq + 1
        heappush(
            queue,
            (sim.now + (size + self._overhead) * 8.0 / self._rate_bps, seq, self._finish, (frame,)),
        )


class Switch:
    """A single switch connecting every host in the (star) testbed."""

    def __init__(self, sim: Simulator, params: NetworkParams) -> None:
        self._sim = sim
        self._params = params
        self._latency = params.switch_latency
        self._ports: Dict[int, OutputPort] = {}
        #: (host_id, port) pairs frozen at attach time; the multicast
        #: fan-out loop iterates this tuple instead of a dict view (one
        #: fewer iterator protocol round-trip per ingress frame).
        self._fanout: Tuple[Tuple[int, OutputPort], ...] = ()
        self.frames_received = 0
        self.frames_partitioned = 0
        self.frames_filtered = 0
        self._partition: Dict[int, int] = {}  # host -> partition group
        #: Frame filters: callables ``fn(frame, dst) -> bool`` consulted once
        #: per (frame, destination) pair during forwarding; any True drops
        #: that copy.  The fault injector installs these for token drops and
        #: link-level loss without monkey-patching the forwarding path.
        self._filters: List[Callable[[Frame, int], bool]] = []

    def set_partition(self, *groups) -> None:
        """Partition the network: frames cross only within a group.

        Hosts not named in any group form an implicit group of their own.
        Call :meth:`heal` to restore full connectivity — the membership
        layer will then merge the rings.
        """
        self._partition = {}
        for index, group in enumerate(groups):
            for host_id in group:
                self._partition[host_id] = index

    def heal(self) -> None:
        """Remove any partition."""
        self._partition = {}

    def add_filter(self, fn: Callable[[Frame, int], bool]) -> None:
        """Install a drop filter (see ``_filters``)."""
        self._filters.append(fn)

    def remove_filter(self, fn: Callable[[Frame, int], bool]) -> None:
        """Remove a previously installed filter (no-op if absent)."""
        try:
            self._filters.remove(fn)
        except ValueError:
            pass

    def _filtered(self, frame: Frame, dst: int) -> bool:
        if not self._filters:
            return False
        for fn in list(self._filters):
            if fn(frame, dst):
                self.frames_filtered += 1
                return True
        return False

    def _connected(self, src: int, dst: int) -> bool:
        if not self._partition:
            return True
        default = -1
        return self._partition.get(src, default) == self._partition.get(dst, default)

    def attach(self, host_id: int, deliver: Callable[[Frame], None]) -> None:
        if host_id in self._ports:
            raise ValueError(f"host {host_id} already attached")
        self._ports[host_id] = OutputPort(self._sim, self._params, deliver)
        self._fanout = tuple(self._ports.items())

    def port(self, host_id: int) -> OutputPort:
        return self._ports[host_id]

    @property
    def total_drops(self) -> int:
        return sum(port.frames_dropped for port in self._ports.values())

    def ingress(self, frame: Frame) -> None:
        """A frame has fully arrived from a host NIC."""
        self.frames_received += 1
        sim = self._sim
        sim._seq = seq = sim._seq + 1
        heappush(
            sim._queue,
            (sim.now + self._latency, seq, self._forward, (frame,)),
        )

    def _forward(self, frame: Frame) -> None:
        # Hot path: partition/filter checks are hoisted so the common
        # (unpartitioned, unfiltered) case costs no extra method calls.
        partition = self._partition
        filters = self._filters
        if frame.dst is None:
            src = frame.src
            clone_for = frame.clone_for
            for host_id, port in self._fanout:
                if host_id == src:
                    continue
                if partition and not self._connected(src, host_id):
                    self.frames_partitioned += 1
                    continue
                if filters and self._filtered(frame, host_id):
                    continue
                port.enqueue(clone_for(host_id))
            # The fan-out copies are what travels on; the ingress original
            # is dead now and can return to the frame pool.
            frame.recycle()
        else:
            port = self._ports.get(frame.dst)
            if port is None:
                raise KeyError(f"frame for unattached host {frame.dst}")
            if partition and not self._connected(frame.src, frame.dst):
                self.frames_partitioned += 1
                return
            if filters and self._filtered(frame, frame.dst):
                return
            port.enqueue(frame)
