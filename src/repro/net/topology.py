"""Testbed topology builder.

The paper's testbed is 8 servers on one switch; :func:`build_star` builds
that star.  Hosts are attached in id order, which also defines the default
ring order used by the protocol layer.  Multi-switch fabrics live in
:mod:`repro.net.fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.net.host import SimHost
from repro.net.impair import ImpairmentModel
from repro.net.loss import LossModel
from repro.net.packet import Frame
from repro.net.params import NetworkParams
from repro.net.simulator import Simulator
from repro.net.switch import Switch


@dataclass
class StarTopology:
    """One switch plus its attached hosts."""

    sim: Simulator
    params: NetworkParams
    switch: Switch
    hosts: Dict[int, SimHost] = field(default_factory=dict)

    @property
    def host_ids(self) -> List[int]:
        return sorted(self.hosts)

    def host(self, host_id: int) -> SimHost:
        return self.hosts[host_id]


def build_star(
    sim: Simulator,
    num_hosts: int,
    params: NetworkParams,
    loss_model: Optional[LossModel] = None,
    loss_models: Optional[Mapping[int, LossModel]] = None,
    impairment: Optional[ImpairmentModel] = None,
    impairments: Optional[Mapping[int, ImpairmentModel]] = None,
) -> StarTopology:
    """Build ``num_hosts`` hosts around a single switch.

    The same ``loss_model`` instance is shared by every host; models keyed
    on receiver id (all of ours) behave independently per host.
    ``loss_models`` overrides the shared model for specific host ids.
    ``impairment`` wraps every host's delivery path with one shared
    :class:`~repro.net.impair.ImpairmentModel`; ``impairments`` overrides
    it per host id.  With none of these given, the wiring (and the event
    schedule it produces) is identical to the historical builder.
    """
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    switch = Switch(sim, params)
    topology = StarTopology(sim=sim, params=params, switch=switch)
    for host_id in range(num_hosts):
        host_loss = loss_model
        if loss_models is not None and host_id in loss_models:
            host_loss = loss_models[host_id]
        host = SimHost(
            host_id=host_id,
            sim=sim,
            params=params,
            on_wire=switch.ingress,
            loss_model=host_loss,
        )
        deliver: Callable[[Frame], None] = host.receive
        model = None
        if impairments is not None and host_id in impairments:
            model = impairments[host_id]
        elif impairment is not None:
            model = impairment
        if model is not None:
            deliver = model.wrap(host_id, deliver, sim)
        switch.attach(host_id, deliver)
        topology.hosts[host_id] = host
    return topology
