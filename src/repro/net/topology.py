"""Testbed topology builder.

The paper's testbed is 8 servers on one switch; :func:`build_star` builds
that star.  Hosts are attached in id order, which also defines the default
ring order used by the protocol layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.host import SimHost
from repro.net.loss import LossModel
from repro.net.params import NetworkParams
from repro.net.simulator import Simulator
from repro.net.switch import Switch


@dataclass
class StarTopology:
    """One switch plus its attached hosts."""

    sim: Simulator
    params: NetworkParams
    switch: Switch
    hosts: Dict[int, SimHost] = field(default_factory=dict)

    @property
    def host_ids(self) -> List[int]:
        return sorted(self.hosts)

    def host(self, host_id: int) -> SimHost:
        return self.hosts[host_id]


def build_star(
    sim: Simulator,
    num_hosts: int,
    params: NetworkParams,
    loss_model: Optional[LossModel] = None,
) -> StarTopology:
    """Build ``num_hosts`` hosts around a single switch.

    The same ``loss_model`` instance is shared by every host; models keyed
    on receiver id (all of ours) behave independently per host.
    """
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    switch = Switch(sim, params)
    topology = StarTopology(sim=sim, params=params, switch=switch)
    for host_id in range(num_hosts):
        host = SimHost(
            host_id=host_id,
            sim=sim,
            params=params,
            on_wire=switch.ingress,
            loss_model=loss_model,
        )
        switch.attach(host_id, host.receive)
        topology.hosts[host_id] = host
    return topology
