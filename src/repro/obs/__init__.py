"""Protocol observability: metrics, observer hooks, and exporters.

The observability layer has three parts:

* :mod:`repro.obs.metrics` — zero-dependency counters, gauges, and
  HDR-style fixed-bucket histograms with deterministic snapshots.
* :mod:`repro.obs.observer` — the :class:`ProtocolObserver` hook
  interface threaded through every layer of the stack, plus
  :class:`MetricsObserver` which turns hooks into metrics.
* :mod:`repro.obs.export` — JSON and table exporters for snapshots.

Quickstart::

    from repro import build_cluster
    from repro.obs import MetricsObserver, to_json

    observer = MetricsObserver()
    cluster = build_cluster(num_hosts=8, observer=observer)
    ...
    print(to_json(observer.registry))
"""

from repro.obs.export import load_json, render_table, save_json, to_json
from repro.obs.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    geometric_bounds,
    merge_registries,
)
from repro.obs.observer import (
    CompositeObserver,
    MetricsObserver,
    NullObserver,
    ProtocolObserver,
    effective_observer,
)

__all__ = [
    "COUNT_BOUNDS",
    "LATENCY_BOUNDS",
    "CompositeObserver",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsObserver",
    "MetricsRegistry",
    "NullObserver",
    "ProtocolObserver",
    "effective_observer",
    "geometric_bounds",
    "load_json",
    "merge_registries",
    "render_table",
    "save_json",
    "to_json",
]
