"""Snapshot exporters: JSON and a human-readable table.

Snapshots are plain dicts (see :meth:`MetricsRegistry.snapshot`), so the
JSON exporter is trivial; the table exporter renders the same data the
way ``repro.bench.report`` renders figure series, and the benchmark
harness uses both (``repro.bench.report.save_metrics_json``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from repro.obs.metrics import MetricsRegistry

Snapshot = Dict[str, Dict[str, object]]


def _resolve(source: Union[MetricsRegistry, Snapshot]) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_json(source: Union[MetricsRegistry, Snapshot], indent: int = 2) -> str:
    """Serialize a snapshot deterministically (sorted keys, stable floats)."""
    return json.dumps(_resolve(source), indent=indent, sort_keys=True)


def save_json(path: str, source: Union[MetricsRegistry, Snapshot]) -> str:
    with open(path, "w") as handle:
        handle.write(to_json(source) + "\n")
    return path


def load_json(path: str) -> Snapshot:
    with open(path) as handle:
        return json.load(handle)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(source: Union[MetricsRegistry, Snapshot], title: str = "metrics") -> str:
    """A paper-style fixed-width table of every metric in the snapshot."""
    snapshot = _resolve(source)
    lines: List[str] = [title, "=" * len(title)]

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        rows = [(name, _fmt(value)) for name, value in sorted(counters.items())]
        rows += [(name, _fmt(value)) for name, value in sorted(gauges.items())]
        width = max(len(name) for name, _ in rows)
        lines.append("")
        for name, value in rows:
            lines.append(f"  {name.ljust(width)}  {value.rjust(12)}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        header = f"  {'histogram'.ljust(24)}{'count':>8}{'mean':>12}{'p50':>12}{'p99':>12}{'max':>12}"
        lines.append(header)
        for name, summary in sorted(histograms.items()):
            count = summary.get("count", 0)
            if not count:
                lines.append(f"  {name.ljust(24)}{0:>8}")
                continue
            lines.append(
                f"  {name.ljust(24)}{count:>8}"
                f"{_fmt(summary['mean']):>12}{_fmt(summary['p50']):>12}"
                f"{_fmt(summary['p99']):>12}{_fmt(summary['max']):>12}"
            )
    return "\n".join(lines)
