"""Zero-dependency metric primitives: counters, gauges, histograms.

The protocol's story is quantitative — token rotation time, per-round
sent/delivered counts, retransmission rates — so the reproduction carries
its own metrics layer instead of recomputing those numbers ad hoc in the
benchmark harness.  Three primitives cover everything the paper reports:

* :class:`Counter` — a monotonically increasing event count.
* :class:`Gauge` — a last-written value (queue depth, fcc, headroom).
* :class:`Histogram` — an HDR-style fixed-bucket distribution with
  geometric bucket bounds, supporting lossless merge across participants
  and quantile estimation by bucket interpolation.

All primitives are deterministic: snapshots contain no wall-clock reads,
so two identical simulated-time runs produce byte-identical snapshots.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.util.errors import ReproError


class MetricsError(ReproError):
    """Misuse of the metrics layer (merge mismatch, bad bounds, ...)."""


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-written value (not aggregated over time)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def merge(self, other: "Gauge") -> None:
        # Gauges have no natural cross-instance aggregation; keep the max
        # so merged snapshots reflect the worst observed level.
        self.value = max(self.value, other.value)

    def snapshot(self) -> float:
        return self.value


def geometric_bounds(
    minimum: float, maximum: float, buckets_per_decade: int = 5
) -> Tuple[float, ...]:
    """Geometric bucket upper bounds from ``minimum`` to ``maximum``.

    ``buckets_per_decade`` sub-buckets per power of ten bounds the
    quantile estimation error to ~ ``10**(1/buckets_per_decade)`` — the
    HDR-histogram tradeoff of fixed memory for bounded relative error.
    """
    if minimum <= 0 or maximum <= minimum:
        raise MetricsError(f"need 0 < minimum < maximum, got {minimum}, {maximum}")
    if buckets_per_decade < 1:
        raise MetricsError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
    decades = math.log10(maximum / minimum)
    count = int(math.ceil(decades * buckets_per_decade)) + 1
    ratio = 10.0 ** (1.0 / buckets_per_decade)
    return tuple(minimum * ratio**index for index in range(count))


#: Default bounds for latency-like quantities: 1 microsecond to 100 seconds.
LATENCY_BOUNDS = geometric_bounds(1e-6, 100.0, buckets_per_decade=5)

#: Default bounds for count-like quantities (messages per round, ...).
COUNT_BOUNDS = geometric_bounds(1.0, 1e6, buckets_per_decade=10)


class Histogram:
    """A fixed-bucket histogram with geometric bounds.

    Values at or below ``bounds[i]`` (and above ``bounds[i-1]``) land in
    bucket ``i``; values above the last bound land in an overflow bucket.
    Exact ``count``/``sum``/``min``/``max`` are tracked alongside, so the
    mean is exact and only quantiles are approximated.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if len(ordered) < 2 or any(
            b <= a for a, b in zip(ordered, ordered[1:])
        ):
            raise MetricsError("histogram bounds must be strictly increasing")
        self.bounds = ordered
        self.buckets = [0] * (len(ordered) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        if value < 0:
            raise MetricsError(f"histogram values must be >= 0, got {value}")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[self._index(value)] += 1

    def _index(self, value: float) -> int:
        # Binary search for the first bound >= value.
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if self.bounds[mid] < value:
                low = mid + 1
            else:
                high = mid
        return low

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise MetricsError("mean of empty histogram")
        return self.total / self.count

    def quantile(self, fraction: float) -> float:
        """Approximate quantile by linear interpolation within the bucket."""
        if self.count == 0:
            raise MetricsError("quantile of empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise MetricsError(f"fraction must be in [0, 1], got {fraction}")
        assert self.min is not None and self.max is not None
        rank = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return upper
                within = (rank - seen) / bucket_count
                return lower + (upper - lower) * within
            seen += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise MetricsError("cannot merge histograms with different bounds")
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready summary; only non-empty buckets are listed."""
        summary: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
        }
        if self.count:
            summary.update(
                {
                    "min": self.min,
                    "max": self.max,
                    "mean": self.mean,
                    "p50": self.quantile(0.50),
                    "p99": self.quantile(0.99),
                }
            )
        summary["buckets"] = [
            [self.bounds[i] if i < len(self.bounds) else None, n]
            for i, n in enumerate(self.buckets)
            if n
        ]
        return summary


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with deterministic snapshots.

    Names are dotted paths (``token.rotation_time``); the registry is
    lazy — ``counter(name)`` creates the metric on first use — so hook
    implementations never need a registration step.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (e.g. per-shard registries)."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deterministic, JSON-serializable view of every metric."""
        return {
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].snapshot() for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge several registries into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
