"""The ``ProtocolObserver`` hook interface and standard implementations.

Observers are the redesigned way to watch a running protocol stack:
instead of scraping engine internals after a run, callers pass an
observer to the constructors (``build_cluster(..., observer=...)``,
``RingNode(..., observer=...)``, ``AcceleratedRingParticipant(...,
observer=...)``) and receive a callback at every protocol event.

Hook timing:

* ``on_token_received`` / ``on_token_sent`` / ``on_multicast`` /
  ``on_retransmit`` / ``on_retransmit_requested`` / ``on_flow_control``
  fire inside the sans-io ordering engines at protocol-event time.
* ``on_deliver`` fires in the layer that owns application delivery (the
  sim driver or the membership controller), so its count is exactly the
  application-visible delivery count — the same events the EVS checker
  records.
* ``on_membership_event`` fires in the membership controller on state
  transitions, ring installs, and token losses.

``now`` is whatever clock the hosting layer runs on — simulated seconds
in :mod:`repro.sim`, the event-loop clock in :mod:`repro.runtime` — or
``None`` for bare engines with no clock attached.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.messages import DataMessage
from repro.core.token import RegularToken
from repro.obs.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    MetricsRegistry,
)


class ProtocolObserver:
    """Base class: every hook is a no-op.  Subclass and override."""

    def on_token_received(
        self, pid: int, token: RegularToken, now: Optional[float] = None
    ) -> None:
        """A regular token was accepted for processing (round start)."""

    def on_token_sent(
        self, pid: int, token: RegularToken, now: Optional[float] = None
    ) -> None:
        """The updated token was released to the successor."""

    def on_multicast(
        self,
        pid: int,
        message: DataMessage,
        retransmission: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """A data message (new or retransmitted) was multicast."""

    def on_deliver(
        self, pid: int, message: DataMessage, now: Optional[float] = None
    ) -> None:
        """A message was delivered to the local application."""

    def on_deliver_batch(
        self,
        pid: int,
        messages: Sequence[DataMessage],
        now: Optional[float] = None,
    ) -> None:
        """A contiguous in-order run of messages was delivered at once.

        The hosting layers fire this once per delivered batch instead of
        ``len(messages)`` :meth:`on_deliver` calls.  The base
        implementation fans out to :meth:`on_deliver` per message, so
        observers that only override the scalar hook keep seeing every
        delivery; batch-aware observers override this for one call per
        slice.
        """
        for message in messages:
            self.on_deliver(pid, message, now=now)

    def on_retransmit(
        self, pid: int, seq: int, now: Optional[float] = None
    ) -> None:
        """This participant answered a retransmission request for ``seq``."""

    def on_retransmit_requested(
        self, pid: int, seq: int, now: Optional[float] = None
    ) -> None:
        """This participant added ``seq`` to the token's request list."""

    def on_flow_control(
        self,
        pid: int,
        decision: object,
        token_fcc: int,
        now: Optional[float] = None,
    ) -> None:
        """The per-round sending plan (a ``FlowControlDecision``) was made."""

    def on_membership_event(
        self,
        pid: int,
        event: str,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A membership-layer event: ``state_change``, ``ring_installed``,
        ``token_loss``, ``view_change``."""

    def on_recovery_started(
        self,
        pid: int,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A recovery exchange began.  ``detail`` carries ``ring_id``,
        ``old_ring_id``, ``old_members``, the exchange ``window`` and the
        agreed ``deliver_high`` split point."""

    def on_recovery_retry(
        self,
        pid: int,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A recovery round expired and the controller is retrying its
        flood/status exchange.  ``detail`` carries ``ring_id``,
        ``attempt``, ``retries_left``, the backed-off ``next_delay``, the
        ``missing`` message count, and currently ``suspects`` peers."""

    def on_recovery_aborted(
        self,
        pid: int,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A recovery exhausted its retry budget and fell back to Gather.
        ``detail`` carries ``ring_id``, ``attempts``, ``missing`` and the
        ``suspects`` that will seed the regather's fail set."""

    def on_recovery_completed(
        self,
        pid: int,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A recovery finalized and installed its ring.  ``detail``
        carries ``ring_id``, ``attempts`` (retry rounds used), and the
        installed ``members``."""

    def on_fault(
        self,
        kind: str,
        detail: Optional[Dict[str, object]] = None,
        now: Optional[float] = None,
    ) -> None:
        """A fault was injected by :mod:`repro.faults`: ``crash``,
        ``recover``, ``partition``, ``heal``, ``token_drop``,
        ``loss_burst`` / ``loss_burst_end``, ``pause``, ``resume``.

        ``detail`` carries the event's parameters (pid, groups, rate, …).
        Faults are cluster-scoped, so unlike the protocol hooks there is
        no ``pid`` first argument; per-process faults name their target in
        ``detail["pid"]``."""


class NullObserver(ProtocolObserver):
    """Explicit no-op observer (the hooks are already no-ops)."""


def effective_observer(
    observer: Optional[ProtocolObserver],
) -> Optional[ProtocolObserver]:
    """Normalize an observer for hot-path dispatch.

    A bare :class:`NullObserver` (not a subclass) collapses to ``None`` so
    engines and drivers can guard hook calls with a plain ``is not None``
    test instead of paying a no-op method call per protocol event.
    Subclasses pass through untouched: overriding any hook makes the
    observer meaningful again.
    """
    if observer is None or type(observer) is NullObserver:
        return None
    return observer


class CompositeObserver(ProtocolObserver):
    """Fans every hook out to several observers, in order."""

    def __init__(self, observers: Iterable[ProtocolObserver]) -> None:
        self.observers: List[ProtocolObserver] = list(observers)

    def on_token_received(self, pid, token, now=None):
        for observer in self.observers:
            observer.on_token_received(pid, token, now=now)

    def on_token_sent(self, pid, token, now=None):
        for observer in self.observers:
            observer.on_token_sent(pid, token, now=now)

    def on_multicast(self, pid, message, retransmission=False, now=None):
        for observer in self.observers:
            observer.on_multicast(pid, message, retransmission=retransmission, now=now)

    def on_deliver(self, pid, message, now=None):
        for observer in self.observers:
            observer.on_deliver(pid, message, now=now)

    def on_deliver_batch(self, pid, messages, now=None):
        for observer in self.observers:
            observer.on_deliver_batch(pid, messages, now=now)

    def on_retransmit(self, pid, seq, now=None):
        for observer in self.observers:
            observer.on_retransmit(pid, seq, now=now)

    def on_retransmit_requested(self, pid, seq, now=None):
        for observer in self.observers:
            observer.on_retransmit_requested(pid, seq, now=now)

    def on_flow_control(self, pid, decision, token_fcc, now=None):
        for observer in self.observers:
            observer.on_flow_control(pid, decision, token_fcc, now=now)

    def on_membership_event(self, pid, event, detail=None, now=None):
        for observer in self.observers:
            observer.on_membership_event(pid, event, detail=detail, now=now)

    def on_recovery_started(self, pid, detail=None, now=None):
        for observer in self.observers:
            observer.on_recovery_started(pid, detail=detail, now=now)

    def on_recovery_retry(self, pid, detail=None, now=None):
        for observer in self.observers:
            observer.on_recovery_retry(pid, detail=detail, now=now)

    def on_recovery_aborted(self, pid, detail=None, now=None):
        for observer in self.observers:
            observer.on_recovery_aborted(pid, detail=detail, now=now)

    def on_recovery_completed(self, pid, detail=None, now=None):
        for observer in self.observers:
            observer.on_recovery_completed(pid, detail=detail, now=now)

    def on_fault(self, kind, detail=None, now=None):
        for observer in self.observers:
            observer.on_fault(kind, detail=detail, now=now)


class MetricsObserver(ProtocolObserver):
    """Turns protocol events into metrics in a :class:`MetricsRegistry`.

    Metric names (the stable, documented surface):

    ==============================  ==========================================
    ``token.received``            tokens accepted (counter)
    ``token.sent``                tokens released (counter)
    ``token.rotation_time``       per-participant token inter-arrival (histogram, s)
    ``multicast.sent``            new data messages multicast (counter)
    ``multicast.pre_token``       of which before the token release (counter)
    ``multicast.post_token``      of which after the token release (counter)
    ``retransmit.sent``           retransmissions answered (counter)
    ``retransmit.requested``      sequence numbers requested (counter)
    ``deliver.messages``          application deliveries (counter)
    ``deliver.latency``           submit-to-deliver latency (histogram, s)
    ``round.sent_messages``       new messages per token visit (histogram)
    ``flow.fcc``                  last seen global-window usage (gauge)
    ``flow.headroom``             last seen global-window headroom (gauge)
    ``membership.state_changes``  controller state transitions (counter)
    ``membership.ring_installs``  regular configurations installed (counter)
    ``membership.token_losses``   token-loss timeouts fired (counter)
    ``recovery.started``          recovery exchanges entered (counter)
    ``recovery.retries``          recovery retry rounds fired (counter)
    ``recovery.aborted``          recoveries aborted to Gather (counter)
    ``recovery.completed``        recoveries finalized into a ring (counter)
    ``recovery.attempts``         retry rounds used per completed recovery (histogram)
    ``fault.crashes``             crashes injected (counter)
    ``fault.recoveries``          recoveries injected (counter)
    ``fault.partitions``          partitions injected (counter)
    ``fault.heals``               heals injected (counter)
    ``fault.partitions_active``   partitions currently in force (gauge)
    ``fault.token_drops``         token frames deliberately dropped (counter)
    ``fault.loss_bursts``         loss bursts injected (counter)
    ``fault.rack_power_losses``   correlated rack failures injected (counter);
                                  the rack's member crashes also count in
                                  ``fault.crashes``
    ``fault.pauses``              GC-stall pauses injected (counter)
    ``fault.resumes``             pause resumes injected (counter)
    ==============================  ==========================================
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._last_token_at: Dict[int, float] = {}

    # -- token ---------------------------------------------------------

    def on_token_received(self, pid, token, now=None):
        self.registry.counter("token.received").inc()
        if now is not None:
            previous = self._last_token_at.get(pid)
            if previous is not None and now >= previous:
                self.registry.histogram(
                    "token.rotation_time", LATENCY_BOUNDS
                ).record(now - previous)
            self._last_token_at[pid] = now

    def on_token_sent(self, pid, token, now=None):
        self.registry.counter("token.sent").inc()

    # -- data ----------------------------------------------------------

    def on_multicast(self, pid, message, retransmission=False, now=None):
        if retransmission:
            return  # counted by on_retransmit
        self.registry.counter("multicast.sent").inc()
        if message.post_token:
            self.registry.counter("multicast.post_token").inc()
        else:
            self.registry.counter("multicast.pre_token").inc()

    def on_deliver(self, pid, message, now=None):
        self.registry.counter("deliver.messages").inc()
        if now is not None and message.timestamp is not None:
            latency = now - message.timestamp
            if latency >= 0:
                self.registry.histogram(
                    "deliver.latency", LATENCY_BOUNDS
                ).record(latency)

    def on_deliver_batch(self, pid, messages, now=None):
        # One counter bump for the whole slice; the latency histogram
        # still records per message (each message has its own timestamp).
        self.registry.counter("deliver.messages").inc(len(messages))
        if now is None:
            return
        record = self.registry.histogram("deliver.latency", LATENCY_BOUNDS).record
        for message in messages:
            if message.timestamp is not None:
                latency = now - message.timestamp
                if latency >= 0:
                    record(latency)

    # -- recovery ------------------------------------------------------

    def on_retransmit(self, pid, seq, now=None):
        self.registry.counter("retransmit.sent").inc()

    def on_retransmit_requested(self, pid, seq, now=None):
        self.registry.counter("retransmit.requested").inc()

    # -- flow control --------------------------------------------------

    def on_flow_control(self, pid, decision, token_fcc, now=None):
        self.registry.gauge("flow.fcc").set(token_fcc)
        headroom = getattr(decision, "global_headroom", None)
        if headroom is not None:
            self.registry.gauge("flow.headroom").set(headroom)
        num_to_send = getattr(decision, "num_to_send", 0)
        if num_to_send:
            self.registry.histogram(
                "round.sent_messages", COUNT_BOUNDS
            ).record(num_to_send)

    # -- membership ----------------------------------------------------

    def on_membership_event(self, pid, event, detail=None, now=None):
        if event == "state_change":
            self.registry.counter("membership.state_changes").inc()
        elif event == "ring_installed":
            self.registry.counter("membership.ring_installs").inc()
        elif event == "token_loss":
            self.registry.counter("membership.token_losses").inc()
        elif event == "view_change":
            self.registry.counter("membership.view_changes").inc()

    def on_recovery_started(self, pid, detail=None, now=None):
        self.registry.counter("recovery.started").inc()

    def on_recovery_retry(self, pid, detail=None, now=None):
        self.registry.counter("recovery.retries").inc()

    def on_recovery_aborted(self, pid, detail=None, now=None):
        self.registry.counter("recovery.aborted").inc()

    def on_recovery_completed(self, pid, detail=None, now=None):
        self.registry.counter("recovery.completed").inc()
        attempts = (detail or {}).get("attempts")
        if attempts is not None:
            self.registry.histogram("recovery.attempts", COUNT_BOUNDS).record(
                int(attempts)
            )

    # -- injected faults -----------------------------------------------

    def on_fault(self, kind, detail=None, now=None):
        detail = detail or {}
        if kind == "crash":
            self.registry.counter("fault.crashes").inc()
        elif kind == "recover":
            self.registry.counter("fault.recoveries").inc()
        elif kind == "partition":
            self.registry.counter("fault.partitions").inc()
            self.registry.gauge("fault.partitions_active").set(
                int(detail.get("active", 1))
            )
        elif kind == "heal":
            self.registry.counter("fault.heals").inc()
            self.registry.gauge("fault.partitions_active").set(
                int(detail.get("active", 0))
            )
        elif kind == "token_drop":
            self.registry.counter("fault.token_drops").inc(int(detail.get("count", 1)))
        elif kind == "loss_burst":
            self.registry.counter("fault.loss_bursts").inc()
        elif kind == "rack_power_loss":
            self.registry.counter("fault.rack_power_losses").inc()
            self.registry.counter("fault.crashes").inc(
                len(detail.get("pids") or ())
            )
        elif kind == "pause":
            self.registry.counter("fault.pauses").inc()
        elif kind == "resume":
            self.registry.counter("fault.resumes").inc()

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()
