"""Real asyncio/UDP runtime.

Runs the same sans-io protocol engines as the simulator over real
sockets, at laptop scale:

* :class:`~repro.runtime.transport.UdpTransport` — two UDP sockets per
  node (token port and data port, as in paper §III-E); logical multicast
  via unicast fan-out (the IP-multicast substitute the paper itself
  offers for environments without multicast).
* :class:`~repro.runtime.node.RingNode` — a full protocol stack
  (membership + ordering) on one asyncio loop: the *library-based
  prototype*.
* :class:`~repro.runtime.daemon.DaemonServer` /
  :class:`~repro.runtime.client.DaemonClient` — the *daemon-based
  prototype*: daemons accept local clients over unix sockets and relay
  submissions/deliveries, mirroring Spread's client-daemon architecture.
"""

from repro.runtime.transport import PeerAddress, UdpTransport, local_ring_addresses
from repro.runtime.node import RingNode
from repro.runtime.daemon import DaemonServer
from repro.runtime.client import DaemonClient

__all__ = [
    "PeerAddress",
    "UdpTransport",
    "local_ring_addresses",
    "RingNode",
    "DaemonServer",
    "DaemonClient",
]
