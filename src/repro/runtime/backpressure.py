"""Bounded per-client send queues: backpressure for daemon fan-out.

A daemon fan-outs every ordered delivery to its connected clients.  A
naive ``writer.write()`` loop makes the daemon's memory hostage to its
slowest client: asyncio buffers unboundedly inside the transport, so a
client that stops reading grows the daemon's heap without limit.  Real
Spread flow-blocks or disconnects slow clients instead; this module
implements that policy.

Each client connection gets a :class:`ClientSendQueue`: frames are
admitted against a byte-bounded window (the shared
:class:`~repro.core.transport_core.ByteWindow`) and drained by one
writer task that honours the transport's real flow control
(``await writer.drain()``).  A client that falls further behind than
the window allows is *disconnected*, not buffered — the daemon's memory
stays bounded by ``capacity_bytes × clients`` no matter how slow any
reader is.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional

from repro.core.transport_core import ByteWindow

#: Default per-client window: generous for loopback benches, small
#: enough that a stalled client is cut off long before it matters.
DEFAULT_CLIENT_WINDOW_BYTES = 1 << 20


class ClientSendQueue:
    """One client's outbound frame queue, byte-bounded and task-drained.

    ``send`` is synchronous (callable from delivery callbacks); the
    drain task serialises writes and applies genuine transport
    backpressure via ``drain()``.  Overflow is fail-fast: the client is
    marked slow and its connection torn down.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        capacity_bytes: int = DEFAULT_CLIENT_WINDOW_BYTES,
    ) -> None:
        self.writer = writer
        self.window = ByteWindow(capacity_bytes)
        self._frames: Deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._closing = False
        self._task: Optional[asyncio.Task] = None
        #: True once this client was dropped for falling behind.
        self.dropped_slow = False

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._drain())

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def pending_frames(self) -> List[bytes]:
        """Accepted-but-unwritten frames, oldest first (a snapshot)."""
        return list(self._frames)

    def send(self, frame: bytes) -> bool:
        """Queue ``frame``; False if the client is closing or too slow.

        Overflow disconnects the client (fail-fast): delivering a
        truncated stream silently would violate the ordered-delivery
        contract, so the client is told nothing and must reconnect.
        """
        if self._closing or self.writer.is_closing():
            return False
        if not self.window.try_reserve(len(frame)):
            self.dropped_slow = True
            self.abort()
            return False
        self._frames.append(frame)
        self._wakeup.set()
        return True

    def close(self) -> None:
        """Begin teardown: flush what is queued, then close the writer."""
        if self._closing:
            return
        self._closing = True
        self._wakeup.set()

    def abort(self) -> None:
        """Hard teardown: drop queued frames and kill the transport now.

        Used for slow-client drops — a graceful close would await
        ``drain()`` on a transport the stalled peer never reads, which
        blocks forever.  Aborting the transport wakes any in-flight
        ``drain()`` with a connection error the drain task absorbs.
        """
        self._closing = True
        self._frames.clear()
        self.window.reset()
        self._wakeup.set()
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    async def drain_and_close(self) -> None:
        """Graceful drain: flush queued frames, then close the writer."""
        self._closing = True
        self._wakeup.set()
        if self._task is not None:
            try:
                await self._task
            except asyncio.CancelledError:
                pass

    async def aclose(self) -> None:
        """Immediate teardown: drop queued frames and close the writer."""
        self.abort()
        await self.drain_and_close()

    async def _drain(self) -> None:
        writer = self.writer
        frames = self._frames
        window = self.window
        try:
            while True:
                while frames:
                    frame = frames.popleft()
                    window.release(len(frame))
                    writer.write(frame)
                    # Real flow control: suspend until the transport's
                    # buffer drains below its high-water mark.  While
                    # suspended, arriving frames accumulate against the
                    # byte window — the bound that turns a stalled
                    # reader into a disconnect instead of heap growth.
                    await writer.drain()
                if self._closing:
                    break
                self._wakeup.clear()
                await self._wakeup.wait()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._closing = True
            frames.clear()
            window.reset()
        finally:
            self._closing = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
