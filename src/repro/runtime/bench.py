"""The runtime bench suite: real loopback throughput/latency + gates.

Mirrors the KV gate precedent (:mod:`repro.apps.kv.bench`): every case
reports a ``deterministic`` block (exact-compared against the committed
baseline — invariants that must hold on any machine) and a ``wall``
block (actual wall-clock numbers, gated only by a loose ops/sec floor
because shared CI runners are noisy).  The committed baseline lives at
``benchmarks/baselines/BENCH_runtime.json``; ``repro fleet bench
--check-baseline`` is the CI gate.

Unlike the sim benches, wall time here is *real*: messages cross real
UDP sockets and real unix-domain client connections.  The deterministic
blocks therefore avoid anything timing-dependent — they pin message
counts, delivery-order identity across nodes, the sha256 digest of the
serialized case's total order, and zero-tolerance health counters
(decode errors, slow-client drops) that must hold regardless of speed.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.conformance.workload import make_label
from repro.runtime.fleet import FLEET_TIMEOUTS, Fleet, run_fleet_workload
from repro.runtime.node import RingNode
from repro.runtime.ports import ephemeral_ring_addresses

#: Loose wall-clock tolerance (fraction of baseline ops/sec a run may
#: lose before the gate fails); CI sets a looser value via
#: ``REPRO_BENCH_WALL_TOL``-equivalent flags on shared runners.
WALL_TOL = 0.5

#: The committed baseline is recorded at this seed; the gate refuses to
#: compare reports recorded at any other.
BASELINE_SEED = 0


@dataclass(frozen=True)
class RuntimeBenchCase:
    name: str
    run: Callable[[int], Dict[str, Any]]
    summary: str


# ----------------------------------------------------------------------
# Case: serialized ring — exact total-order digest
# ----------------------------------------------------------------------


async def _ring_serialized_async(
    seed: int, num_nodes: int = 3, bursts: int = 8, burst_size: int = 25
) -> Dict[str, Any]:
    addresses = ephemeral_ring_addresses(range(num_nodes))
    nodes = {
        pid: RingNode(pid, addresses, timeouts=FLEET_TIMEOUTS)
        for pid in range(num_nodes)
    }
    for node in nodes.values():
        await node.start()

    async def wait_for(check, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while not check():
            if time.monotonic() > deadline:
                raise TimeoutError("runtime bench: ring did not converge")
            await asyncio.sleep(0.01)

    want = tuple(range(num_nodes))
    await wait_for(
        lambda: all(
            n.state == "operational" and tuple(n.members) == want
            for n in nodes.values()
        ),
        15.0,
    )

    total = bursts * burst_size
    started = time.monotonic()
    sent = 0
    for burst in range(bursts):
        sender = nodes[burst % num_nodes]
        for offset in range(burst_size):
            sender.submit(payload=make_label(sender.pid, sent + offset))
        sent += burst_size
        target = (burst + 1) * burst_size
        await wait_for(
            lambda: all(len(n.delivered) >= target for n in nodes.values()), 10.0
        )
    wall = time.monotonic() - started

    streams = {
        pid: [bytes(m.payload) for m in node.delivered]
        for pid, node in nodes.items()
    }
    reference = streams[0]
    order_identity = all(stream == reference for stream in streams.values())
    digest = hashlib.sha256(b"\x00".join(reference)).hexdigest()
    decode_errors = sum(n.decode_errors for n in nodes.values())
    for node in nodes.values():
        await node.stop()
    return {
        "deterministic": {
            "nodes": num_nodes,
            "messages": total,
            "delivered_per_node": len(reference),
            "order_identity": order_identity,
            "order_digest": digest,
            "decode_errors": decode_errors,
        },
        "wall": {
            "wall_time_s": round(wall, 4),
            "ops_per_sec": round(total / wall, 1) if wall > 0 else 0.0,
        },
    }


def _case_ring_serialized(seed: int) -> Dict[str, Any]:
    return asyncio.run(_ring_serialized_async(seed))


# ----------------------------------------------------------------------
# Case: closed-loop fleet — msgs/sec and latency percentiles
# ----------------------------------------------------------------------


async def _fleet_closed_loop_async(
    seed: int, num_daemons: int = 3, num_clients: int = 6, duration: float = 1.5
) -> Dict[str, Any]:
    fleet = Fleet(num_daemons)
    await fleet.start()
    try:
        report = await run_fleet_workload(
            fleet, num_clients=num_clients, duration=duration
        )
        counters = report["counters"]
    finally:
        await fleet.drain_and_stop()
    return {
        "deterministic": {
            "daemons": num_daemons,
            "clients": num_clients,
            "decode_errors": counters["decode_errors"],
            "clients_dropped_slow": counters["clients_dropped_slow"],
            # Closed-loop: every sent message must come back ordered.
            "all_acked": report["messages_acked"] == report["messages_sent"],
        },
        "wall": {
            "wall_time_s": report["duration_s"],
            "ops_per_sec": report["msgs_per_sec"],
            "latency_p50_ms": report["latency_p50_ms"],
            "latency_p99_ms": report["latency_p99_ms"],
            "messages_acked": report["messages_acked"],
        },
    }


def _case_fleet_closed_loop(seed: int) -> Dict[str, Any]:
    return asyncio.run(_fleet_closed_loop_async(seed))


# ----------------------------------------------------------------------
# Suite plumbing (KV-gate shape)
# ----------------------------------------------------------------------

CASES: Dict[str, RuntimeBenchCase] = {
    "ring_serialized": RuntimeBenchCase(
        name="ring_serialized",
        run=_case_ring_serialized,
        summary="3-node loopback ring, serialized bursts, exact order digest",
    ),
    "fleet_closed_loop": RuntimeBenchCase(
        name="fleet_closed_loop",
        run=_case_fleet_closed_loop,
        summary="3-daemon fleet, 6 closed-loop clients, msgs/sec + latency",
    ),
}

#: The cheap subset CI smoke runs on every push.
SMOKE_CASES: Tuple[str, ...] = ("ring_serialized",)


def run_runtime_bench(
    seed: int = 0,
    case_names: Optional[List[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    names = list(case_names) if case_names is not None else list(CASES)
    unknown = [name for name in names if name not in CASES]
    if unknown:
        raise ValueError(f"unknown runtime bench cases: {unknown}")
    cases: Dict[str, Any] = {}
    for name in names:
        if progress is not None:
            progress(f"runtime bench: {name} ({CASES[name].summary})")
        cases[name] = CASES[name].run(seed)
    return {"suite": "runtime", "seed": seed, "cases": cases}


def to_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def baseline_path(root: Optional[Any] = None):
    """``benchmarks/baselines/BENCH_runtime.json`` under ``root``."""
    from pathlib import Path

    base = Path(root) if root is not None else Path(".")
    return base / "benchmarks" / "baselines" / "BENCH_runtime.json"


def compare_report(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    wall_tol: float = WALL_TOL,
) -> List[str]:
    """Compare a runtime report against the committed baseline.

    Deterministic blocks must match exactly (they are machine-
    independent invariants); wall metrics fail only on an ops/sec drop
    beyond ``wall_tol``.  Returns human-readable regression messages;
    empty means within tolerance.
    """
    problems: List[str] = []
    if current.get("seed") != baseline.get("seed"):
        problems.append(
            f"seed mismatch: run has {current.get('seed')}, baseline has "
            f"{baseline.get('seed')} — deterministic metrics are per-seed"
        )
        return problems
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        expected = base.get("deterministic", {})
        actual = cur.get("deterministic", {})
        for metric in sorted(set(expected) | set(actual)):
            if expected.get(metric) != actual.get(metric):
                problems.append(
                    f"{name}: {metric} changed (baseline "
                    f"{expected.get(metric)!r}, got {actual.get(metric)!r}) — "
                    f"deterministic runtime metrics must match the baseline"
                )
        expected_rate = base.get("wall", {}).get("ops_per_sec")
        if expected_rate:
            actual_rate = cur.get("wall", {}).get("ops_per_sec", 0.0)
            floor = expected_rate * (1.0 - wall_tol)
            if actual_rate < floor:
                problems.append(
                    f"{name}: ops_per_sec regressed to {actual_rate:,.0f} "
                    f"(baseline {expected_rate:,.0f}, floor {floor:,.0f})"
                )
    return problems
