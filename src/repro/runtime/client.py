"""Client library for the daemon-based prototype."""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple, Union

from repro.core.messages import DeliveryService
from repro.runtime import ipc
from repro.runtime.ipc import (
    Delivery,
    Endpoint,
    EndpointSpec,
    TcpEndpoint,
    UnixEndpoint,
)
from repro.util.errors import CodecError

#: Event types a client can receive.
ClientEvent = Union[Delivery, Tuple[List[int], bool]]


class DaemonClient:
    """Connects to a daemon at an :data:`~repro.runtime.ipc.Endpoint`.

    ``endpoint`` accepts a :class:`~repro.runtime.ipc.UnixEndpoint`, a
    :class:`~repro.runtime.ipc.TcpEndpoint`, a bare unix socket path, or
    a spec string (``unix://...`` / ``tcp://host:port``).  The paper's
    advice applies: on LANs, co-locate clients with daemons and use the
    unix socket; TCP is for remote clients.

    The pre-endpoint keywords ``socket_path=`` / ``tcp_address=`` still
    work but emit a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        endpoint: Optional[EndpointSpec] = None,
        *,
        socket_path: Optional[str] = None,
        tcp_address: Optional[Tuple[str, int]] = None,
    ) -> None:
        self.endpoint: Endpoint = ipc.resolve_endpoint(
            endpoint, socket_path, tcp_address, owner="DaemonClient"
        )
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def socket_path(self) -> Optional[str]:
        """Unix socket path, or None for TCP endpoints (legacy accessor)."""
        return self.endpoint.path if isinstance(self.endpoint, UnixEndpoint) else None

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """(host, port), or None for unix endpoints (legacy accessor)."""
        if isinstance(self.endpoint, TcpEndpoint):
            return (self.endpoint.host, self.endpoint.port)
        return None

    async def connect(self) -> None:
        self._reader, self._writer = await self.endpoint.open()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def send(
        self,
        payload: bytes,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """Submit one message for totally ordered multicast."""
        if self._writer is None:
            raise RuntimeError("client not connected")
        self._writer.write(ipc.pack_submit(service, payload))

    async def receive(self) -> ClientEvent:
        """Await the next delivery or configuration-change event."""
        if self._reader is None:
            raise RuntimeError("client not connected")
        opcode, body = await ipc.read_frame(self._reader)
        if opcode == ipc.OP_DELIVER:
            return ipc.unpack_deliver(body)
        if opcode == ipc.OP_CONFIG:
            return ipc.unpack_config(body)
        raise CodecError(f"unexpected daemon opcode {opcode}")

    async def receive_messages(self, count: int) -> List[Delivery]:
        """Collect the next ``count`` message deliveries (skipping
        configuration events)."""
        out: List[Delivery] = []
        while len(out) < count:
            event = await self.receive()
            if isinstance(event, Delivery):
                out.append(event)
        return out
