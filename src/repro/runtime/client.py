"""Client library for the daemon-based prototype."""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple, Union

from repro.core.messages import DeliveryService
from repro.runtime import ipc
from repro.runtime.ipc import Delivery
from repro.util.errors import CodecError

#: Event types a client can receive.
ClientEvent = Union[Delivery, Tuple[List[int], bool]]


class DaemonClient:
    """Connects to a daemon — locally over its unix socket, or remotely
    over TCP (``tcp_address=(host, port)``).

    The paper's advice applies: on LANs, co-locate clients with daemons
    and use the unix socket; TCP is for remote clients.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        tcp_address: Optional[Tuple[str, int]] = None,
    ) -> None:
        if (socket_path is None) == (tcp_address is None):
            raise ValueError("provide exactly one of socket_path or tcp_address")
        self.socket_path = socket_path
        self.tcp_address = tcp_address
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path
            )
        else:
            assert self.tcp_address is not None
            host, port = self.tcp_address
            self._reader, self._writer = await asyncio.open_connection(host, port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def send(
        self,
        payload: bytes,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """Submit one message for totally ordered multicast."""
        if self._writer is None:
            raise RuntimeError("client not connected")
        self._writer.write(ipc.pack_submit(service, payload))

    async def receive(self) -> ClientEvent:
        """Await the next delivery or configuration-change event."""
        if self._reader is None:
            raise RuntimeError("client not connected")
        opcode, body = await ipc.read_frame(self._reader)
        if opcode == ipc.OP_DELIVER:
            return ipc.unpack_deliver(body)
        if opcode == ipc.OP_CONFIG:
            return ipc.unpack_config(body)
        raise CodecError(f"unexpected daemon opcode {opcode}")

    async def receive_messages(self, count: int) -> List[Delivery]:
        """Collect the next ``count`` message deliveries (skipping
        configuration events)."""
        out: List[Delivery] = []
        while len(out) < count:
            event = await self.receive()
            if isinstance(event, Delivery):
                out.append(event)
        return out
