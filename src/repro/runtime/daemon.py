"""The daemon-based prototype: a ring node serving local clients.

One daemon runs per server; sending clients inject messages over a unix
socket and receiving clients get every delivered message (paper §IV-A:
"each of the 8 participating servers ran one daemon, one sending client
... and one receiving client").

Client fan-out is byte-bounded: each connection owns a
:class:`~repro.runtime.backpressure.ClientSendQueue`, so a client that
stops reading is disconnected when it falls a window behind rather than
growing the daemon's heap without limit.
"""

from __future__ import annotations

import asyncio
import os
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.messages import DataMessage
from repro.evs.configuration import Configuration
from repro.runtime import ipc
from repro.runtime.backpressure import DEFAULT_CLIENT_WINDOW_BYTES, ClientSendQueue
from repro.runtime.node import RingNode
from repro.runtime.transport import PeerAddress
from repro.util.errors import CodecError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver


class DaemonServer:
    """A single-group daemon: relays submissions and fan-outs deliveries."""

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        socket_path: str,
        accelerated: bool = True,
        tcp_port: Optional[int] = None,
        observer: Optional["ProtocolObserver"] = None,
        client_window_bytes: int = DEFAULT_CLIENT_WINDOW_BYTES,
        **node_kwargs,
    ) -> None:
        self.pid = pid
        self.socket_path = socket_path
        #: Optional TCP listener for remote clients.  The paper notes
        #: Spread supports TCP clients but recommends co-locating clients
        #: with daemons on LANs; we offer the same choice.
        self.tcp_port = tcp_port
        self.client_window_bytes = client_window_bytes
        # ``clock=`` (and every other RingNode knob) passes through
        # node_kwargs, so tests can inject a controllable time source
        # into the daemon's membership timeouts.
        self.node = RingNode(
            pid=pid,
            peers=peers,
            accelerated=accelerated,
            observer=observer,
            **node_kwargs,
        )
        self.node.on_deliver = self._deliver
        self.node.on_config = self._config_changed
        self._server: Optional[asyncio.AbstractServer] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._clients: Dict[asyncio.StreamWriter, ClientSendQueue] = {}
        self.messages_relayed = 0
        self.clients_dropped_slow = 0

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        await self.node.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        if self.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._handle_client, host="127.0.0.1", port=self.tcp_port
            )

    async def stop(self) -> None:
        """Stop serving: drain client queues, then fail-stop the node."""
        for server in (self._server, self._tcp_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = None
        self._tcp_server = None
        queues = list(self._clients.values())
        self._clients.clear()
        for queue in queues:
            await queue.aclose()
        await self.node.stop()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        queue = ClientSendQueue(writer, self.client_window_bytes)
        queue.start()
        self._clients[writer] = queue
        try:
            while True:
                try:
                    opcode, body = await ipc.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                if opcode == ipc.OP_SUBMIT:
                    service, payload = ipc.unpack_submit(body)
                    self.node.submit(payload=payload, service=service)
                    self.messages_relayed += 1
                else:
                    raise CodecError(f"unexpected client opcode {opcode}")
        finally:
            self._clients.pop(writer, None)
            await queue.drain_and_close()
            if queue.dropped_slow:
                self.clients_dropped_slow += 1

    def _broadcast(self, frame: bytes) -> None:
        dead = None
        for writer, queue in self._clients.items():
            if not queue.send(frame) and queue.closing:
                if dead is None:
                    dead = [writer]
                else:
                    dead.append(writer)
        if dead:
            for writer in dead:
                self._clients.pop(writer, None)

    def _deliver(self, message: DataMessage, config_id: int) -> None:
        self._broadcast(
            ipc.pack_deliver(message.pid, message.seq, message.service, message.payload)
        )

    def _config_changed(self, configuration: Configuration) -> None:
        self._broadcast(
            ipc.pack_config(
                sorted(configuration.members), configuration.transitional
            )
        )
