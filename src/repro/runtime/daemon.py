"""The daemon-based prototype: a ring node serving local clients.

One daemon runs per server; sending clients inject messages over a unix
socket and receiving clients get every delivered message (paper §IV-A:
"each of the 8 participating servers ran one daemon, one sending client
... and one receiving client").
"""

from __future__ import annotations

import asyncio
import os
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.core.messages import DataMessage
from repro.evs.configuration import Configuration
from repro.runtime import ipc
from repro.runtime.node import RingNode
from repro.runtime.transport import PeerAddress
from repro.util.errors import CodecError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver


class DaemonServer:
    """A single-group daemon: relays submissions and fan-outs deliveries."""

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        socket_path: str,
        accelerated: bool = True,
        tcp_port: Optional[int] = None,
        observer: Optional["ProtocolObserver"] = None,
        **node_kwargs,
    ) -> None:
        self.pid = pid
        self.socket_path = socket_path
        #: Optional TCP listener for remote clients.  The paper notes
        #: Spread supports TCP clients but recommends co-locating clients
        #: with daemons on LANs; we offer the same choice.
        self.tcp_port = tcp_port
        self.node = RingNode(
            pid=pid,
            peers=peers,
            accelerated=accelerated,
            observer=observer,
            **node_kwargs,
        )
        self.node.on_deliver = self._deliver
        self.node.on_config = self._config_changed
        self._server: Optional[asyncio.AbstractServer] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._clients: Set[asyncio.StreamWriter] = set()
        self.messages_relayed = 0

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        await self.node.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        if self.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._handle_client, host="127.0.0.1", port=self.tcp_port
            )

    async def stop(self) -> None:
        for server in (self._server, self._tcp_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = None
        self._tcp_server = None
        for writer in list(self._clients):
            writer.close()
        self._clients.clear()
        await self.node.stop()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.add(writer)
        try:
            while True:
                try:
                    opcode, body = await ipc.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                if opcode == ipc.OP_SUBMIT:
                    service, payload = ipc.unpack_submit(body)
                    self.node.submit(payload=payload, service=service)
                    self.messages_relayed += 1
                else:
                    raise CodecError(f"unexpected client opcode {opcode}")
        finally:
            self._clients.discard(writer)
            writer.close()

    def _broadcast(self, frame: bytes) -> None:
        for writer in list(self._clients):
            if writer.is_closing():
                self._clients.discard(writer)
                continue
            writer.write(frame)

    def _deliver(self, message: DataMessage, config_id: int) -> None:
        self._broadcast(
            ipc.pack_deliver(message.pid, message.seq, message.service, message.payload)
        )

    def _config_changed(self, configuration: Configuration) -> None:
        self._broadcast(
            ipc.pack_config(
                sorted(configuration.members), configuration.transitional
            )
        )
