"""Loopback daemon fleets: N Spread daemons + M concurrent clients.

The paper validates on a real deployment — daemons exchanging UDP
datagrams, clients attached over IPC.  :class:`Fleet` stands up that
shape on loopback: N :class:`~repro.spread.daemon.SpreadDaemon` rings
over kernel-assigned UDP ports (no hard-coded bases, any number of
fleets coexist), unix client sockets in a private working directory,
client connection lifecycle management (connect, round-robin placement,
reconnect after a daemon restart), crash/restart of individual daemons,
and graceful drain.  Client fan-out rides the daemons' bounded send
queues, so slow clients are flow-blocked/disconnected, never buffered
without limit.

:func:`run_fleet_workload` drives a closed-loop workload over a fleet —
each client multicasts to a shared group and paces itself on the
ordered return of its own messages — and reports throughput, latency
percentiles, and the backpressure/leak counters the acceptance tests
and ``repro fleet run`` gate on.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.membership.params import MembershipTimeouts
from repro.runtime.backpressure import DEFAULT_CLIENT_WINDOW_BYTES
from repro.runtime.ipc import UnixEndpoint
from repro.runtime.ports import ephemeral_ring_addresses
from repro.runtime.transport import PeerAddress
from repro.spread.client_api import SpreadClient
from repro.spread.daemon import SpreadDaemon

#: Membership timeouts for loopback fleets: tight enough that a 3-daemon
#: ring forms in well under a second and reforms quickly after a crash,
#: loose enough not to flake under CI scheduling jitter.
FLEET_TIMEOUTS = MembershipTimeouts(
    token_loss=0.25,
    join_interval=0.05,
    consensus_timeout=0.2,
    commit_timeout=0.5,
    recovery_status_interval=0.05,
    recovery_timeout=2.0,
    beacon_interval=0.2,
)


class FleetError(RuntimeError):
    """A fleet failed to reach the requested state (form, reform, drain)."""


class Fleet:
    """N loopback Spread daemons with managed client connections."""

    def __init__(
        self,
        num_daemons: int = 3,
        accelerated: bool = True,
        workdir: Optional[str] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        client_window_bytes: int = DEFAULT_CLIENT_WINDOW_BYTES,
        **daemon_kwargs,
    ) -> None:
        if num_daemons < 1:
            raise ValueError("a fleet needs at least one daemon")
        self.num_daemons = num_daemons
        self.accelerated = accelerated
        self.timeouts = timeouts or FLEET_TIMEOUTS
        self.client_window_bytes = client_window_bytes
        self._daemon_kwargs = daemon_kwargs
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-fleet-")
        self.addresses: Dict[int, PeerAddress] = {}
        self.daemons: Dict[int, SpreadDaemon] = {}
        self.clients: List[SpreadClient] = []
        self._next_placement = 0
        self._started = False

    # ------------------------------------------------------------------
    # Daemon lifecycle
    # ------------------------------------------------------------------

    def socket_path(self, pid: int) -> str:
        return os.path.join(self.workdir, f"daemon-{pid}.sock")

    def _make_daemon(self, pid: int) -> SpreadDaemon:
        return SpreadDaemon(
            pid,
            self.addresses,
            self.socket_path(pid),
            accelerated=self.accelerated,
            timeouts=self.timeouts,
            client_window_bytes=self.client_window_bytes,
            **self._daemon_kwargs,
        )

    async def start(self, form_timeout: float = 10.0) -> None:
        """Boot every daemon and wait for a single full ring to form."""
        self.addresses = ephemeral_ring_addresses(range(self.num_daemons))
        for pid in range(self.num_daemons):
            self.daemons[pid] = self._make_daemon(pid)
        for daemon in self.daemons.values():
            await daemon.start()
        self._started = True
        await self.wait_for_ring(timeout=form_timeout)

    async def wait_for_ring(
        self, timeout: float = 10.0, pids: Optional[Sequence[int]] = None
    ) -> None:
        """Poll until the given daemons agree on one operational ring."""
        want = tuple(sorted(pids if pids is not None else self.daemons))
        deadline = time.monotonic() + timeout
        while True:
            nodes = [self.daemons[pid].node for pid in want]
            if all(
                node.state == "operational" and tuple(node.members) == want
                for node in nodes
            ):
                return
            if time.monotonic() > deadline:
                states = {pid: self.daemons[pid].node.state for pid in want}
                raise FleetError(f"ring did not form within {timeout}s: {states}")
            await asyncio.sleep(0.02)

    async def crash_daemon(self, pid: int) -> None:
        """Fail-stop one daemon; its clients see their connection die."""
        daemon = self.daemons.pop(pid)
        await daemon.stop()

    async def restart_daemon(self, pid: int, form_timeout: float = 10.0) -> None:
        """Bring a crashed daemon back on its original addresses."""
        if pid in self.daemons:
            raise FleetError(f"daemon {pid} is already running")
        daemon = self._make_daemon(pid)
        self.daemons[pid] = daemon
        await daemon.start()
        await self.wait_for_ring(timeout=form_timeout)

    # ------------------------------------------------------------------
    # Client lifecycle
    # ------------------------------------------------------------------

    def live_pids(self) -> List[int]:
        return sorted(self.daemons)

    async def connect_client(
        self, name: str = "", pid: Optional[int] = None
    ) -> SpreadClient:
        """Connect one client, round-robin across live daemons by default."""
        if not self._started:
            raise FleetError("fleet is not started")
        live = self.live_pids()
        if pid is None:
            pid = live[self._next_placement % len(live)]
            self._next_placement += 1
        elif pid not in self.daemons:
            raise FleetError(f"daemon {pid} is not running")
        client = SpreadClient(
            endpoint=UnixEndpoint(path=self.socket_path(pid)), name=name
        )
        await client.connect()
        self.clients.append(client)
        return client

    async def disconnect_client(self, client: SpreadClient) -> None:
        if client in self.clients:
            self.clients.remove(client)
        await client.close()

    # ------------------------------------------------------------------
    # Shutdown and observability
    # ------------------------------------------------------------------

    async def drain_and_stop(self) -> None:
        """Graceful drain: clients disconnect first, then daemons stop."""
        for client in list(self.clients):
            try:
                await client.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self.clients.clear()
        for pid in sorted(self.daemons):
            await self.daemons[pid].stop()
        self.daemons.clear()
        self._started = False
        if self._own_workdir:
            try:
                for entry in os.listdir(self.workdir):
                    os.unlink(os.path.join(self.workdir, entry))
                os.rmdir(self.workdir)
            except OSError:
                pass

    def counters(self) -> Dict[str, int]:
        """Fleet-wide health counters (backpressure, codec, batching)."""
        totals = {
            "messages_delivered_to_clients": 0,
            "clients_dropped_slow": 0,
            "decode_errors": 0,
            "batches_sent": 0,
            "batched_messages": 0,
            "datagrams_sent": 0,
        }
        for daemon in self.daemons.values():
            totals["messages_delivered_to_clients"] += (
                daemon.messages_delivered_to_clients
            )
            totals["clients_dropped_slow"] += daemon.clients_dropped_slow
            totals["decode_errors"] += daemon.node.decode_errors
            totals["batches_sent"] += daemon.node.batches_sent
            totals["batched_messages"] += daemon.node.batched_messages
            totals["datagrams_sent"] += daemon.node.transport.datagrams_sent
        return totals


# ----------------------------------------------------------------------
# Closed-loop workload
# ----------------------------------------------------------------------


@dataclass
class _ClientLoopState:
    """One workload client: its connection and in-flight bookkeeping."""

    index: int
    client: SpreadClient
    sent: int = 0
    acked: int = 0
    received_total: int = 0
    latencies: List[float] = field(default_factory=list)
    send_times: Dict[int, float] = field(default_factory=dict)
    reconnects: int = 0


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


async def run_fleet_workload(
    fleet: Fleet,
    num_clients: int,
    duration: float = 2.0,
    payload_size: int = 64,
    group: str = "fleet",
    pipeline: int = 1,
    crash_pid: Optional[int] = None,
    crash_after: float = 0.5,
    restart_after: float = 0.5,
) -> Dict[str, object]:
    """Drive a closed-loop workload and report throughput/latency/health.

    Each client joins ``group`` and keeps ``pipeline`` multicasts in
    flight, sending the next only when the ordered echo of its own
    previous message arrives — closed-loop load, so the offered rate
    adapts to what the ring sustains instead of overrunning it.  With
    ``crash_pid`` set, that daemon is crashed ``crash_after`` seconds in
    and restarted ``restart_after`` seconds later; its clients reconnect
    to a surviving daemon and resume (connection lifecycle under fire).
    """
    states: List[_ClientLoopState] = []
    for index in range(num_clients):
        client = await fleet.connect_client(name=f"w{index}")
        states.append(_ClientLoopState(index=index, client=client))
    for state in states:
        await state.client.join(group)
    # Every client must observe the full membership before the clock
    # starts, or early multicasts fan out to a partial group.
    for state in states:
        await state.client.wait_for_view(group, num_clients)

    pad = b"x" * max(0, payload_size - 24)
    stop_at = time.monotonic() + duration

    async def pump(state: _ClientLoopState) -> None:
        client = state.client
        marker = f"w{state.index}:".encode()

        def fire(now: float) -> None:
            payload = marker + str(state.sent).encode() + b":" + pad
            client.multicast([group], payload)
            state.send_times[state.sent] = now
            state.sent += 1

        for _ in range(pipeline):
            fire(time.monotonic())
        while True:
            now = time.monotonic()
            if now >= stop_at and state.acked >= state.sent:
                return
            try:
                message = await asyncio.wait_for(client.receive(), timeout=5.0)
            except asyncio.TimeoutError:
                return
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                # Our daemon died (or dropped us): reconnect to a live
                # one and resume the loop.  In-flight messages may or
                # may not have been ordered; closed-loop restarts them.
                if time.monotonic() >= stop_at or not fleet.live_pids():
                    return
                if client in fleet.clients:
                    fleet.clients.remove(client)
                try:
                    await client.close()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
                client = await fleet.connect_client(name=f"w{state.index}r")
                state.client = client
                state.reconnects += 1
                await client.join(group)
                state.send_times.clear()
                state.acked = state.sent
                if time.monotonic() < stop_at:
                    for _ in range(pipeline):
                        fire(time.monotonic())
                continue
            if not hasattr(message, "payload"):
                continue  # group view change
            state.received_total += 1
            if message.payload.startswith(marker):
                seq = int(message.payload.split(b":", 2)[1])
                sent_at = state.send_times.pop(seq, None)
                now = time.monotonic()
                if sent_at is not None:
                    state.latencies.append(now - sent_at)
                state.acked += 1
                if now < stop_at:
                    fire(now)
                elif state.acked >= state.sent:
                    return

    async def chaos() -> None:
        if crash_pid is None:
            return
        await asyncio.sleep(crash_after)
        await fleet.crash_daemon(crash_pid)
        await asyncio.sleep(restart_after)
        await fleet.restart_daemon(crash_pid, form_timeout=15.0)

    started = time.monotonic()
    tasks = [asyncio.ensure_future(pump(state)) for state in states]
    chaos_task = asyncio.ensure_future(chaos())
    await asyncio.gather(*tasks)
    await chaos_task
    elapsed = time.monotonic() - started

    latencies = sorted(lat for state in states for lat in state.latencies)
    total_sent = sum(state.sent for state in states)
    total_acked = sum(state.acked for state in states)
    total_received = sum(state.received_total for state in states)
    counters = fleet.counters()
    return {
        "clients": num_clients,
        "daemons": fleet.num_daemons,
        "duration_s": round(elapsed, 4),
        "messages_sent": total_sent,
        "messages_acked": total_acked,
        "messages_received": total_received,
        "msgs_per_sec": round(total_acked / elapsed, 1) if elapsed > 0 else 0.0,
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "reconnects": sum(state.reconnects for state in states),
        "counters": counters,
    }
