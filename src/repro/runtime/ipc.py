"""Client-daemon IPC framing and endpoint addressing.

Daemons and their local clients talk over a unix stream socket using
length-prefixed frames: ``!BI`` (opcode, body length) followed by the
body.  Mirrors Spread's IPC-socket client communication (paper §III-E).

Where a client connects is described by an :data:`Endpoint` — either a
:class:`UnixEndpoint` (co-located client, the paper's recommended LAN
setup) or a :class:`TcpEndpoint` (remote client).  Client constructors
take one ``endpoint`` argument instead of mutually-exclusive
``socket_path``/``tcp_address`` keywords; :func:`resolve_endpoint`
keeps the old keywords working behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import asyncio
import struct
import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.messages import DeliveryService
from repro.util.errors import CodecError


@dataclass(frozen=True)
class UnixEndpoint:
    """A daemon's local unix stream socket."""

    path: str

    def __post_init__(self) -> None:
        if not isinstance(self.path, str) or not self.path:
            raise ValueError(f"unix endpoint needs a non-empty path, got {self.path!r}")

    async def open(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_unix_connection(self.path)

    def __str__(self) -> str:
        return f"unix://{self.path}"


@dataclass(frozen=True)
class TcpEndpoint:
    """A daemon's TCP listener, for clients not co-located with it."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ValueError(f"tcp endpoint needs a non-empty host, got {self.host!r}")
        if (
            isinstance(self.port, bool)
            or not isinstance(self.port, int)
            or not 0 < self.port < 65536
        ):
            raise ValueError(f"tcp endpoint needs a port in 1..65535, got {self.port!r}")

    async def open(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    def __str__(self) -> str:
        return f"tcp://{self.host}:{self.port}"


#: Where a client connects: a unix socket or a TCP listener.
Endpoint = Union[UnixEndpoint, TcpEndpoint]

#: Anything :func:`parse_endpoint` accepts.
EndpointSpec = Union[Endpoint, str, Tuple[str, int]]


def parse_endpoint(spec: EndpointSpec) -> Endpoint:
    """Interpret ``spec`` as an :data:`Endpoint`.

    Accepts an :data:`Endpoint` (returned unchanged), ``"unix://<path>"``,
    ``"tcp://<host>:<port>"``, a ``(host, port)`` tuple, or a bare path
    string (treated as a unix socket path).
    """
    if isinstance(spec, (UnixEndpoint, TcpEndpoint)):
        return spec
    if isinstance(spec, tuple):
        if len(spec) != 2:
            raise ValueError(f"endpoint tuple must be (host, port), got {spec!r}")
        host, port = spec
        return TcpEndpoint(host=host, port=port)
    if isinstance(spec, str):
        if spec.startswith("unix://"):
            return UnixEndpoint(path=spec[len("unix://") :])
        if spec.startswith("tcp://"):
            rest = spec[len("tcp://") :]
            host, sep, port = rest.rpartition(":")
            if not sep or not port.isdigit():
                raise ValueError(f"malformed tcp endpoint {spec!r}; want tcp://host:port")
            return TcpEndpoint(host=host, port=int(port))
        return UnixEndpoint(path=spec)
    raise ValueError(f"cannot interpret {spec!r} as an endpoint")


def resolve_endpoint(
    endpoint: Optional[EndpointSpec] = None,
    socket_path: Optional[str] = None,
    tcp_address: Optional[Tuple[str, int]] = None,
    *,
    owner: str = "client",
) -> Endpoint:
    """Resolve a constructor's endpoint arguments into one :data:`Endpoint`.

    Exactly one of ``endpoint``, ``socket_path``, or ``tcp_address`` must be
    given.  The latter two are the pre-endpoint API and emit a
    :class:`DeprecationWarning`; new code passes ``endpoint``.
    """
    if socket_path is not None or tcp_address is not None:
        warnings.warn(
            f"{owner}: socket_path=/tcp_address= are deprecated; pass "
            "endpoint=UnixEndpoint(path), endpoint=TcpEndpoint(host, port), "
            'or a spec string like "tcp://host:port"',
            DeprecationWarning,
            stacklevel=3,
        )
    provided = [spec for spec in (endpoint, socket_path, tcp_address) if spec is not None]
    if len(provided) != 1:
        raise ValueError(
            f"{owner} needs exactly one endpoint, got {len(provided)}: pass "
            "endpoint= (an Endpoint, a path, or a unix://- or tcp://-spec)"
        )
    if socket_path is not None:
        return UnixEndpoint(path=socket_path)
    if tcp_address is not None:
        host, port = tcp_address
        return TcpEndpoint(host=host, port=port)
    assert endpoint is not None
    return parse_endpoint(endpoint)

OP_SUBMIT = 1
OP_DELIVER = 2
OP_CONFIG = 3
OP_JOIN = 4
OP_LEAVE = 5
OP_GROUPCAST = 6
OP_GROUP_VIEW = 7
OP_HELLO = 8
OP_WELCOME = 9

_FRAME_HEADER = struct.Struct("!BI")
# deliver body prefix: sender, seq, service
_DELIVER_PREFIX = struct.Struct("!IQB")
# submit body prefix: service
_SUBMIT_PREFIX = struct.Struct("!B")

MAX_FRAME = 16 * 1024 * 1024


def pack_frame(opcode: int, body: bytes) -> bytes:
    return _FRAME_HEADER.pack(opcode, len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    header = await reader.readexactly(_FRAME_HEADER.size)
    opcode, length = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise CodecError(f"frame too large: {length}")
    body = await reader.readexactly(length) if length else b""
    return opcode, body


def pack_submit(service: DeliveryService, payload: bytes) -> bytes:
    return pack_frame(OP_SUBMIT, _SUBMIT_PREFIX.pack(int(service)) + payload)


def unpack_submit(body: bytes) -> Tuple[DeliveryService, bytes]:
    (service,) = _SUBMIT_PREFIX.unpack_from(body)
    return DeliveryService(service), body[_SUBMIT_PREFIX.size :]


def pack_deliver(sender: int, seq: int, service: DeliveryService, payload: bytes) -> bytes:
    return pack_frame(OP_DELIVER, _DELIVER_PREFIX.pack(sender, seq, int(service)) + payload)


@dataclass(frozen=True)
class Delivery:
    """One message as seen by a receiving client."""

    sender: int
    seq: int
    service: DeliveryService
    payload: bytes


def unpack_deliver(body: bytes) -> Delivery:
    sender, seq, service = _DELIVER_PREFIX.unpack_from(body)
    return Delivery(
        sender=sender,
        seq=seq,
        service=DeliveryService(service),
        payload=body[_DELIVER_PREFIX.size :],
    )


def pack_config(members: List[int], transitional: bool) -> bytes:
    body = struct.pack(f"!BI{len(members)}I", 1 if transitional else 0, len(members), *members)
    return pack_frame(OP_CONFIG, body)


def unpack_config(body: bytes) -> Tuple[List[int], bool]:
    transitional, count = struct.unpack_from("!BI", body)
    members = list(struct.unpack_from(f"!{count}I", body, 5))
    return members, bool(transitional)


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("!H", len(raw)) + raw


def _unpack_str(body: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("!H", body, offset)
    start = offset + 2
    return body[start : start + length].decode("utf-8"), start + length


def pack_group_op(opcode: int, group: str) -> bytes:
    return pack_frame(opcode, _pack_str(group))


def unpack_group_op(body: bytes) -> str:
    group, _ = _unpack_str(body, 0)
    return group


def pack_groupcast(groups: List[str], service: DeliveryService, payload: bytes) -> bytes:
    parts = [struct.pack("!BB", int(service), len(groups))]
    for group in groups:
        parts.append(_pack_str(group))
    parts.append(payload)
    return pack_frame(OP_GROUPCAST, b"".join(parts))


def unpack_groupcast(body: bytes) -> Tuple[List[str], DeliveryService, bytes]:
    service, count = struct.unpack_from("!BB", body)
    offset = 2
    groups = []
    for _ in range(count):
        group, offset = _unpack_str(body, offset)
        groups.append(group)
    return groups, DeliveryService(service), body[offset:]


def pack_hello(private_name: str) -> bytes:
    return pack_frame(OP_HELLO, _pack_str(private_name))


def unpack_hello(body: bytes) -> str:
    name, _ = _unpack_str(body, 0)
    return name


def pack_welcome(member_name: str) -> bytes:
    return pack_frame(OP_WELCOME, _pack_str(member_name))


def unpack_welcome(body: bytes) -> str:
    name, _ = _unpack_str(body, 0)
    return name


def pack_group_view(group: str, members: List[str]) -> bytes:
    parts = [_pack_str(group), struct.pack("!I", len(members))]
    for member in members:
        parts.append(_pack_str(member))
    return pack_frame(OP_GROUP_VIEW, b"".join(parts))


def unpack_group_view(body: bytes) -> Tuple[str, List[str]]:
    group, offset = _unpack_str(body, 0)
    (count,) = struct.unpack_from("!I", body, offset)
    offset += 4
    members = []
    for _ in range(count):
        member, offset = _unpack_str(body, offset)
        members.append(member)
    return group, members
