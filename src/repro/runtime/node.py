"""A full protocol stack on one asyncio event loop.

:class:`RingNode` is the runtime equivalent of the paper's library-based
prototype: the process itself injects and receives messages.  It wires a
:class:`~repro.membership.controller.MembershipController` (which wraps
the ordering engine) to a :class:`~repro.runtime.transport.UdpTransport`,
executes timer effects with ``loop.call_later``, and implements the
token/data priority discipline over two receive queues.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.events import Effect, MulticastData, SendToken
from repro.core.messages import DataMessage, DeliveryService
from repro.evs.configuration import Configuration
from repro.membership.codec import decode_any, encode_any
from repro.membership.controller import MembershipController
from repro.membership.effects import (
    CancelTimer,
    DeliverConfiguration,
    DeliverMessage,
    DeliverMessageBatch,
    SendControl,
    SetTimer,
)
from repro.membership.params import MembershipTimeouts
from repro.runtime.transport import PeerAddress, UdpTransport
from repro.util.errors import CodecError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

#: Wall-clock membership timeouts suitable for loopback rings.
RUNTIME_TIMEOUTS = MembershipTimeouts(
    token_loss=0.5,
    join_interval=0.1,
    consensus_timeout=0.4,
    commit_timeout=1.0,
    recovery_status_interval=0.1,
    recovery_timeout=3.0,
    beacon_interval=0.5,
)

DeliverCallback = Callable[[DataMessage, int], None]
ConfigCallback = Callable[[Configuration], None]


class RingNode:
    """One process in a (loopback) ring."""

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        accelerated: bool = True,
        protocol_config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        token_loss_rate: float = 0.0,
        observer: Optional["ProtocolObserver"] = None,
    ) -> None:
        self.pid = pid
        self.observer = observer
        self.controller = MembershipController(
            pid=pid,
            accelerated=accelerated,
            protocol_config=protocol_config or ProtocolConfig(),
            timeouts=timeouts or RUNTIME_TIMEOUTS,
            observer=observer,
        )
        self.transport = UdpTransport(
            pid=pid,
            peers=peers,
            on_data=self._enqueue_data,
            on_token=self._enqueue_token,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
            token_loss_rate=token_loss_rate,
        )
        self.delivered: List[DataMessage] = []
        self.configurations: List[Configuration] = []
        self.on_deliver: Optional[DeliverCallback] = None
        self.on_config: Optional[ConfigCallback] = None

        self._data_queue: Deque[bytes] = deque()
        self._token_queue: Deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._timers: Dict[str, asyncio.TimerHandle] = {}
        self._loop_task: Optional[asyncio.Task] = None
        self._closed = False
        self.decode_errors = 0

    # ------------------------------------------------------------------

    async def start(self) -> None:
        # Observer timestamps use the event-loop clock — the same clock
        # ``submit`` stamps messages with, so delivery latencies subtract
        # cleanly.
        self.controller.clock = asyncio.get_running_loop().time
        await self.transport.start()
        self._loop_task = asyncio.get_running_loop().create_task(self._run())
        self._execute(self.controller.start())

    async def stop(self) -> None:
        """Fail-stop this node (crash semantics: nothing is flushed)."""
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except asyncio.CancelledError:
                pass
            self._loop_task = None
        self.transport.close()

    def submit(
        self,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        loop = asyncio.get_running_loop()
        self.controller.submit(payload=payload, service=service, timestamp=loop.time())

    @property
    def members(self) -> tuple:
        return self.controller.members

    @property
    def state(self) -> str:
        return self.controller.state.value

    def metrics_snapshot(self):
        """Snapshot of this node's observer metrics (wall-clock domain).

        Requires an observer with a ``snapshot()`` method (e.g.
        :class:`~repro.obs.observer.MetricsObserver`).
        """
        snapshot = getattr(self.observer, "snapshot", None)
        if snapshot is None:
            raise RuntimeError(
                "node was not built with a metrics-collecting observer"
            )
        return snapshot()

    # ------------------------------------------------------------------

    def _enqueue_data(self, datagram: bytes) -> None:
        self._data_queue.append(datagram)
        self._wakeup.set()

    def _enqueue_token(self, datagram: bytes) -> None:
        self._token_queue.append(datagram)
        self._wakeup.set()

    async def _run(self) -> None:
        """The single-threaded processing loop with §III-D priority."""
        while not self._closed:
            if not self._data_queue and not self._token_queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            token_available = bool(self._token_queue)
            data_available = bool(self._data_queue)
            if token_available and (
                self.controller.token_has_priority or not data_available
            ):
                datagram = self._token_queue.popleft()
            else:
                datagram = self._data_queue.popleft()
            self._handle(datagram)
            # Yield to the event loop so sends and timers interleave.
            await asyncio.sleep(0)

    def _handle(self, datagram: bytes) -> None:
        try:
            message = decode_any(datagram)
        except CodecError:
            self.decode_errors += 1
            return
        self._execute(self.controller.on_message(message))

    def _fire_timer(self, name: str) -> None:
        if self._closed:
            return
        self._timers.pop(name, None)
        self._execute(self.controller.on_timer(name))

    # ------------------------------------------------------------------

    def _execute(self, effects: List[Effect]) -> None:
        loop = asyncio.get_running_loop()
        for effect in effects:
            if isinstance(effect, MulticastData):
                self.transport.multicast_data(encode_any(effect.message))
            elif isinstance(effect, SendToken):
                self.transport.send_token(encode_any(effect.token), effect.destination)
            elif isinstance(effect, SendControl):
                self.transport.send_control(encode_any(effect.message), effect.destination)
            elif isinstance(effect, SetTimer):
                previous = self._timers.pop(effect.name, None)
                if previous is not None:
                    previous.cancel()
                self._timers[effect.name] = loop.call_later(
                    effect.delay, self._fire_timer, effect.name
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.name, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, DeliverMessage):
                self.delivered.append(effect.message)
                if self.on_deliver is not None:
                    self.on_deliver(effect.message, effect.config_id)
            elif isinstance(effect, DeliverMessageBatch):
                self.delivered.extend(effect.messages)
                if self.on_deliver is not None:
                    config_id = effect.config_id
                    for message in effect.messages:
                        self.on_deliver(message, config_id)
            elif isinstance(effect, DeliverConfiguration):
                self.configurations.append(effect.configuration)
                if self.on_config is not None:
                    self.on_config(effect.configuration)
            else:
                raise TypeError(f"unknown effect {effect!r}")
