"""A full protocol stack on one asyncio event loop.

:class:`RingNode` is the runtime equivalent of the paper's library-based
prototype: the process itself injects and receives messages.  It wires a
:class:`~repro.membership.controller.MembershipController` (which wraps
the ordering engine) to a :class:`~repro.runtime.transport.UdpTransport`,
executes timer effects with ``loop.call_later``, and implements the
token/data priority discipline over two receive queues.

The datagram path is the shared sans-io transport core
(:mod:`repro.core.transport_core`): received datagrams queue through
:class:`FrameRing` rings, outbound multicast runs coalesce through the
same :class:`CoalescingAccumulator` the simulator prices, and the data
port is decoded with the port-aware :func:`decode_data_port` (batches
and single data messages only — the token port carries everything else
via ``decode_any``).  None of that logic lives here; this module only
binds it to sockets, timers, and the event loop.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.events import Effect, MulticastData, SendToken
from repro.core.messages import DataMessage, DeliveryService
from repro.core.transport_core import (
    CoalescingAccumulator,
    FrameRing,
    decode_data_port,
    encode_run,
)
from repro.evs.configuration import Configuration
from repro.membership.codec import decode_any, encode_any
from repro.membership.controller import MembershipController
from repro.membership.effects import (
    CancelTimer,
    DeliverConfiguration,
    DeliverMessage,
    DeliverMessageBatch,
    SendControl,
    SetTimer,
)
from repro.membership.params import MembershipTimeouts
from repro.runtime.transport import PeerAddress, UdpTransport
from repro.util.errors import CodecError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

#: Wall-clock membership timeouts suitable for loopback rings.
RUNTIME_TIMEOUTS = MembershipTimeouts(
    token_loss=0.5,
    join_interval=0.1,
    consensus_timeout=0.4,
    commit_timeout=1.0,
    recovery_status_interval=0.1,
    recovery_timeout=3.0,
    beacon_interval=0.5,
)

DeliverCallback = Callable[[DataMessage, int], None]
ConfigCallback = Callable[[Configuration], None]
Clock = Callable[[], float]


class RingNode:
    """One process in a (loopback) ring."""

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        accelerated: bool = True,
        protocol_config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        token_loss_rate: float = 0.0,
        observer: Optional["ProtocolObserver"] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.pid = pid
        self.observer = observer
        config = protocol_config or ProtocolConfig()
        self.controller = MembershipController(
            pid=pid,
            accelerated=accelerated,
            protocol_config=config,
            timeouts=timeouts or RUNTIME_TIMEOUTS,
            observer=observer,
        )
        self.transport = UdpTransport(
            pid=pid,
            peers=peers,
            on_data=self._enqueue_data,
            on_token=self._enqueue_token,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
            token_loss_rate=token_loss_rate,
        )
        self.delivered: List[DataMessage] = []
        self.configurations: List[Configuration] = []
        self.on_deliver: Optional[DeliverCallback] = None
        self.on_config: Optional[ConfigCallback] = None

        #: Injectable monotonic time source.  Defaults to the running
        #: event loop's clock (bound lazily in :meth:`start`): tests
        #: inject a controllable clock so membership timeouts can be
        #: tightened without flaking on slow CI machines, and so message
        #: timestamps / observer events share one time domain.
        self._clock: Optional[Clock] = clock
        #: Shared run-grouping policy — the same accumulator the sim
        #: driver prices; here completed runs are encoded with
        #: ``encode_run`` and put on the wire.  Drained before _execute
        #: returns, so it never holds messages across effect lists.
        self._coalescer = CoalescingAccumulator(config.messages_per_datagram)
        self._data_queue = FrameRing()
        self._token_queue = FrameRing()
        self._wakeup = asyncio.Event()
        self._timers: Dict[str, asyncio.TimerHandle] = {}
        self._loop_task: Optional[asyncio.Task] = None
        self._closed = False
        self.decode_errors = 0
        #: Coalesced datagrams actually sent (runs of >= 2 messages).
        self.batches_sent = 0
        self.batched_messages = 0

    # ------------------------------------------------------------------

    def _now(self) -> float:
        clock = self._clock
        if clock is not None:
            return clock()
        return asyncio.get_running_loop().time()

    async def start(self) -> None:
        # Observer timestamps use the injected clock (default: the event
        # loop's) — the same clock ``submit`` stamps messages with, so
        # delivery latencies subtract cleanly.
        if self._clock is None:
            self._clock = asyncio.get_running_loop().time
        self.controller.clock = self._clock
        await self.transport.start()
        self._loop_task = asyncio.get_running_loop().create_task(self._run())
        self._execute(self.controller.start())

    async def stop(self) -> None:
        """Fail-stop this node (crash semantics: nothing is flushed)."""
        self._closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except asyncio.CancelledError:
                pass
            self._loop_task = None
        self.transport.close()

    def submit(
        self,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        self.controller.submit(payload=payload, service=service, timestamp=self._now())

    @property
    def members(self) -> tuple:
        return self.controller.members

    @property
    def state(self) -> str:
        return self.controller.state.value

    @property
    def ring_id(self):
        """Installed ring's config id (None before the first ring forms)."""
        return self.controller.ring_id

    def metrics_snapshot(self):
        """Snapshot of this node's observer metrics (wall-clock domain).

        Requires an observer with a ``snapshot()`` method (e.g.
        :class:`~repro.obs.observer.MetricsObserver`).
        """
        snapshot = getattr(self.observer, "snapshot", None)
        if snapshot is None:
            raise RuntimeError(
                "node was not built with a metrics-collecting observer"
            )
        return snapshot()

    # ------------------------------------------------------------------

    def _enqueue_data(self, datagram: bytes) -> None:
        self._data_queue.push(datagram)
        self._wakeup.set()

    def _enqueue_token(self, datagram: bytes) -> None:
        self._token_queue.push(datagram)
        self._wakeup.set()

    async def _run(self) -> None:
        """The single-threaded processing loop with §III-D priority."""
        data_queue = self._data_queue
        token_queue = self._token_queue
        while not self._closed:
            if not data_queue and not token_queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            token_available = bool(token_queue)
            data_available = bool(data_queue)
            if token_available and (
                self.controller.token_has_priority or not data_available
            ):
                self._handle_token(token_queue.pop())
            else:
                self._handle_data(data_queue.pop())
            # Yield to the event loop so sends and timers interleave.
            await asyncio.sleep(0)

    def _handle_data(self, datagram: bytes) -> None:
        """Decode one data-port datagram: a single message or a batch."""
        try:
            decoded = decode_data_port(datagram)
        except CodecError:
            self.decode_errors += 1
            return
        if type(decoded) is list:
            self._execute(self.controller.on_data_batch(decoded))
        else:
            self._execute(self.controller.on_message(decoded))

    def _handle_token(self, datagram: bytes) -> None:
        """Decode one token-port datagram (tokens + membership control)."""
        try:
            message = decode_any(datagram)
        except CodecError:
            self.decode_errors += 1
            return
        self._execute(self.controller.on_message(message))

    def _fire_timer(self, name: str) -> None:
        if self._closed:
            return
        self._timers.pop(name, None)
        self._execute(self.controller.on_timer(name))

    # ------------------------------------------------------------------

    def _send_run(self, group: List[DataMessage]) -> None:
        if len(group) > 1:
            self.batches_sent += 1
            self.batched_messages += len(group)
        self.transport.multicast_data(encode_run(group))

    def _execute(self, effects: List[Effect]) -> None:
        loop = asyncio.get_running_loop()
        # Coalescing mirrors the sim driver exactly: runs of consecutive
        # new multicasts pack into one datagram, flushed at the first
        # effect of any other kind (the token must not overtake pre-token
        # sends) and at the end of the effect list.
        acc = self._coalescer
        mpd = acc.mpd
        for effect in effects:
            if acc.group is not None and not isinstance(effect, MulticastData):
                self._send_run(acc.take())
            if isinstance(effect, MulticastData):
                if mpd > 1 and not effect.retransmission:
                    full = acc.push(effect.message)
                    if full is not None:
                        self._send_run(full)
                    continue
                if acc.group is not None:
                    self._send_run(acc.take())
                self.transport.multicast_data(encode_any(effect.message))
            elif isinstance(effect, SendToken):
                self.transport.send_token(encode_any(effect.token), effect.destination)
            elif isinstance(effect, SendControl):
                self.transport.send_control(encode_any(effect.message), effect.destination)
            elif isinstance(effect, SetTimer):
                previous = self._timers.pop(effect.name, None)
                if previous is not None:
                    previous.cancel()
                self._timers[effect.name] = loop.call_later(
                    effect.delay, self._fire_timer, effect.name
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.name, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, DeliverMessage):
                self.delivered.append(effect.message)
                if self.on_deliver is not None:
                    self.on_deliver(effect.message, effect.config_id)
            elif isinstance(effect, DeliverMessageBatch):
                self.delivered.extend(effect.messages)
                if self.on_deliver is not None:
                    config_id = effect.config_id
                    for message in effect.messages:
                        self.on_deliver(message, config_id)
            elif isinstance(effect, DeliverConfiguration):
                self.configurations.append(effect.configuration)
                if self.on_config is not None:
                    self.on_config(effect.configuration)
            else:
                raise TypeError(f"unknown effect {effect!r}")
        tail = acc.take()
        if tail is not None:
            self._send_run(tail)
