"""Ephemeral port reservation for loopback rings, fleets, and tests.

Hard-coded port numbers make loopback tests order-dependent (two tests
picking the same base collide) and hostile to parallel CI.  Every
runtime consumer — the fleet launcher, the differential oracle, the
integration tests — reserves ports here instead: bind to port 0, let
the kernel pick a free port, record it, and release the socket.  The
tiny reserve-then-rebind race is acceptable on loopback (nothing else
is grabbing ports at CI rates), and in exchange any number of fleets
can run side by side.

Reservations are recorded in :data:`GRANTED_PORTS` so the test-suite
tripwire (``tests/conftest.py``) can tell a reserved port apart from a
hard-coded one: binding a literal port number fails the test, binding
a reserved one does not.
"""

from __future__ import annotations

import socket
from typing import Dict, Iterable, Set

from repro.runtime.transport import PeerAddress

#: Every port handed out by the reservation helpers, for the lifetime of
#: the process.  Ports are never removed: a reservation is a statement
#: that the port was kernel-assigned, which stays true after close.
GRANTED_PORTS: Set[int] = set()


def reserve_udp_port(host: str = "127.0.0.1") -> int:
    """Reserve a kernel-assigned UDP port on ``host`` and release it."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind((host, 0))
        port = sock.getsockname()[1]
    finally:
        sock.close()
    GRANTED_PORTS.add(port)
    return port


def reserve_tcp_port(host: str = "127.0.0.1") -> int:
    """Reserve a kernel-assigned TCP port on ``host`` and release it."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        port = sock.getsockname()[1]
    finally:
        sock.close()
    GRANTED_PORTS.add(port)
    return port


def ephemeral_ring_addresses(
    pids: Iterable[int], host: str = "127.0.0.1"
) -> Dict[int, PeerAddress]:
    """Kernel-assigned data/token port pairs for each pid on ``host``.

    The ephemeral replacement for
    :func:`repro.runtime.transport.local_ring_addresses`: same shape,
    no fixed base port, safe to call from any number of concurrent
    fleets or tests.
    """
    return {
        pid: PeerAddress(
            pid=pid,
            host=host,
            data_port=reserve_udp_port(host),
            token_port=reserve_udp_port(host),
        )
        for pid in pids
    }
