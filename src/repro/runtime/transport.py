"""UDP transports for the real runtime.

Each node owns two UDP sockets — one for the token (and membership
control) and one for data — so the receive path can prioritize one class
over the other exactly as described in paper §III-E.  Logical multicast
is built from unicast fan-out to every peer, which is the fallback the
paper notes Spread offers when IP-multicast is unavailable (it is
typically unavailable on loopback test environments too).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional


@dataclass(frozen=True)
class PeerAddress:
    """Where one ring member listens."""

    pid: int
    host: str
    data_port: int
    token_port: int


def local_ring_addresses(pids: Iterable[int], base_port: int = 28800) -> Dict[int, PeerAddress]:
    """Assign loopback ports for a set of participants: each pid gets
    ``base_port + 2*pid`` (data) and ``base_port + 2*pid + 1`` (token)."""
    return {
        pid: PeerAddress(
            pid=pid,
            host="127.0.0.1",
            data_port=base_port + 2 * pid,
            token_port=base_port + 2 * pid + 1,
        )
        for pid in pids
    }


class _Receiver(asyncio.DatagramProtocol):
    def __init__(self, callback: Callable[[bytes], None]) -> None:
        self._callback = callback

    def datagram_received(self, data: bytes, addr) -> None:  # noqa: ANN001
        self._callback(data)


class UdpTransport:
    """Two-socket UDP transport with unicast-fan-out logical multicast.

    ``loss_rate`` drops incoming *data* datagrams with the given i.i.d.
    probability — the runtime equivalent of the paper's instrumented-drop
    loss experiments (§IV-A4); tokens are never dropped by the model.
    """

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        on_data: Callable[[bytes], None],
        on_token: Callable[[bytes], None],
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        token_loss_rate: float = 0.0,
    ) -> None:
        if pid not in peers:
            raise ValueError(f"own pid {pid} missing from peer table")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if not 0.0 <= token_loss_rate < 1.0:
            raise ValueError(
                f"token_loss_rate must be in [0, 1), got {token_loss_rate}"
            )
        self.pid = pid
        self.peers = peers
        self._on_data = on_data
        self._on_token = on_token
        self.loss_rate = loss_rate
        #: Drop rate for token-port datagrams.  The paper's loss
        #: experiments exclude token loss (it is rare and handled by the
        #: membership algorithm); this knob exists to *test* exactly that
        #: membership path over real sockets.
        self.token_loss_rate = token_loss_rate
        self._rng = random.Random(loss_seed)
        self._data_transport: Optional[asyncio.DatagramTransport] = None
        self._token_transport: Optional[asyncio.DatagramTransport] = None
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.tokens_dropped = 0

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        me = self.peers[self.pid]
        self._data_transport, _ = await loop.create_datagram_endpoint(
            lambda: _Receiver(self._receive_data),
            local_addr=(me.host, me.data_port),
        )
        self._token_transport, _ = await loop.create_datagram_endpoint(
            lambda: _Receiver(self._receive_token),
            local_addr=(me.host, me.token_port),
        )

    def close(self) -> None:
        if self._data_transport is not None:
            self._data_transport.close()
            self._data_transport = None
        if self._token_transport is not None:
            self._token_transport.close()
            self._token_transport = None

    # ------------------------------------------------------------------

    def _receive_data(self, data: bytes) -> None:
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.datagrams_dropped += 1
            return
        self._on_data(data)

    def _receive_token(self, data: bytes) -> None:
        if self.token_loss_rate and self._rng.random() < self.token_loss_rate:
            self.tokens_dropped += 1
            return
        self._on_token(data)

    def _require_open(self) -> asyncio.DatagramTransport:
        if self._data_transport is None or self._token_transport is None:
            raise RuntimeError("transport not started")
        return self._data_transport

    def multicast_data(self, payload: bytes) -> None:
        """Send to every peer's data port (the sender keeps its own copy
        locally, so no self-send is needed)."""
        transport = self._require_open()
        for pid, peer in self.peers.items():
            if pid == self.pid:
                continue
            transport.sendto(payload, (peer.host, peer.data_port))
            self.datagrams_sent += 1

    def send_token(self, payload: bytes, dst: int) -> None:
        self._require_open()
        peer = self.peers[dst]
        assert self._token_transport is not None
        self._token_transport.sendto(payload, (peer.host, peer.token_port))
        self.datagrams_sent += 1

    def send_control(self, payload: bytes, dst: Optional[int] = None) -> None:
        """Control messages ride the token port class."""
        self._require_open()
        assert self._token_transport is not None
        if dst is not None:
            peer = self.peers[dst]
            self._token_transport.sendto(payload, (peer.host, peer.token_port))
            self.datagrams_sent += 1
            return
        for pid, peer in self.peers.items():
            if pid == self.pid:
                continue
            self._token_transport.sendto(payload, (peer.host, peer.token_port))
            self.datagrams_sent += 1
