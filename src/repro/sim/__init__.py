"""Drivers binding the sans-io protocol engines to the simulated network.

This is where the paper's three implementations become comparable: the
same protocol engine runs under three :class:`ImplementationProfile`s
(LIBRARY, DAEMON, SPREAD) that differ only in per-message CPU costs and
header sizes — exactly the differences the paper attributes to the
library-based prototype, the daemon-based prototype, and production
Spread.
"""

from repro.sim.profiles import ImplementationProfile, LIBRARY, DAEMON, SPREAD
from repro.sim.driver import ProtocolHost
from repro.sim.cluster import RingCluster, build_cluster
from repro.sim.build import TopologySpec, ClusterBuilder
from repro.sim.trace import ScheduleTrace, TraceEvent

__all__ = [
    "ImplementationProfile",
    "LIBRARY",
    "DAEMON",
    "SPREAD",
    "ProtocolHost",
    "RingCluster",
    "build_cluster",
    "TopologySpec",
    "ClusterBuilder",
    "ScheduleTrace",
    "TraceEvent",
]
