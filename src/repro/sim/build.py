"""The topology API: declare a cluster once, build it one way.

Before this module, every layer assembled clusters by hand —
:func:`~repro.sim.cluster.build_cluster` for bare ordering rings,
``MembershipCluster(...)`` for the full stack, and ad-hoc keyword
plumbing in the conformance, chaos, and bench layers on top.  Adding a
dimension (ring count, shard assignment) meant threading a parameter
through every one of them.

:class:`TopologySpec` replaces that with a single declarative value:
ring count, hosts per ring, protocol flavour, implementation profile,
network, loss, observers, delivery taps, fault plan, and group→shard
assignments in one place.  :class:`ClusterBuilder` is the fluent front
end and the **only public way to assemble sim clusters**; a single ring
is just the ``rings(1)`` case of the same spec::

    from repro.sim.build import ClusterBuilder

    ring = ClusterBuilder().hosts(8).build()                  # RingCluster
    memb = ClusterBuilder().hosts(6).membership().build()     # MembershipCluster
    multi = ClusterBuilder().rings(2).hosts(4).membership().build()
                                                              # MultiRingCluster

The legacy constructors keep working behind ``DeprecationWarning``
shims (the PR-1 Endpoint precedent): ``build_cluster(...)`` and direct
``MembershipCluster(...)`` calls delegate here and warn.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple, Type

from repro.core.config import ProtocolConfig
from repro.core.original import OriginalRingParticipant
from repro.core.participant import AcceleratedRingParticipant
from repro.membership.params import MembershipTimeouts
from repro.net.fabric import LeafSpineSpec, build_topology
from repro.net.impair import ImpairmentModel
from repro.net.loss import LossModel
from repro.net.params import NetworkParams, GIGABIT
from repro.net.simulator import Simulator
from repro.sim.cluster import RingCluster
from repro.sim.driver import ProtocolHost
from repro.sim.profiles import ImplementationProfile, DAEMON, LIBRARY
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.multiring.cluster import MultiRingCluster
    from repro.multiring.shard_map import ShardMap
    from repro.obs.observer import ProtocolObserver
    from repro.sim.membership_driver import DeliveryTap, MembershipCluster


@dataclass(frozen=True)
class TopologySpec:
    """Everything needed to assemble a simulated cluster, in one value.

    Immutable so a spec can be shared, logged, or varied with
    :func:`dataclasses.replace` without aliasing surprises; the builder
    below is the ergonomic way to produce one.
    """

    #: Number of independent rings.  ``1`` builds the classic single
    #: ring; ``>1`` builds a :class:`~repro.multiring.cluster.
    #: MultiRingCluster` with group traffic sharded across rings.
    rings: int = 1
    hosts_per_ring: int = 8
    #: Full membership + EVS stack (DAEMON-profile default) vs the bare
    #: ordering engine (LIBRARY-profile default) of the normal-case
    #: benchmarks.
    membership: bool = False
    accelerated: bool = True
    #: Implementation profile; ``None`` resolves per mode (DAEMON for
    #: membership, LIBRARY for protocol).
    profile: Optional[ImplementationProfile] = None
    params: NetworkParams = GIGABIT
    #: Multi-switch fabric (leaf–spine) in place of the default
    #: single-switch star; ``hosts_per_ring`` must equal the fabric's
    #: host count.  See :mod:`repro.net.fabric`.
    fabric: Optional[LeafSpineSpec] = None
    config: Optional[ProtocolConfig] = None
    timeouts: Optional[MembershipTimeouts] = None
    loss_model: Optional[LossModel] = None
    #: Per-host loss overrides; hosts absent from the mapping fall back
    #: to the shared ``loss_model``.
    loss_models: Optional[Mapping[int, LossModel]] = None
    #: Shared impairment model wrapped around every host's delivery path
    #: (see :mod:`repro.net.impair`); ``impairments`` overrides per host.
    impairment: Optional[ImpairmentModel] = None
    impairments: Optional[Mapping[int, ImpairmentModel]] = None
    observer: Optional["ProtocolObserver"] = None
    #: Per-delivery callback surface (single-ring membership clusters;
    #: multi-ring clusters install their own group-aware taps).
    delivery_tap: Optional["DeliveryTap"] = None
    #: Declarative fault schedule, armed by :meth:`ClusterBuilder.
    #: build_with_injector`.
    fault_plan: Optional["FaultPlan"] = None
    #: Explicit group → ring pins; unlisted groups hash.
    shard_assignments: Mapping[str, int] = field(default_factory=dict)
    ring_id_base: int = 1

    def resolved_profile(self) -> ImplementationProfile:
        if self.profile is not None:
            return self.profile
        return DAEMON if self.membership else LIBRARY

    def validate(self) -> "TopologySpec":
        if self.rings < 1:
            raise ConfigurationError(f"need at least one ring, got {self.rings}")
        if self.hosts_per_ring < 1:
            raise ConfigurationError(
                f"need at least one host per ring, got {self.hosts_per_ring}"
            )
        for group, ring in self.shard_assignments.items():
            if not 0 <= ring < self.rings:
                raise ConfigurationError(
                    f"group {group!r} assigned to ring {ring}, but the spec "
                    f"declares rings 0..{self.rings - 1}"
                )
        if self.delivery_tap is not None and not self.membership:
            raise ConfigurationError(
                "delivery taps observe the membership delivery path; "
                "add .membership() to the builder"
            )
        if self.delivery_tap is not None and self.rings > 1:
            raise ConfigurationError(
                "multi-ring clusters install their own per-ring group "
                "taps; read cluster.group_stream()/merged_stream() instead"
            )
        if self.fabric is not None:
            try:
                self.fabric.validate()
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
            if self.rings > 1:
                raise ConfigurationError(
                    "fabric topologies are single-ring; multi-ring clusters "
                    "build their own per-ring stars"
                )
            if self.fabric.num_hosts != self.hosts_per_ring:
                raise ConfigurationError(
                    f"fabric defines {self.fabric.num_hosts} hosts but the "
                    f"spec declares {self.hosts_per_ring} per ring"
                )
        if self.rings > 1 and (
            self.loss_models is not None
            or self.impairment is not None
            or self.impairments is not None
        ):
            raise ConfigurationError(
                "per-host loss/impairment models are single-ring only"
            )
        return self


class ClusterBuilder:
    """Fluent assembler over :class:`TopologySpec`.

    Every setter returns ``self``; :meth:`build` dispatches on the spec
    (ring count, membership) to the right cluster class.  The builder
    is the supported construction path — the legacy per-class
    constructors survive only as deprecation shims.
    """

    def __init__(self, spec: Optional[TopologySpec] = None) -> None:
        self._spec = spec if spec is not None else TopologySpec()
        self._sim: Optional[Simulator] = None

    @property
    def spec(self) -> TopologySpec:
        return self._spec

    def _set(self, **changes) -> "ClusterBuilder":
        self._spec = replace(self._spec, **changes)
        return self

    # -- fluent surface ------------------------------------------------

    def rings(self, count: int) -> "ClusterBuilder":
        return self._set(rings=count)

    def hosts(self, count: int) -> "ClusterBuilder":
        return self._set(hosts_per_ring=count)

    def membership(self, enabled: bool = True) -> "ClusterBuilder":
        return self._set(membership=enabled)

    def protocol(self) -> "ClusterBuilder":
        """Bare ordering engines (no membership layer)."""
        return self._set(membership=False)

    def accelerated(self, enabled: bool = True) -> "ClusterBuilder":
        return self._set(accelerated=enabled)

    def original(self) -> "ClusterBuilder":
        """The original Totem Ring baseline."""
        return self._set(accelerated=False)

    def profile(self, profile: ImplementationProfile) -> "ClusterBuilder":
        return self._set(profile=profile)

    def network(self, params: NetworkParams) -> "ClusterBuilder":
        return self._set(params=params)

    def fabric(self, spec: Optional[LeafSpineSpec]) -> "ClusterBuilder":
        """Build on a leaf–spine fabric; the host count follows the spec.

        Pass ``None`` to return to the default single-switch star.
        """
        if spec is None:
            return self._set(fabric=None)
        return self._set(fabric=spec, hosts_per_ring=spec.num_hosts)

    def config(self, config: ProtocolConfig) -> "ClusterBuilder":
        return self._set(config=config)

    def timeouts(self, timeouts: MembershipTimeouts) -> "ClusterBuilder":
        return self._set(timeouts=timeouts)

    def loss(self, model: Optional[LossModel]) -> "ClusterBuilder":
        return self._set(loss_model=model)

    def loss_map(self, models: Mapping[int, LossModel]) -> "ClusterBuilder":
        """Per-host loss overrides (hosts not listed keep the shared model)."""
        return self._set(loss_models=dict(models))

    def impair(self, model: Optional[ImpairmentModel]) -> "ClusterBuilder":
        """Wrap every host's delivery path with one impairment model."""
        return self._set(impairment=model)

    def impair_map(self, models: Mapping[int, ImpairmentModel]) -> "ClusterBuilder":
        """Per-host impairment overrides (take precedence over ``impair``)."""
        return self._set(impairments=dict(models))

    def observe(self, observer: "ProtocolObserver") -> "ClusterBuilder":
        return self._set(observer=observer)

    def tap(self, tap: "DeliveryTap") -> "ClusterBuilder":
        return self._set(delivery_tap=tap)

    def faults(self, plan: "FaultPlan") -> "ClusterBuilder":
        return self._set(fault_plan=plan)

    def assign(self, group: str, ring: int) -> "ClusterBuilder":
        """Pin ``group`` to ``ring`` (otherwise groups hash)."""
        merged = dict(self._spec.shard_assignments)
        merged[group] = ring
        return self._set(shard_assignments=merged)

    def assignments(self, mapping: Mapping[str, int]) -> "ClusterBuilder":
        merged = dict(self._spec.shard_assignments)
        merged.update(mapping)
        return self._set(shard_assignments=merged)

    def ring_id(self, base: int) -> "ClusterBuilder":
        return self._set(ring_id_base=base)

    def on(self, sim: Simulator) -> "ClusterBuilder":
        """Build onto an existing simulator instead of a fresh one."""
        self._sim = sim
        return self

    # -- derived values ------------------------------------------------

    def shard_map(self) -> "ShardMap":
        """The deterministic group → ring map this spec induces."""
        from repro.multiring.shard_map import ShardMap

        spec = self._spec.validate()
        return ShardMap(spec.rings, assignments=spec.shard_assignments)

    # -- construction --------------------------------------------------

    def build(self):
        """Dispatch on the spec: multi-ring, membership, or bare ring."""
        spec = self._spec.validate()
        if spec.rings > 1:
            return self.build_multiring()
        if spec.membership:
            return self.build_membership()
        return self.build_ring()

    @staticmethod
    def _build_topology(sim: Simulator, spec: TopologySpec):
        """Star or fabric, per the spec.  Default star wiring is untouched."""
        return build_topology(
            sim,
            spec.hosts_per_ring,
            spec.params,
            fabric=spec.fabric,
            loss_model=spec.loss_model,
            loss_models=spec.loss_models,
            impairment=spec.impairment,
            impairments=spec.impairments,
        )

    def build_ring(self) -> RingCluster:
        """A single bare ordering ring (the paper's §IV-A testbed)."""
        spec = self._spec.validate()
        sim = self._sim if self._sim is not None else Simulator()
        topology = self._build_topology(sim, spec)
        ring = topology.host_ids
        config = (spec.config or ProtocolConfig()).validate()
        participant_cls: Type[AcceleratedRingParticipant]
        participant_cls = (
            AcceleratedRingParticipant
            if spec.accelerated
            else OriginalRingParticipant
        )
        drivers: Dict[int, ProtocolHost] = {}
        for pid in ring:
            participant = participant_cls(
                pid,
                ring,
                config,
                ring_id=spec.ring_id_base,
                observer=spec.observer,
                clock=lambda: sim.now,
            )
            drivers[pid] = ProtocolHost(
                host=topology.host(pid),
                participant=participant,
                profile=spec.resolved_profile(),
                observer=spec.observer,
            )
        return RingCluster(
            sim=sim,
            topology=topology,
            drivers=drivers,
            ring_id=spec.ring_id_base,
            observer=spec.observer,
        )

    def build_membership(self) -> "MembershipCluster":
        """A single ring running the full membership + EVS stack."""
        from repro.sim.membership_driver import MembershipCluster

        spec = self._spec.validate()
        # A prebuilt topology is passed only when an adverse-network
        # feature is in play; otherwise MembershipCluster runs its
        # historical construction path, byte-identical to the goldens.
        topology = None
        sim = self._sim
        if (
            spec.fabric is not None
            or spec.loss_models is not None
            or spec.impairment is not None
            or spec.impairments is not None
        ):
            sim = sim if sim is not None else Simulator()
            topology = self._build_topology(sim, spec)
        return MembershipCluster(
            num_hosts=spec.hosts_per_ring,
            accelerated=spec.accelerated,
            profile=spec.resolved_profile(),
            params=spec.params,
            config=spec.config,
            timeouts=spec.timeouts,
            loss_model=spec.loss_model,
            observer=spec.observer,
            delivery_tap=spec.delivery_tap,
            sim=sim,
            topology=topology,
            _from_builder=True,
        )

    def build_multiring(self) -> "MultiRingCluster":
        """N independent rings on one fabric (works for N=1 too)."""
        from repro.multiring.cluster import MultiRingCluster
        from repro.multiring.shard_map import ShardMap

        spec = self._spec.validate()
        return MultiRingCluster(
            num_rings=spec.rings,
            hosts_per_ring=spec.hosts_per_ring,
            membership=spec.membership,
            accelerated=spec.accelerated,
            profile=spec.profile,
            params=spec.params,
            config=spec.config,
            timeouts=spec.timeouts,
            loss_model=spec.loss_model,
            observer=spec.observer,
            shard_map=ShardMap(spec.rings, assignments=spec.shard_assignments),
            ring_id_base=spec.ring_id_base,
            sim=self._sim,
        )

    def build_with_injector(
        self,
        rng=None,
        seed: int = 0,
    ) -> Tuple[object, Optional["FaultInjector"]]:
        """Build the cluster and arm the spec's fault plan against it.

        Returns ``(cluster, injector)``; the injector is ``None`` when
        the spec declares no faults.  Multi-ring specs inject per ring
        through :class:`~repro.multiring.cluster.MultiRingCluster`'s
        fault surface instead — a single plan against N rings would be
        ambiguous about which ring each event targets.
        """
        spec = self._spec.validate()
        cluster = self.build()
        if spec.fault_plan is None or len(spec.fault_plan) == 0:
            return cluster, None
        if spec.rings > 1:
            raise ConfigurationError(
                "fault plans target one ring; build the multi-ring "
                "cluster and inject against cluster.ring(i) explicitly"
            )
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            cluster,
            spec.fault_plan,
            seed=seed,
            rng=rng,
            observer=spec.observer,
        )
        injector.arm()
        return cluster, injector
