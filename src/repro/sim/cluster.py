"""Cluster builder: the paper's 8-server testbed in one call.

:func:`build_cluster` wires participants (accelerated or original), an
implementation profile, and a network parameter set into a ready-to-run
:class:`RingCluster`, mirroring the benchmark setup of paper §IV-A: every
server runs one daemon, one sending client, and one receiving client.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.token import initial_token
from repro.net.loss import LossModel
from repro.net.params import NetworkParams, GIGABIT
from repro.net.simulator import Simulator
from repro.net.topology import StarTopology
from repro.obs.observer import ProtocolObserver
from repro.sim.driver import ProtocolHost
from repro.sim.profiles import ImplementationProfile, LIBRARY
from repro.util.errors import FaultError
from repro.util.stats import LatencyStats


@dataclass
class ClusterStats:
    """Aggregated statistics for one run."""

    latency: LatencyStats
    goodput_bps: float
    retransmissions: int
    token_rounds: int
    messages_sent: int
    switch_drops: int
    per_sender_worst_5pct_mean: float = 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency.mean


class RingCluster:
    """A ring of protocol hosts on one simulated switch."""

    def __init__(
        self,
        sim: Simulator,
        topology: StarTopology,
        drivers: Dict[int, ProtocolHost],
        ring_id: int = 1,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.drivers = drivers
        self.ring_id = ring_id
        self.ring = sorted(drivers)
        #: The observer shared by every participant (None when unobserved).
        self.observer = observer
        self._started = False

    @property
    def leader(self) -> ProtocolHost:
        return self.drivers[self.ring[0]]

    def driver(self, pid: int) -> ProtocolHost:
        return self.drivers[pid]

    def set_measure_from(self, time: float) -> None:
        """Exclude messages submitted before ``time`` from latency stats
        (warm-up window, as benchmark practice dictates)."""
        for driver in self.drivers.values():
            driver.measure_from = time

    def start(self) -> None:
        """Inject the first regular token at the ring leader.

        Membership establishment is out of scope for the normal-case
        benchmarks (paper §III assumes "the membership of the ring has been
        established, and the first regular token has been sent").
        """
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self.leader.inject_token(initial_token(self.ring_id))

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    # -- fault surface (driven by repro.faults) ------------------------

    def _driver(self, pid: int) -> ProtocolHost:
        try:
            return self.drivers[pid]
        except KeyError:
            raise FaultError(
                f"unknown pid {pid}: cluster hosts are {self.ring}"
            ) from None

    def crash(self, pid: int) -> None:
        """Fail-stop ``pid``.  With no membership layer the ring cannot
        reform — normal-case clusters use this only to measure stall
        behaviour.  Idempotent."""
        self._driver(pid).host.crash()

    def pause(self, pid: int) -> None:
        """GC-stall ``pid``: frames accumulate, nothing executes."""
        self._driver(pid).host.pause()

    def resume(self, pid: int) -> None:
        self._driver(pid).host.unpause()

    def partition(self, *groups) -> None:
        self.topology.switch.set_partition(*groups)

    def heal(self) -> None:
        self.topology.switch.heal()

    def metrics_snapshot(self):
        """Snapshot of the shared observer's metrics.

        Requires an observer with a ``snapshot()`` method (e.g.
        :class:`~repro.obs.observer.MetricsObserver`).
        """
        snapshot = getattr(self.observer, "snapshot", None)
        if snapshot is None:
            raise RuntimeError(
                "cluster was not built with a metrics-collecting observer"
            )
        return snapshot()

    # ------------------------------------------------------------------

    def aggregate(self) -> ClusterStats:
        """Merge per-host statistics into cluster-level results.

        Latency samples pool across every receiver (each message is
        measured at all 8 receiving clients, like the paper's benchmark).
        Goodput is the mean per-receiver delivered payload rate — i.e. the
        application data rate one receiving client observes.
        """
        latency = LatencyStats()
        goodputs: List[float] = []
        retransmissions = 0
        token_rounds = 0
        messages_sent = 0
        worst: List[float] = []
        for driver in self.drivers.values():
            stats = driver.stats
            latency.merge(stats.latency)
            goodputs.append(stats.throughput.goodput_bps())
            retransmissions += stats.retransmissions
            token_rounds = max(token_rounds, stats.token_rounds)
            messages_sent += stats.messages_sent
            try:
                worst.append(stats.worst_5pct_mean())
            except ValueError:
                pass
        return ClusterStats(
            latency=latency,
            goodput_bps=sum(goodputs) / len(goodputs) if goodputs else 0.0,
            retransmissions=retransmissions,
            token_rounds=token_rounds,
            messages_sent=messages_sent,
            switch_drops=self.topology.switch.total_drops,
            per_sender_worst_5pct_mean=(sum(worst) / len(worst)) if worst else 0.0,
        )


def build_cluster(
    num_hosts: int = 8,
    accelerated: bool = True,
    profile: ImplementationProfile = LIBRARY,
    params: NetworkParams = GIGABIT,
    config: Optional[ProtocolConfig] = None,
    loss_model: Optional[LossModel] = None,
    ring_id: int = 1,
    observer: Optional[ProtocolObserver] = None,
) -> RingCluster:
    """Build the paper's testbed: ``num_hosts`` servers around one switch.

    ``accelerated=False`` runs the original Totem Ring baseline with the
    same flow-control windows (the paper compares each implementation of
    the Accelerated Ring protocol to a corresponding implementation of the
    original protocol).

    ``observer`` is shared by every participant and driver: it sees every
    token movement, multicast, retransmission, and delivery on the whole
    cluster, timestamped in simulated seconds.

    .. deprecated::
        Build through the topology API instead::

            from repro.sim.build import ClusterBuilder

            cluster = ClusterBuilder().hosts(8).build()
    """
    warnings.warn(
        "build_cluster is deprecated; build through the topology API: "
        "ClusterBuilder().hosts(n).build() (repro.sim.build)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sim.build import ClusterBuilder

    builder = (
        ClusterBuilder()
        .hosts(num_hosts)
        .accelerated(accelerated)
        .profile(profile)
        .network(params)
        .ring_id(ring_id)
    )
    if config is not None:
        builder.config(config)
    if loss_model is not None:
        builder.loss(loss_model)
    if observer is not None:
        builder.observe(observer)
    return builder.build_ring()
