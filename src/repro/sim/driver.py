"""Binds one protocol participant to one simulated host.

The driver is the "implementation": it owns the single-threaded CPU loop,
reads frames from the token and data sockets according to the protocol's
current priority (paper §III-D), charges the profile's CPU costs, executes
the engine's effects in order, fragments large datagrams, and records
latency/throughput statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.events import Deliver, Effect, MulticastData, SendToken, Stable
from repro.core.messages import DataMessage, DeliveryService
from repro.core.participant import AcceleratedRingParticipant
from repro.core.token import RegularToken
from repro.net.fragment import Reassembler, fragment_datagram
from repro.net.host import SimHost
from repro.net.packet import Frame, PortKind
from repro.obs.observer import ProtocolObserver
from repro.sim.profiles import ImplementationProfile
from repro.util.stats import RunStats


class ProtocolHost:
    """One server: a protocol engine + its host machine + its clients.

    ``observer`` defaults to the participant's observer; either way the
    participant's clock is bound to simulated time, so every hook the
    engine fires carries a simulated-seconds ``now`` and the driver can
    report application deliveries (``on_deliver``) at the moment the
    delivery CPU work actually completes.
    """

    def __init__(
        self,
        host: SimHost,
        participant: AcceleratedRingParticipant,
        profile: ImplementationProfile,
        stats: Optional[RunStats] = None,
        measure_from: float = 0.0,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.host = host
        self.participant = participant
        self.profile = profile
        self.stats = stats if stats is not None else RunStats()
        self.observer = observer if observer is not None else participant.observer
        if participant.observer is None:
            participant.observer = observer
        if participant.clock is None:
            participant.clock = lambda: host.sim.now
        #: Deliveries of messages submitted before this time are excluded
        #: from latency statistics (warm-up window).
        self.measure_from = measure_from
        self.reassembler = Reassembler()
        self.delivered_log: List[DataMessage] = []
        #: Optional hooks for tracing (see :mod:`repro.sim.trace`).
        self.on_transmit: Optional[Callable[[Frame], None]] = None
        self.on_deliver: Optional[Callable[[DataMessage], None]] = None
        #: Bound by the cluster: stop delivering application payloads
        #: (used when an experiment caps message counts).
        self.keep_delivered_log = False

        host.cpu.idle_hook = self._select_work

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def client_submit(
        self,
        payload_size: int,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """A local sending client hands the daemon one message.

        The message is timestamped now (latency is measured from client
        injection to client delivery, like the paper's benchmarks).  For
        daemon architectures the IPC read costs CPU.
        """
        now = self.host.sim.now
        self.participant.submit(
            payload=b"",
            service=service,
            timestamp=now,
            payload_size=payload_size,
        )
        self.stats.messages_sent += 1
        if self.profile.ingest_cpu > 0.0:
            self.host.cpu.submit(self.profile.ingest_cpu, _noop)
        else:
            self.host.cpu.kick()

    def inject_token(self, token: RegularToken) -> None:
        """Deliver the initial token directly to this host's token socket."""
        frame = Frame(
            src=self.participant.predecessor,
            dst=self.participant.pid,
            kind=PortKind.TOKEN,
            size=token.wire_size(),
            payload=token,
        )
        self.host.receive(frame)

    # ------------------------------------------------------------------
    # CPU loop
    # ------------------------------------------------------------------

    def _select_work(self) -> Optional[Tuple[float, Callable[[], None]]]:
        """Pick the next frame to process, honoring token/data priority.

        Called by the CPU whenever its explicit queue drains.  After a
        token is processed data has high priority; the engine raises
        ``token_has_priority`` per the configured §III-D method.
        """
        if self.host.crashed:
            return None
        token_avail = len(self.host.token_socket) > 0
        data_avail = len(self.host.data_socket) > 0
        if token_avail and (self.participant.token_has_priority or not data_avail):
            frame = self.host.token_socket.pop()
            return (self.profile.token_cpu, lambda: self._process_token(frame))
        if data_avail:
            frame = self.host.data_socket.pop()
            datagram = self.reassembler.accept(frame)
            if datagram is None:
                # A non-final fragment: cheap kernel work, no protocol event.
                return (self.profile.fragment_cpu, _noop)
            cost = self.profile.recv_cost(
                datagram.wire_size(self.profile.data_header_bytes)
            )
            return (cost, lambda: self._process_data(datagram))
        return None

    def _process_token(self, frame: Frame) -> None:
        token = frame.payload
        effects = self.participant.on_token(token)
        if effects:
            self.stats.token_rounds += 1
        self._execute(effects)

    def _process_data(self, message: DataMessage) -> None:
        self._execute(self.participant.on_data(message))

    # ------------------------------------------------------------------
    # Effects
    # ------------------------------------------------------------------

    def _execute(self, effects: List[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, MulticastData):
                self.host.cpu.submit(
                    self.profile.send_cost(
                        effect.message.wire_size(self.profile.data_header_bytes)
                    ),
                    self._make_multicast(effect.message, effect.retransmission),
                )
            elif isinstance(effect, SendToken):
                self.host.cpu.submit(
                    self.profile.token_send_cpu,
                    self._make_token_send(effect.token, effect.destination),
                )
            elif isinstance(effect, Deliver):
                self.host.cpu.submit(
                    self.profile.deliver_cpu,
                    self._make_delivery(effect.message),
                )
            elif isinstance(effect, Stable):
                pass
            else:
                raise TypeError(f"unknown effect {effect!r}")

    def _make_multicast(self, message: DataMessage, retransmission: bool):
        def run() -> None:
            size = message.wire_size(self.profile.data_header_bytes)
            frames = fragment_datagram(
                src=self.participant.pid,
                dst=None,
                kind=PortKind.DATA,
                size=size,
                payload=message,
                mtu=self.host.params.mtu,
            )
            for frame in frames:
                if self.on_transmit is not None:
                    self.on_transmit(frame)
                self.host.nic.send(frame)
            if retransmission:
                self.stats.retransmissions += 1

        return run

    def _make_token_send(self, token: RegularToken, destination: int):
        def run() -> None:
            frame = Frame(
                src=self.participant.pid,
                dst=destination,
                kind=PortKind.TOKEN,
                size=token.wire_size(),
                payload=token,
            )
            if self.on_transmit is not None:
                self.on_transmit(frame)
            self.host.nic.send(frame)

        return run

    def _make_delivery(self, message: DataMessage):
        def run() -> None:
            now = self.host.sim.now
            if self.observer is not None:
                self.observer.on_deliver(self.participant.pid, message, now=now)
            if self.on_deliver is not None:
                self.on_deliver(message)
            if self.keep_delivered_log:
                self.delivered_log.append(message)
            if message.timestamp is not None and message.timestamp >= self.measure_from:
                self.stats.record_delivery(
                    now=now,
                    sender=message.pid,
                    latency=now - message.timestamp,
                    payload_size=int(message.payload_size or 0),
                )

        return run


def _noop() -> None:
    return None
