"""Binds one protocol participant to one simulated host.

The driver is the "implementation": it owns the single-threaded CPU loop,
reads frames from the token and data sockets according to the protocol's
current priority (paper §III-D), charges the profile's CPU costs, executes
the engine's effects in order, fragments large datagrams, and records
latency/throughput statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.events import (
    Deliver,
    DeliverBatch,
    Effect,
    MulticastData,
    SendToken,
    Stable,
)
from repro.core.messages import DataMessage, DeliveryService
from repro.core.participant import AcceleratedRingParticipant
from repro.core.token import RegularToken
from repro.core.transport_core import CoalescingAccumulator, batch_wire_size
from repro.net.fragment import CoalescedDatagram, Reassembler, fragment_datagram
from repro.net.host import SimHost
from repro.net.packet import Frame, PortKind
from repro.obs.observer import ProtocolObserver, effective_observer
from repro.sim.profiles import ImplementationProfile
from repro.util.stats import RunStats

#: Age bound (simulated seconds) on partial reassembly state — the IP
#: reassembly timer.  Checked lazily on fragment arrival (no scheduled
#: events), so it leaves the event sequence of every run untouched.
_REASSEMBLY_MAX_AGE = 0.5


class ProtocolHost:
    """One server: a protocol engine + its host machine + its clients.

    ``observer`` defaults to the participant's observer; either way the
    participant's clock is bound to simulated time, so every hook the
    engine fires carries a simulated-seconds ``now`` and the driver can
    report application deliveries (``on_deliver``) at the moment the
    delivery CPU work actually completes.
    """

    def __init__(
        self,
        host: SimHost,
        participant: AcceleratedRingParticipant,
        profile: ImplementationProfile,
        stats: Optional[RunStats] = None,
        measure_from: float = 0.0,
        observer: Optional[ProtocolObserver] = None,
    ) -> None:
        self.host = host
        self.participant = participant
        self.profile = profile
        self.stats = stats if stats is not None else RunStats()
        # A bare NullObserver collapses to None so hot-path hook guards
        # (`observer is not None`) skip no-op calls entirely.
        observer = effective_observer(observer)
        self.observer = observer if observer is not None else participant.observer
        if participant.observer is None:
            participant.observer = observer
        # Hot-path caches: the profile is a frozen dataclass, so its cost
        # model is hoisted into locals once.  The inlined cost expressions
        # below must keep the exact arithmetic shape of
        # ImplementationProfile.recv_cost/send_cost and
        # DataMessage.wire_size or seeded traces change.
        self._recv_cpu = profile.recv_cpu
        self._per_byte_recv = profile.per_byte_recv
        self._send_cpu = profile.send_cpu
        self._per_byte_send = profile.per_byte_send
        self._header_bytes = profile.data_header_bytes
        self._token_cpu = profile.token_cpu
        self._token_send_cpu = profile.token_send_cpu
        self._deliver_cpu = profile.deliver_cpu
        self._ingest_cpu = profile.ingest_cpu
        # Non-final fragments all cost the same and carry no arguments, so
        # a single shared task tuple serves every one of them.
        self._fragment_task = (profile.fragment_cpu, _noop, ())
        #: Wire coalescing knob: >1 packs runs of consecutive new sends
        #: into one datagram (retransmissions always travel alone).
        self._mpd = participant.config.messages_per_datagram
        #: Shared run-grouping policy (repro.core.transport_core) — the
        #: same object type the runtime node batches with; the sim only
        #: adds CPU pricing on top.  Always drained before _execute
        #: returns, so it holds no state between effect lists.
        self._coalescer = CoalescingAccumulator(self._mpd)
        self.coalesced_datagrams = 0
        self.coalesced_messages = 0
        if participant.clock is None:
            participant.clock = lambda: host.sim.now
        #: Deliveries of messages submitted before this time are excluded
        #: from latency statistics (warm-up window).
        self.measure_from = measure_from
        # The socket FrameRing objects are stable for the host's lifetime
        # (crash/clear mutate them in place, never replace them), so the
        # idle hook can hold them directly instead of walking
        # host -> socket -> ring on every call.
        self._token_socket = host.token_socket
        self._data_socket = host.data_socket
        self._token_ring = host.token_socket._ring
        self._data_ring = host.data_socket._ring
        self.reassembler = Reassembler(
            max_age=_REASSEMBLY_MAX_AGE, clock=lambda: host.sim.now
        )
        self.delivered_log: List[DataMessage] = []
        #: Optional hooks for tracing (see :mod:`repro.sim.trace`).
        self.on_transmit: Optional[Callable[[Frame], None]] = None
        self.on_deliver: Optional[Callable[[DataMessage], None]] = None
        #: Batch form of ``on_deliver``: called once per delivered run
        #: with the message tuple.  When unset, batches fan out to
        #: ``on_deliver`` per message, so scalar tracers keep working.
        self.on_deliver_batch: Optional[Callable[[Tuple[DataMessage, ...]], None]] = None
        #: Bound by the cluster: stop delivering application payloads
        #: (used when an experiment caps message counts).
        self.keep_delivered_log = False

        host.cpu.idle_hook = self._select_work

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def client_submit(
        self,
        payload_size: int,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """A local sending client hands the daemon one message.

        The message is timestamped now (latency is measured from client
        injection to client delivery, like the paper's benchmarks).  For
        daemon architectures the IPC read costs CPU.
        """
        now = self.host.sim.now
        self.participant.submit(
            payload=b"",
            service=service,
            timestamp=now,
            payload_size=payload_size,
        )
        self.stats.messages_sent += 1
        if self._ingest_cpu > 0.0:
            self.host.cpu.submit(self._ingest_cpu, _noop)
        else:
            self.host.cpu.kick()

    def inject_token(self, token: RegularToken) -> None:
        """Deliver the initial token directly to this host's token socket."""
        frame = Frame(
            src=self.participant.predecessor,
            dst=self.participant.pid,
            kind=PortKind.TOKEN,
            size=token.wire_size(),
            payload=token,
        )
        self.host.receive(frame)

    # ------------------------------------------------------------------
    # CPU loop
    # ------------------------------------------------------------------

    def _select_work(self) -> Optional[Tuple[float, Callable[..., None], tuple]]:
        """Pick the next frame to process, honoring token/data priority.

        Called by the CPU whenever its explicit queue drains.  After a
        token is processed data has high priority; the engine raises
        ``token_has_priority`` per the configured §III-D method.

        Returns ``(cost, fn, args)`` tasks — arguments ride in the tuple
        so no closure is allocated per frame.
        """
        if self.host.crashed:
            return None
        # Emptiness tests and pops go straight to the rings (index
        # arithmetic inlined, mirroring FrameRing.pop): this hook runs
        # once per frame processed and method calls dominate its cost.
        data_ring = self._data_ring
        data_avail = data_ring._tail != data_ring._head
        token_ring = self._token_ring
        if token_ring._tail != token_ring._head and (
            self.participant.token_has_priority or not data_avail
        ):
            head = token_ring._head
            slots = token_ring._slots
            index = head & token_ring._mask
            frame = slots[index]
            slots[index] = None
            token_ring._head = head + 1
            self._token_socket._queued_bytes -= frame.size
            token = frame.payload
            frame.recycle()
            return (self._token_cpu, self._process_token, (token,))
        if data_avail:
            head = data_ring._head
            slots = data_ring._slots
            index = head & data_ring._mask
            frame = slots[index]
            slots[index] = None
            data_ring._head = head + 1
            self._data_socket._queued_bytes -= frame.size
            # Reassembler.accept inlined for the unfragmented common case
            # (same counter updates); fragments take the slow path.  The
            # per-destination clone is consumed either way: return it to
            # the frame pool (the MTU-fragmentation hot path allocates one
            # clone per fragment per receiver).
            if frame.fragment is None:
                self.reassembler.datagrams_completed += 1
                datagram = frame.payload
                frame.recycle()
            else:
                datagram = self.reassembler.accept(frame)
                frame.recycle()
                if datagram is None:
                    # A non-final fragment: cheap kernel work, no protocol
                    # event.
                    return self._fragment_task
            # profile.recv_cost(datagram.wire_size(header)) inlined —
            # identical arithmetic shape, two method calls saved per
            # data message.  CoalescedDatagram.payload_size is defined so
            # the same expression prices the whole multi-message frame.
            cost = self._recv_cpu + self._per_byte_recv * (
                self._header_bytes + int(datagram.payload_size)
            )
            if datagram.__class__ is CoalescedDatagram:
                return (cost, self._process_data_batch, (datagram,))
            return (cost, self._process_data, (datagram,))
        return None

    def _process_token(self, token: RegularToken) -> None:
        effects = self.participant.on_token(token)
        if effects:
            self.stats.token_rounds += 1
        self._execute(effects)

    def _process_data(self, message: DataMessage) -> None:
        effects = self.participant.on_data(message)
        if effects:
            self._execute(effects)

    def _process_data_batch(self, datagram: CoalescedDatagram) -> None:
        effects = self.participant.on_data_batch(datagram.messages)
        if effects:
            self._execute(effects)

    # ------------------------------------------------------------------
    # Effects
    # ------------------------------------------------------------------

    def _execute(self, effects: List[Effect]) -> None:
        # Cpu.submit is bypassed: tasks are appended straight onto the CPU
        # queue and the CPU is kicked once at the end.  When _execute runs
        # inside a CPU task (the normal case) the CPU is busy and the kick
        # is a no-op, exactly as the per-submit kicks were; when it is
        # idle, deferring the kick to after the batch starts the same
        # first task with the same event sequence numbers.
        cpu = self.host.cpu
        append = cpu._queue.append
        queued = False
        # Coalescing accumulator (shared transport core): runs of
        # consecutive new multicasts are packed into one datagram task.
        # Its group stays None (no list allocated) on the default
        # messages_per_datagram=1 path.
        mpd = self._mpd
        acc = self._coalescer
        for effect in effects:
            kind = type(effect)
            # A run of coalescible multicasts ends at the first effect of
            # any other kind: flush before it so tasks keep effect order
            # (the token must not overtake pre-token sends).
            if acc.group is not None and kind is not MulticastData:
                append(self._coalesced_task(acc.take()))
            # Deliver dominates (one per delivered message vs one
            # MulticastData per send), so it is tested first.
            if kind is Deliver:
                append((self._deliver_cpu, self._run_delivery, (effect.message,)))
            elif kind is DeliverBatch:
                # One CPU task for the whole run, at the same total cost k
                # scalar deliveries would have charged: the CPU's busy time
                # and every subsequent task's start time are unchanged, so
                # transmit timing (and the seeded traces built on it) stays
                # identical — only the per-message delivery records move to
                # the batch end.
                messages = effect.messages
                append(
                    (
                        self._deliver_cpu * len(messages),
                        self._run_delivery_batch,
                        (messages,),
                    )
                )
            elif kind is MulticastData:
                message = effect.message
                if mpd > 1 and not effect.retransmission:
                    # Retransmissions precede new sends in effect order,
                    # so accumulating only new messages keeps the wire
                    # order of this effect list intact.
                    full = acc.push(message)
                    if full is not None:
                        append(self._coalesced_task(full))
                    queued = True
                    continue
                if acc.group is not None:
                    append(self._coalesced_task(acc.take()))
                # profile.send_cost(message.wire_size(header)) inlined —
                # identical arithmetic shape.
                append(
                    (
                        self._send_cpu
                        + self._per_byte_send
                        * (self._header_bytes + int(message.payload_size)),
                        self._run_multicast,
                        (message, effect.retransmission),
                    )
                )
            elif kind is SendToken:
                append(
                    (
                        self._token_send_cpu,
                        self._run_token_send,
                        (effect.token, effect.destination),
                    )
                )
            elif kind is Stable:
                continue
            else:
                raise TypeError(f"unknown effect {effect!r}")
            queued = True
        tail = acc.take()
        if tail is not None:
            append(self._coalesced_task(tail))
        if queued and not cpu._busy:
            cpu._start_next()

    def _coalesced_task(
        self, group: List[DataMessage]
    ) -> Tuple[float, Callable[..., None], tuple]:
        if len(group) == 1:
            # A run of one gains nothing from the batch frame: send it as
            # a plain datagram with the exact single-message arithmetic.
            message = group[0]
            return (
                self._send_cpu
                + self._per_byte_send
                * (self._header_bytes + int(message.payload_size)),
                self._run_multicast,
                (message, False),
            )
        size = batch_wire_size(group, self._header_bytes)
        datagram = CoalescedDatagram(tuple(group), size - self._header_bytes)
        # One send_cpu for the whole datagram — the coalescing win — but
        # every wire byte (batch framing included) still costs
        # per_byte_send, mirroring encode_data_batch's real format.
        return (
            self._send_cpu + self._per_byte_send * size,
            self._run_multicast_coalesced,
            (datagram,),
        )

    def _run_multicast(self, message: DataMessage, retransmission: bool) -> None:
        size = self._header_bytes + int(message.payload_size)
        frames = fragment_datagram(
            src=self.participant.pid,
            dst=None,
            kind=PortKind.DATA,
            size=size,
            payload=message,
            mtu=self.host.params.mtu,
        )
        on_transmit = self.on_transmit
        send = self.host.nic.send
        for frame in frames:
            if on_transmit is not None:
                on_transmit(frame)
            send(frame)
        if retransmission:
            self.stats.retransmissions += 1

    def _run_multicast_coalesced(self, datagram: CoalescedDatagram) -> None:
        size = self._header_bytes + datagram.payload_size
        frames = fragment_datagram(
            src=self.participant.pid,
            dst=None,
            kind=PortKind.DATA,
            size=size,
            payload=datagram,
            mtu=self.host.params.mtu,
        )
        on_transmit = self.on_transmit
        send = self.host.nic.send
        for frame in frames:
            if on_transmit is not None:
                on_transmit(frame)
            send(frame)
        self.coalesced_datagrams += 1
        self.coalesced_messages += len(datagram.messages)

    def _run_token_send(self, token: RegularToken, destination: int) -> None:
        frame = Frame.acquire(
            self.participant.pid,
            destination,
            PortKind.TOKEN,
            token.wire_size(),
            token,
        )
        if self.on_transmit is not None:
            self.on_transmit(frame)
        self.host.nic.send(frame)

    def _run_delivery(self, message: DataMessage) -> None:
        now = self.host.sim.now
        observer = self.observer
        if observer is not None:
            observer.on_deliver(self.participant.pid, message, now=now)
        on_deliver = self.on_deliver
        if on_deliver is not None:
            on_deliver(message)
        if self.keep_delivered_log:
            self.delivered_log.append(message)
        timestamp = message.timestamp
        if timestamp is not None and timestamp >= self.measure_from:
            # payload_size is always a non-negative int (DataMessage
            # defaults it to len(payload)), so the old int(... or 0)
            # coercion is value-identical and dropped.
            self.stats.record_delivery(
                now, message.pid, now - timestamp, message.payload_size
            )

    def _run_delivery_batch(self, messages: Tuple[DataMessage, ...]) -> None:
        # The batched mirror of _run_delivery: one hook call, one tracer
        # callback, and one stats loop for the whole in-order run.
        now = self.host.sim.now
        observer = self.observer
        if observer is not None:
            observer.on_deliver_batch(self.participant.pid, messages, now=now)
        on_batch = self.on_deliver_batch
        if on_batch is not None:
            on_batch(messages)
        else:
            on_deliver = self.on_deliver
            if on_deliver is not None:
                for message in messages:
                    on_deliver(message)
        if self.keep_delivered_log:
            self.delivered_log.extend(messages)
        self.stats.record_delivery_batch(now, messages, self.measure_from)


def _noop() -> None:
    return None
