"""Sim driver for membership-enabled hosts.

Where :class:`~repro.sim.driver.ProtocolHost` runs a bare ordering engine
(the paper's normal-case benchmarks), :class:`MembershipHost` runs a full
:class:`~repro.membership.controller.MembershipController`: it executes
control sends and timers, feeds every delivery into an
:class:`~repro.evs.checker.EvsChecker` trace, and survives crashes,
partitions, and merges.  Used by the integration tests and the fault
examples.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.events import Effect, MulticastData, SendToken
from repro.core.messages import DeliveryService
from repro.evs.checker import EvsChecker
from repro.evs.events import ConfigDelivery, MessageDelivery
from repro.membership.controller import MembershipController
from repro.membership.effects import (
    CancelTimer,
    DeliverConfiguration,
    DeliverMessage,
    DeliverMessageBatch,
    SendControl,
    SetTimer,
)
from repro.membership.params import MembershipTimeouts
from repro.net.host import SimHost
from repro.net.loss import LossModel
from repro.net.packet import Frame, PortKind
from repro.net.params import NetworkParams, GIGABIT
from repro.net.simulator import Simulator
from repro.net.topology import StarTopology, build_star
from repro.sim.profiles import ImplementationProfile, DAEMON
from repro.util.errors import FaultError

if TYPE_CHECKING:
    from repro.obs.observer import ProtocolObserver

#: CPU cost charged for handling one membership control message.
_CONTROL_CPU = 3e-6


class DeliveryTap:
    """Optional per-delivery callback surface for a membership host.

    Where the :class:`~repro.evs.checker.EvsChecker` records abstract
    ``(seq, sender)`` trace events, a tap sees the *whole* delivered
    message — payload included — interleaved with configuration changes,
    in exact delivery order.  The conformance oracle
    (:mod:`repro.conformance`) uses this to recover application-level
    payloads (which may be packed or fragmented by the Spread toolkit
    layers) without touching checker semantics.  Every hook is a no-op;
    subclass and override.
    """

    def on_deliver(self, pid, message, config_id, origin_ring) -> None:
        """``pid`` delivered ``message`` (a ``DataMessage``)."""

    def on_deliver_batch(self, pid, messages, config_id, origin_ring) -> None:
        """``pid`` delivered an in-order run of messages under one
        configuration.  Default fans out to :meth:`on_deliver` per
        message, so scalar taps keep working unchanged."""
        on_deliver = self.on_deliver
        for message in messages:
            on_deliver(pid, message, config_id, origin_ring)

    def on_config(self, pid, configuration) -> None:
        """``pid`` installed ``configuration``."""

    def on_restart(self, pid) -> None:
        """``pid``'s crashed process was restarted with empty state."""


class MembershipHost:
    """One server running the full membership + ordering stack."""

    def __init__(
        self,
        host: SimHost,
        controller: MembershipController,
        profile: ImplementationProfile,
        checker: Optional[EvsChecker] = None,
        tap: Optional[DeliveryTap] = None,
    ) -> None:
        self.host = host
        self.controller = controller
        self.profile = profile
        self.checker = checker
        self.tap = tap
        self.delivered: List[object] = []
        self.configurations: List[object] = []
        self._timers: Dict[str, object] = {}
        self._paused = False
        #: Latched on crash and never cleared: the *incarnation* is dead.
        #: The SimHost may be recovered and reused by a fresh
        #: MembershipHost, so ``host.crashed`` alone cannot fence off this
        #: object's callbacks (a stale timer or in-flight CPU task would
        #: otherwise revive the old controller as a zombie sharing the
        #: pid and NIC of the restarted one).
        self._dead = False
        #: Timers that fired while paused; they run, late, at resume —
        #: exactly how a GC-stalled process experiences its own timers.
        self._deferred_timers: List[str] = []
        host.cpu.idle_hook = self._select_work

    # ------------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self.controller.pid

    def start(self) -> None:
        self._execute(self.controller.start())
        self.host.cpu.kick()

    def submit(
        self,
        payload: bytes = b"",
        service: DeliveryService = DeliveryService.AGREED,
        payload_size: Optional[int] = None,
    ) -> None:
        if self._dead:
            return
        self.controller.submit(
            payload=payload,
            service=service,
            timestamp=self.host.sim.now,
            payload_size=payload_size,
        )
        if self.checker is not None:
            self.checker.record_submission(self.pid)
        self.host.cpu.kick()

    def crash(self) -> None:
        """Fail-stop: drop all timers and stop processing, permanently."""
        self._dead = True
        self.host.crash()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._paused = False
        self._deferred_timers.clear()

    def pause(self) -> None:
        """Stall the process (GC-stall-style): no frame processing, no
        timer handling, but frames keep arriving in the kernel buffers."""
        if self._paused or self.host.crashed:
            return
        self._paused = True
        self.host.pause()

    def resume(self) -> None:
        """End a stall; deferred timers fire now, late."""
        if self._dead or not self._paused:
            return
        self._paused = False
        self.host.unpause()
        deferred, self._deferred_timers = self._deferred_timers, []
        for name in deferred:
            self._execute(self.controller.on_timer(name))
        self.host.cpu.kick()

    # ------------------------------------------------------------------

    def _select_work(self) -> Optional[Tuple[float, object, tuple]]:
        if self._dead or self.host.crashed:
            return None
        token_avail = len(self.host.token_socket) > 0
        data_avail = len(self.host.data_socket) > 0
        if token_avail and (self.controller.token_has_priority or not data_avail):
            frame = self.host.token_socket.pop()
            return (_CONTROL_CPU, self._process, (frame,))
        if data_avail:
            frame = self.host.data_socket.pop()
            cost = self.profile.recv_cost(frame.size)
            return (cost, self._process, (frame,))
        return None

    def _process(self, frame: Frame) -> None:
        # A CPU task in flight when the process crashed still completes
        # its simulator event; the dead latch turns it into a no-op.
        if self._dead:
            return
        self._execute(self.controller.on_message(frame.payload))

    def _fire_timer(self, name: str) -> None:
        if self._dead or self.host.crashed:
            return
        self._timers.pop(name, None)
        if self._paused:
            self._deferred_timers.append(name)
            return
        self._execute(self.controller.on_timer(name))
        self.host.cpu.kick()

    # ------------------------------------------------------------------

    def _execute(self, effects: List[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, MulticastData):
                message = effect.message
                size = message.wire_size(self.profile.data_header_bytes)
                self.host.nic.send(
                    Frame(src=self.pid, dst=None, kind=PortKind.DATA, size=size, payload=message)
                )
            elif isinstance(effect, SendToken):
                self.host.nic.send(
                    Frame(
                        src=self.pid,
                        dst=effect.destination,
                        kind=PortKind.TOKEN,
                        size=effect.token.wire_size(),
                        payload=effect.token,
                    )
                )
            elif isinstance(effect, SendControl):
                payload = effect.message
                if hasattr(payload, "wire_size"):
                    try:
                        size = payload.wire_size()
                    except TypeError:
                        size = payload.wire_size(self.profile.data_header_bytes)
                else:
                    size = 64
                self.host.nic.send(
                    Frame(
                        src=self.pid,
                        dst=effect.destination,
                        kind=PortKind.TOKEN,
                        size=size,
                        payload=payload,
                    )
                )
            elif isinstance(effect, SetTimer):
                previous = self._timers.pop(effect.name, None)
                if previous is not None:
                    previous.cancel()
                self._timers[effect.name] = self.host.sim.schedule(
                    effect.delay, self._fire_timer, effect.name
                )
            elif isinstance(effect, CancelTimer):
                handle = self._timers.pop(effect.name, None)
                if handle is not None:
                    handle.cancel()
            elif isinstance(effect, DeliverMessage):
                self.delivered.append(effect.message)
                if self.checker is not None:
                    self.checker.record(
                        self.pid,
                        MessageDelivery(
                            seq=effect.message.seq,
                            sender=effect.message.pid,
                            service=effect.message.service,
                            config_id=effect.config_id,
                            origin_ring=effect.origin_ring,
                        ),
                    )
                if self.tap is not None:
                    self.tap.on_deliver(
                        self.pid, effect.message, effect.config_id, effect.origin_ring
                    )
            elif isinstance(effect, DeliverMessageBatch):
                # Expand the run in delivery order: per-message checker
                # events (one extend, not len(batch) record calls) but a
                # single tap hook for the whole slice.
                messages = effect.messages
                self.delivered.extend(messages)
                if self.checker is not None:
                    config_id = effect.config_id
                    origin_ring = effect.origin_ring
                    self.checker.record_batch(
                        self.pid,
                        [
                            MessageDelivery(
                                seq=message.seq,
                                sender=message.pid,
                                service=message.service,
                                config_id=config_id,
                                origin_ring=origin_ring,
                            )
                            for message in messages
                        ],
                    )
                if self.tap is not None:
                    self.tap.on_deliver_batch(
                        self.pid, messages, effect.config_id, effect.origin_ring
                    )
            elif isinstance(effect, DeliverConfiguration):
                self.configurations.append(effect.configuration)
                if self.checker is not None:
                    self.checker.record(self.pid, ConfigDelivery(effect.configuration))
                if self.tap is not None:
                    self.tap.on_config(self.pid, effect.configuration)
            else:
                raise TypeError(f"unknown effect {effect!r}")


class MembershipCluster:
    """A set of membership hosts on one switch, plus fault injection."""

    def __init__(
        self,
        num_hosts: int,
        accelerated: bool = True,
        profile: ImplementationProfile = DAEMON,
        params: NetworkParams = GIGABIT,
        config: Optional[ProtocolConfig] = None,
        timeouts: Optional[MembershipTimeouts] = None,
        loss_model: Optional[LossModel] = None,
        observer: Optional["ProtocolObserver"] = None,
        delivery_tap: Optional[DeliveryTap] = None,
        sim: Optional[Simulator] = None,
        topology: Optional[StarTopology] = None,
        _from_builder: bool = False,
    ) -> None:
        if not _from_builder:
            warnings.warn(
                "constructing MembershipCluster directly is deprecated; "
                "build through the topology API: "
                "ClusterBuilder().hosts(n).membership().build() "
                "(repro.sim.build)",
                DeprecationWarning,
                stacklevel=2,
            )
        #: ``sim`` lets several clusters (e.g. the rings of a
        #: MultiRingCluster) share one simulated fabric; each still gets
        #: its own switch.
        self.sim = sim if sim is not None else Simulator()
        #: ``topology`` lets the builder substitute a prebuilt network
        #: (leaf–spine fabric, per-host loss/impairment models); any
        #: star-compatible topology works.  The default star path below
        #: is the historical wiring, untouched for trace stability.
        if topology is not None:
            self.topology = topology
        else:
            self.topology = build_star(
                self.sim, num_hosts, params, loss_model=loss_model
            )
        self.checker = EvsChecker()
        self.observer = observer
        #: Shared by every host (and re-attached across restarts): sees
        #: every delivery with its payload, for conformance extraction.
        self.delivery_tap = delivery_tap
        self.hosts: Dict[int, MembershipHost] = {}
        for pid in self.topology.host_ids:
            controller = MembershipController(
                pid=pid,
                accelerated=accelerated,
                protocol_config=config or ProtocolConfig(),
                timeouts=timeouts or MembershipTimeouts(),
                observer=observer,
                clock=lambda: self.sim.now,
            )
            self.hosts[pid] = MembershipHost(
                host=self.topology.host(pid),
                controller=controller,
                profile=profile,
                checker=self.checker,
                tap=delivery_tap,
            )

    def start(self) -> None:
        for host in self.hosts.values():
            host.start()

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def _host(self, pid: int) -> MembershipHost:
        try:
            return self.hosts[pid]
        except KeyError:
            raise FaultError(
                f"unknown pid {pid}: cluster hosts are {sorted(self.hosts)}"
            ) from None

    def crash(self, pid: int) -> None:
        """Fail-stop ``pid``.  Idempotent: crashing a crashed process is
        a no-op, so scripted fault plans can overlap hand-driven faults."""
        host = self._host(pid)
        was_crashed = host.host.crashed
        host.crash()
        if not was_crashed:
            # Close the incarnation in the checker: submissions made
            # before this point no longer count against self-delivery of
            # whatever incarnation recovers later.
            self.checker.record_crash(pid)

    def restart(self, pid: int) -> None:
        """Recover a crashed process (paper §II: "process crashes and
        recoveries").

        The process restarts with empty state — a fresh controller on the
        same host — and rejoins through the normal gather/merge path, as a
        restarted daemon would.  Its pre-crash delivery trace stays in the
        checker; EVS guarantees for the crashed incarnation are waived by
        passing the pid in ``crashed`` when checking.

        Idempotent: restarting a live process is a no-op.
        """
        host = self._host(pid)
        if not host.host.crashed:
            return
        sim_host = host.host
        # The crash cleared the kernel buffers and queued CPU work, and
        # nothing accumulates while crashed, so the recovered host starts
        # from genuinely empty volatile state.
        sim_host.recover()
        controller = MembershipController(
            pid=pid,
            accelerated=host.controller.accelerated,
            protocol_config=host.controller.protocol_config,
            timeouts=host.controller.timeouts,
            # Totem keeps the ring sequence number on stable storage so a
            # recovered process can never reuse one of its old ring ids.
            initial_ring_seq=host.controller.highest_ring_seq,
            observer=self.observer,
            clock=lambda: self.sim.now,
        )
        fresh = MembershipHost(
            host=sim_host,
            controller=controller,
            profile=host.profile,
            checker=self.checker,
            tap=self.delivery_tap,
        )
        self.hosts[pid] = fresh
        self.checker.record_recovery(pid)
        if self.delivery_tap is not None:
            self.delivery_tap.on_restart(pid)
        fresh.start()

    def pause(self, pid: int) -> None:
        """GC-stall ``pid``: the process stops executing but keeps
        receiving frames into its kernel buffers."""
        self._host(pid).pause()

    def resume(self, pid: int) -> None:
        self._host(pid).resume()

    def partition(self, *groups) -> None:
        self.topology.switch.set_partition(*groups)

    def heal(self) -> None:
        self.topology.switch.heal()

    def live_pids(self) -> List[int]:
        return sorted(
            pid for pid, host in self.hosts.items() if not host.host.crashed
        )

    def states(self) -> Dict[int, str]:
        return {
            pid: host.controller.state.value
            for pid, host in self.hosts.items()
            if not host.host.crashed
        }

    def rings(self) -> Dict[int, tuple]:
        return {
            pid: host.controller.members
            for pid, host in self.hosts.items()
            if not host.host.crashed
        }
