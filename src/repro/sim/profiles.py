"""Implementation profiles: the paper's three systems as CPU-cost models.

The paper evaluates the protocols in a library-based prototype, a
daemon-based prototype, and production Spread (§I, §IV).  All three run
the same protocol; they differ in per-message overheads:

* the **library** prototype has no client communication at all — each
  process injects and receives messages itself;
* the **daemon** prototype adds IPC hops: a sending client injects
  messages into the daemon and a receiving client gets deliveries from it;
* **Spread** adds the cost of a real production system: large descriptive
  group/sender names that must be analyzed on delivery, support for many
  clients and groups, multi-group multicast — the paper singles out
  delivery being "relatively expensive in Spread, due to the need to
  analyze group names and send to the correct clients" — and Spread's
  substantially larger protocol headers (1350-byte payloads leave
  "sufficient space for protocol headers" in a 1500-byte MTU).

The cost model is ``fixed + per_byte`` per datagram: fixed costs dominate
for 1350-byte messages (the CPU-bound regime of the 10 GbE figures), while
per-byte costs explain why 8850-byte payloads raise maximum throughput
sub-linearly (Figs. 5/7).  Values were calibrated once against the paper's
reported operating points (maximum throughputs per implementation, network
and payload size — see DESIGN.md §6) and are frozen here; benchmarks never
tune them per-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import usec

_NSEC_PER_BYTE = 1e-9


@dataclass(frozen=True)
class ImplementationProfile:
    """Per-message CPU costs (seconds) and header size for one system.

    Attributes:
        name: display name used in benchmark output.
        data_header_bytes: protocol header bytes added to every data
            message on the wire.
        send_cpu: fixed CPU time to multicast one data datagram (stamping,
            bookkeeping, sendto).
        recv_cpu: fixed CPU time to read and process one received datagram.
        fragment_cpu: CPU time charged per non-final IP fragment of a large
            datagram (kernel reassembly work).
        deliver_cpu: CPU time to deliver one message to the application
            (for daemon architectures the IPC write to the receiving
            client; for Spread also group-name analysis).
        token_cpu: CPU time to process a received token, excluding the
            sends it triggers.
        token_send_cpu: CPU time to transmit the updated token.
        ingest_cpu: CPU time to read one message from a sending client's
            IPC socket (zero for the library prototype).
        per_byte_recv: CPU time per payload byte on the receive path
            (checksums, copies).
        per_byte_send: CPU time per payload byte on the send path.
    """

    name: str
    data_header_bytes: int
    send_cpu: float
    recv_cpu: float
    fragment_cpu: float
    deliver_cpu: float
    token_cpu: float
    token_send_cpu: float
    ingest_cpu: float
    per_byte_recv: float
    per_byte_send: float

    def with_name(self, name: str) -> "ImplementationProfile":
        return replace(self, name=name)

    def recv_cost(self, datagram_bytes: int) -> float:
        return self.recv_cpu + self.per_byte_recv * datagram_bytes

    def send_cost(self, datagram_bytes: int) -> float:
        return self.send_cpu + self.per_byte_send * datagram_bytes


#: Library-based prototype: bare protocol, no client communication.
LIBRARY = ImplementationProfile(
    name="library",
    data_header_bytes=34,
    send_cpu=usec(0.8),
    recv_cpu=usec(0.7),
    fragment_cpu=usec(0.25),
    deliver_cpu=usec(0.35),
    token_cpu=usec(5.0),
    token_send_cpu=usec(0.7),
    ingest_cpu=0.0,
    per_byte_recv=1.05 * _NSEC_PER_BYTE,
    per_byte_send=0.42 * _NSEC_PER_BYTE,
)

#: Daemon-based prototype: realistic client communication for one group.
DAEMON = ImplementationProfile(
    name="daemon",
    data_header_bytes=54,
    send_cpu=usec(1.2),
    recv_cpu=usec(1.0),
    fragment_cpu=usec(0.3),
    deliver_cpu=usec(0.6),
    token_cpu=usec(9.0),
    token_send_cpu=usec(0.8),
    ingest_cpu=usec(0.8),
    per_byte_recv=1.30 * _NSEC_PER_BYTE,
    per_byte_send=0.52 * _NSEC_PER_BYTE,
)

#: Production Spread: full toolkit overheads (groups, names, packing).
#: The cost structure follows the paper's §IV-A1 analysis: delivery is
#: what is "relatively expensive in Spread, due to the need to analyze
#: group names and send to the correct clients" — so the bulk of Spread's
#: extra cost sits on the delivery path (which the accelerated protocol
#: moves off the token's critical path), not on token handling itself.
SPREAD = ImplementationProfile(
    name="spread",
    data_header_bytes=150,
    send_cpu=usec(1.2),
    recv_cpu=usec(0.26),
    fragment_cpu=usec(0.35),
    deliver_cpu=usec(2.9),
    token_cpu=usec(11.0),
    token_send_cpu=usec(1.0),
    ingest_cpu=usec(1.0),
    per_byte_recv=1.45 * _NSEC_PER_BYTE,
    per_byte_send=0.58 * _NSEC_PER_BYTE,
)

PROFILES = {profile.name: profile for profile in (LIBRARY, DAEMON, SPREAD)}
