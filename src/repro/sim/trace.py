"""Transmission tracing, used to reproduce the paper's Figure 1.

Figure 1 shows *when each participant puts each message and the token on
the wire* in the original vs. accelerated protocols.  A
:class:`ScheduleTrace` hooks every driver's transmit path and records one
event per datagram (fragments collapse to their first frame), which tests
and the ``figure1_schedule`` example render as per-participant lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.messages import DataMessage
from repro.core.token import RegularToken
from repro.net.packet import Frame, PortKind
from repro.sim.cluster import RingCluster


@dataclass(frozen=True)
class TraceEvent:
    """One transmission: a data message or the token leaving a host."""

    time: float
    host: int
    kind: str  # "data" or "token"
    seq: int  # message seq, or the token's seq field
    post_token: bool = False
    round: int = 0


class ScheduleTrace:
    """Records the transmit schedule of every host in a cluster."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def attach(self, cluster: RingCluster) -> None:
        for pid, driver in cluster.drivers.items():
            driver.on_transmit = self._make_hook(cluster, pid)

    def _make_hook(self, cluster: RingCluster, pid: int):
        def hook(frame: Frame) -> None:
            if frame.fragment is not None and frame.fragment[1] != 0:
                return  # record one event per datagram, not per fragment
            now = cluster.sim.now
            payload = frame.payload
            if frame.kind is PortKind.TOKEN and isinstance(payload, RegularToken):
                self.events.append(
                    TraceEvent(time=now, host=pid, kind="token", seq=payload.seq)
                )
            elif isinstance(payload, DataMessage):
                self.events.append(
                    TraceEvent(
                        time=now,
                        host=pid,
                        kind="data",
                        seq=payload.seq,
                        post_token=payload.post_token,
                        round=payload.round,
                    )
                )

        return hook

    # ------------------------------------------------------------------

    def events_for(self, host: int) -> List[TraceEvent]:
        return [event for event in self.events if event.host == host]

    def sequence_of(self, host: int) -> List[str]:
        """Compact schedule like ``['1', '2', 'T5', '3', '4', '5']`` —
        data seqs interleaved with token sends (T prefix), in time order."""
        out = []
        for event in sorted(self.events_for(host), key=lambda e: e.time):
            out.append(f"T{event.seq}" if event.kind == "token" else str(event.seq))
        return out

    def render_ascii(self, time_scale: float = 1e6) -> str:
        """A Figure-1-style lane rendering (one lane per host)."""
        if not self.events:
            return "(no events)"
        hosts = sorted({event.host for event in self.events})
        lines = []
        for host in hosts:
            cells = []
            for event in sorted(self.events_for(host), key=lambda e: e.time):
                stamp = event.time * time_scale
                label = f"[T:{event.seq}]" if event.kind == "token" else f"({event.seq})"
                cells.append(f"{stamp:9.1f}us {label}")
            lines.append(f"host {host}: " + "  ".join(cells))
        return "\n".join(lines)
