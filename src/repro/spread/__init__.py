"""A Spread-like group communication toolkit layer.

The paper evaluates the protocol inside production Spread, whose value
comes from features layered *above* the ordering protocol (paper §I):
descriptive group names, many groups with different client sets,
multi-group multicast with cross-group ordering, open-group semantics (a
process need not join a group to send to it), message packing into
MTU-sized protocol packets, and fragmentation of large messages.

This package implements that layer on top of the ordering stack:

* :mod:`repro.spread.wire` — envelopes carried inside ordered messages
  (application data, group joins/leaves, packed containers, fragments).
* :mod:`repro.spread.groups` — a replicated group directory driven by
  the total order, so every daemon sees identical group views.
* :mod:`repro.spread.packing` — greedy packing of small messages into
  one protocol packet (Spread's built-in ability, §IV-A3).
* :mod:`repro.spread.fragmentation` — application-level fragmentation
  and reassembly of large messages.
* :mod:`repro.spread.daemon` / :mod:`repro.spread.client_api` — the
  daemon and client library speaking the group-aware IPC protocol.
"""

from repro.spread.wire import AppData, GroupJoin, GroupLeave, Fragment, Packed
from repro.spread.groups import GroupDirectory, SortedNameSet
from repro.spread.packing import Packer
from repro.spread.fragmentation import Fragmenter, FragmentReassembler
from repro.spread.daemon import SpreadDaemon
from repro.spread.client_api import (
    GroupMessage,
    GroupView,
    ShardedSpreadClient,
    SpreadClient,
)

__all__ = [
    "AppData",
    "GroupJoin",
    "GroupLeave",
    "Fragment",
    "Packed",
    "GroupDirectory",
    "SortedNameSet",
    "Packer",
    "Fragmenter",
    "FragmentReassembler",
    "SpreadDaemon",
    "ShardedSpreadClient",
    "SpreadClient",
    "GroupMessage",
    "GroupView",
]
