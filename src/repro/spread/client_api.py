"""Client library for the Spread-like daemon."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.messages import DeliveryService
from repro.runtime import ipc
from repro.runtime.ipc import Endpoint, EndpointSpec, TcpEndpoint, UnixEndpoint
from repro.util.errors import CodecError


@dataclass(frozen=True)
class GroupMessage:
    """An ordered message delivered to a group member."""

    groups: Tuple[str, ...]
    service: DeliveryService
    payload: bytes


@dataclass(frozen=True)
class GroupView:
    """A group membership view notification."""

    group: str
    members: Tuple[str, ...]


ClientEvent = Union[GroupMessage, GroupView]


class SpreadClient:
    """Connects to a Spread-like daemon at an
    :data:`~repro.runtime.ipc.Endpoint`.

    ``endpoint`` accepts a :class:`~repro.runtime.ipc.UnixEndpoint`, a
    :class:`~repro.runtime.ipc.TcpEndpoint`, a bare unix socket path, or
    a spec string (``unix://...`` / ``tcp://host:port``).  The
    pre-endpoint keywords ``socket_path=`` / ``tcp_address=`` still work
    but emit a :class:`DeprecationWarning`.

    Usage::

        client = SpreadClient(path, name="alice")
        await client.connect()
        await client.join("chat")
        client.multicast(["chat"], b"hello", DeliveryService.AGREED)
        event = await client.receive()
    """

    def __init__(
        self,
        endpoint: Optional[EndpointSpec] = None,
        name: str = "",
        *,
        socket_path: Optional[str] = None,
        tcp_address: Optional[Tuple[str, int]] = None,
    ) -> None:
        self.endpoint: Endpoint = ipc.resolve_endpoint(
            endpoint, socket_path, tcp_address, owner="SpreadClient"
        )
        self.private_name = name
        self.member_name: Optional[str] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def socket_path(self) -> Optional[str]:
        """Unix socket path, or None for TCP endpoints (legacy accessor)."""
        return self.endpoint.path if isinstance(self.endpoint, UnixEndpoint) else None

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """(host, port), or None for unix endpoints (legacy accessor)."""
        if isinstance(self.endpoint, TcpEndpoint):
            return (self.endpoint.host, self.endpoint.port)
        return None

    async def connect(self) -> str:
        """Connect and return the daemon-qualified member name."""
        self._reader, self._writer = await self.endpoint.open()
        self._writer.write(ipc.pack_hello(self.private_name))
        opcode, body = await ipc.read_frame(self._reader)
        if opcode != ipc.OP_WELCOME:
            raise CodecError(f"expected welcome, got opcode {opcode}")
        self.member_name = ipc.unpack_welcome(body)
        return self.member_name

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def _require(self) -> asyncio.StreamWriter:
        if self._writer is None:
            raise RuntimeError("client not connected")
        return self._writer

    async def join(self, group: str) -> None:
        self._require().write(ipc.pack_group_op(ipc.OP_JOIN, group))

    async def leave(self, group: str) -> None:
        self._require().write(ipc.pack_group_op(ipc.OP_LEAVE, group))

    def multicast(
        self,
        groups: List[str],
        payload: bytes,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """Send one message to every member of the listed groups.

        Open-group semantics: the caller need not be a member of any
        target group.
        """
        self._require().write(ipc.pack_groupcast(groups, service, payload))

    async def receive(self) -> ClientEvent:
        if self._reader is None:
            raise RuntimeError("client not connected")
        opcode, body = await ipc.read_frame(self._reader)
        if opcode == ipc.OP_GROUPCAST:
            groups, service, payload = ipc.unpack_groupcast(body)
            return GroupMessage(groups=tuple(groups), service=service, payload=payload)
        if opcode == ipc.OP_GROUP_VIEW:
            group, members = ipc.unpack_group_view(body)
            return GroupView(group=group, members=tuple(members))
        raise CodecError(f"unexpected daemon opcode {opcode}")

    async def receive_messages(self, count: int) -> List[GroupMessage]:
        out: List[GroupMessage] = []
        while len(out) < count:
            event = await self.receive()
            if isinstance(event, GroupMessage):
                out.append(event)
        return out

    async def wait_for_view(self, group: str, size: int, timeout: float = 10.0) -> GroupView:
        """Wait until a view for ``group`` with ``size`` members arrives."""

        async def _wait() -> GroupView:
            while True:
                event = await self.receive()
                if isinstance(event, GroupView) and event.group == group and len(event.members) == size:
                    return event

        return await asyncio.wait_for(_wait(), timeout)
