"""Client library for the Spread-like daemon.

:class:`SpreadClient` is the classic single-daemon client.  With the
multi-ring layer, group traffic may be sharded across several daemons
(one per ring); clients stay oblivious by either

* passing ``shard_map`` to a :class:`SpreadClient` and asking
  :meth:`SpreadClient.shard_of` which daemon owns a group, or
* using :class:`ShardedSpreadClient`, which holds one connection per
  shard, routes ``join``/``leave``/``multicast`` through the
  :class:`~repro.multiring.shard_map.ShardMap` transparently, and
  consumes deliveries in the deterministic round-robin merge order
  (docs/PROTOCOL.md §11).

The old single-daemon signature is unchanged.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.messages import DeliveryService
from repro.multiring.shard_map import ShardMap
from repro.runtime import ipc
from repro.runtime.ipc import Endpoint, EndpointSpec, TcpEndpoint, UnixEndpoint
from repro.util.errors import CodecError, ConfigurationError


@dataclass(frozen=True)
class GroupMessage:
    """An ordered message delivered to a group member."""

    groups: Tuple[str, ...]
    service: DeliveryService
    payload: bytes


@dataclass(frozen=True)
class GroupView:
    """A group membership view notification."""

    group: str
    members: Tuple[str, ...]


ClientEvent = Union[GroupMessage, GroupView]


class SpreadClient:
    """Connects to a Spread-like daemon at an
    :data:`~repro.runtime.ipc.Endpoint`.

    ``endpoint`` accepts a :class:`~repro.runtime.ipc.UnixEndpoint`, a
    :class:`~repro.runtime.ipc.TcpEndpoint`, a bare unix socket path, or
    a spec string (``unix://...`` / ``tcp://host:port``).  The
    pre-endpoint keywords ``socket_path=`` / ``tcp_address=`` still work
    but emit a :class:`DeprecationWarning`.

    Usage::

        client = SpreadClient(path, name="alice")
        await client.connect()
        await client.join("chat")
        client.multicast(["chat"], b"hello", DeliveryService.AGREED)
        event = await client.receive()
    """

    def __init__(
        self,
        endpoint: Optional[EndpointSpec] = None,
        name: str = "",
        *,
        socket_path: Optional[str] = None,
        tcp_address: Optional[Tuple[str, int]] = None,
        shard_map: Optional[ShardMap] = None,
    ) -> None:
        self.endpoint: Endpoint = ipc.resolve_endpoint(
            endpoint, socket_path, tcp_address, owner="SpreadClient"
        )
        self.private_name = name
        self.member_name: Optional[str] = None
        #: Optional group → ring map for sharded deployments; without
        #: one, every group lives on this client's single daemon.
        self.shard_map = shard_map
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def shard_of(self, group: str) -> int:
        """The ring (shard) that orders ``group``.

        Always ``0`` for an unsharded client — a single daemon is the
        one-ring case — so callers can ask unconditionally.
        """
        return 0 if self.shard_map is None else self.shard_map.shard_of(group)

    @property
    def socket_path(self) -> Optional[str]:
        """Unix socket path, or None for TCP endpoints (legacy accessor)."""
        return self.endpoint.path if isinstance(self.endpoint, UnixEndpoint) else None

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """(host, port), or None for unix endpoints (legacy accessor)."""
        if isinstance(self.endpoint, TcpEndpoint):
            return (self.endpoint.host, self.endpoint.port)
        return None

    async def connect(self) -> str:
        """Connect and return the daemon-qualified member name."""
        self._reader, self._writer = await self.endpoint.open()
        self._writer.write(ipc.pack_hello(self.private_name))
        opcode, body = await ipc.read_frame(self._reader)
        if opcode != ipc.OP_WELCOME:
            raise CodecError(f"expected welcome, got opcode {opcode}")
        self.member_name = ipc.unpack_welcome(body)
        return self.member_name

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def _require(self) -> asyncio.StreamWriter:
        if self._writer is None:
            raise RuntimeError("client not connected")
        return self._writer

    async def join(self, group: str) -> None:
        self._require().write(ipc.pack_group_op(ipc.OP_JOIN, group))

    async def leave(self, group: str) -> None:
        self._require().write(ipc.pack_group_op(ipc.OP_LEAVE, group))

    def multicast(
        self,
        groups: List[str],
        payload: bytes,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """Send one message to every member of the listed groups.

        Open-group semantics: the caller need not be a member of any
        target group.
        """
        self._require().write(ipc.pack_groupcast(groups, service, payload))

    async def receive(self) -> ClientEvent:
        if self._reader is None:
            raise RuntimeError("client not connected")
        opcode, body = await ipc.read_frame(self._reader)
        if opcode == ipc.OP_GROUPCAST:
            groups, service, payload = ipc.unpack_groupcast(body)
            return GroupMessage(groups=tuple(groups), service=service, payload=payload)
        if opcode == ipc.OP_GROUP_VIEW:
            group, members = ipc.unpack_group_view(body)
            return GroupView(group=group, members=tuple(members))
        raise CodecError(f"unexpected daemon opcode {opcode}")

    async def receive_messages(self, count: int) -> List[GroupMessage]:
        out: List[GroupMessage] = []
        while len(out) < count:
            event = await self.receive()
            if isinstance(event, GroupMessage):
                out.append(event)
        return out

    async def wait_for_view(self, group: str, size: int, timeout: float = 10.0) -> GroupView:
        """Wait until a view for ``group`` with ``size`` members arrives."""

        async def _wait() -> GroupView:
            while True:
                event = await self.receive()
                if isinstance(event, GroupView) and event.group == group and len(event.members) == size:
                    return event

        return await asyncio.wait_for(_wait(), timeout)


class ShardedSpreadClient:
    """One logical client across ``N`` sharded Spread daemons.

    Holds a :class:`SpreadClient` per ring and routes every group
    operation through the :class:`~repro.multiring.shard_map.ShardMap`,
    so application code keeps the familiar join/leave/multicast/receive
    surface while group traffic is ordered on independent rings:

    * ``join``/``leave`` go only to the daemon whose ring owns the
      group.
    * ``multicast`` partitions the target groups by ring and sends one
      groupcast per involved ring (a cross-shard multicast is therefore
      N independent ordered messages, not one atomic event — see
      docs/PROTOCOL.md §11 for what cross-shard ordering does and does
      not promise).
    * ``receive`` consumes ordered messages in the deterministic
      round-robin merge order over the per-ring delivery streams, so
      every sharded client subscribed to the same groups observes the
      same interleaving.  Views pass through without consuming the
      current ring's turn (they are per-ring metadata, not part of the
      merged order).

    For tests and embedding, pre-built per-shard clients can be
    injected via ``clients=``; otherwise one :class:`SpreadClient` is
    created per entry in ``endpoints``.
    """

    def __init__(
        self,
        endpoints: Optional[Sequence[EndpointSpec]] = None,
        name: str = "",
        *,
        shard_map: Optional[ShardMap] = None,
        clients: Optional[Sequence[SpreadClient]] = None,
    ) -> None:
        if clients is not None:
            self._clients: List[SpreadClient] = list(clients)
        elif endpoints is not None:
            self._clients = [SpreadClient(spec, name=name) for spec in endpoints]
        else:
            raise ConfigurationError(
                "ShardedSpreadClient needs endpoints= or clients="
            )
        if not self._clients:
            raise ConfigurationError("ShardedSpreadClient needs at least one shard")
        self.shard_map = (
            shard_map if shard_map is not None else ShardMap(len(self._clients))
        )
        if self.shard_map.num_rings != len(self._clients):
            raise ConfigurationError(
                f"shard map covers {self.shard_map.num_rings} rings but "
                f"{len(self._clients)} shard connections were given"
            )
        self.private_name = name
        self._turn = 0

    @property
    def num_shards(self) -> int:
        return len(self._clients)

    @property
    def member_names(self) -> Tuple[Optional[str], ...]:
        """Daemon-qualified member name on each shard (None until connected)."""
        return tuple(client.member_name for client in self._clients)

    def shard_of(self, group: str) -> int:
        """The ring (shard) that orders ``group``."""
        return self.shard_map.shard_of(group)

    def client_for(self, group: str) -> SpreadClient:
        """The per-shard client connected to the daemon owning ``group``."""
        return self._clients[self.shard_map.shard_of(group)]

    async def connect(self) -> Tuple[str, ...]:
        """Connect every shard; returns the per-shard member names."""
        return tuple([await client.connect() for client in self._clients])

    async def close(self) -> None:
        for client in self._clients:
            await client.close()

    async def join(self, group: str) -> None:
        await self.client_for(group).join(group)

    async def leave(self, group: str) -> None:
        await self.client_for(group).leave(group)

    def multicast(
        self,
        groups: List[str],
        payload: bytes,
        service: DeliveryService = DeliveryService.AGREED,
    ) -> None:
        """Send to every member of the listed groups, one send per ring.

        Groups are partitioned by owning ring; groups sharing a ring
        still travel in a single groupcast (delivered once per member,
        exactly like the single-daemon client).
        """
        for ring, ring_groups in self.shard_map.partition(groups).items():
            self._clients[ring].multicast(list(ring_groups), payload, service)

    async def receive(self) -> ClientEvent:
        """Next event in the deterministic cross-shard merge order.

        Blocks on the ring whose turn it is; a :class:`GroupMessage`
        advances the turn to the next ring, a :class:`GroupView` does
        not (views are not part of the merged total order).  With a
        single shard this degenerates to :meth:`SpreadClient.receive`.
        """
        event = await self._clients[self._turn].receive()
        if isinstance(event, GroupMessage):
            self._turn = (self._turn + 1) % len(self._clients)
        return event

    async def receive_messages(self, count: int) -> List[GroupMessage]:
        out: List[GroupMessage] = []
        while len(out) < count:
            event = await self.receive()
            if isinstance(event, GroupMessage):
                out.append(event)
        return out

    async def wait_for_view(self, group: str, size: int, timeout: float = 10.0) -> GroupView:
        """Wait on the owning shard for a ``group`` view of ``size`` members."""
        return await self.client_for(group).wait_for_view(group, size, timeout)
