"""The Spread-like daemon: groups, packing, fragmentation, multi-group
multicast over the ordering stack.

Architecture (paper §I): the client-daemon split provides a clean
separation between middleware and application, lets one set of daemons
serve several applications, and enables open-group semantics.  Every
group operation rides the total order, so all daemons apply membership
changes at the same point relative to data messages.
"""

from __future__ import annotations

import asyncio
import os
from typing import Dict, Optional, Set

from repro.core.messages import DataMessage, DeliveryService
from repro.evs.configuration import Configuration
from repro.runtime import ipc
from repro.runtime.backpressure import DEFAULT_CLIENT_WINDOW_BYTES, ClientSendQueue
from repro.runtime.node import RingNode
from repro.runtime.transport import PeerAddress
from repro.spread.fragmentation import Fragmenter, FragmentReassembler
from repro.spread.groups import GroupDirectory, qualify
from repro.spread.packing import Packer, unpack_payload
from repro.spread.wire import (
    AppData,
    Fragment,
    GroupJoin,
    GroupLeave,
    decode_envelope,
)
from repro.util.errors import CodecError


class _ClientSession:
    """One connected client, its bounded send queue, and joined groups."""

    def __init__(
        self,
        member_name: str,
        writer: asyncio.StreamWriter,
        window_bytes: int = DEFAULT_CLIENT_WINDOW_BYTES,
    ) -> None:
        self.member_name = member_name
        self.writer = writer
        self.queue = ClientSendQueue(writer, window_bytes)
        self.joined: Set[str] = set()


class SpreadDaemon:
    """A group-aware daemon on one server."""

    def __init__(
        self,
        pid: int,
        peers: Dict[int, PeerAddress],
        socket_path: str,
        accelerated: bool = True,
        pack_budget: int = 1350,
        tcp_port: Optional[int] = None,
        client_window_bytes: int = DEFAULT_CLIENT_WINDOW_BYTES,
        **node_kwargs,
    ) -> None:
        self.pid = pid
        self.socket_path = socket_path
        self.tcp_port = tcp_port
        self.client_window_bytes = client_window_bytes
        self.node = RingNode(pid=pid, peers=peers, accelerated=accelerated, **node_kwargs)
        self.node.on_deliver = self._ordered_delivery
        self.node.on_config = self._config_changed
        self.directory = GroupDirectory()
        self.packer = Packer(budget=pack_budget)
        self.fragmenter = Fragmenter(chunk_size=pack_budget)
        self.reassembler = FragmentReassembler()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[str, _ClientSession] = {}
        self._client_counter = 0
        self.messages_delivered_to_clients = 0
        self.clients_dropped_slow = 0

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        await self.node.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        if self.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._handle_client, host="127.0.0.1", port=self.tcp_port
            )

    async def stop(self) -> None:
        for server in (self._server, self._tcp_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = None
        self._tcp_server = None
        sessions = list(self._sessions.values())
        self._sessions.clear()
        for session in sessions:
            await session.queue.aclose()
        await self.node.stop()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[_ClientSession] = None
        try:
            opcode, body = await ipc.read_frame(reader)
            if opcode != ipc.OP_HELLO:
                raise CodecError("client must introduce itself first")
            self._client_counter += 1
            private = ipc.unpack_hello(body) or f"client{self._client_counter}"
            member_name = qualify(private, self.pid)
            if member_name in self._sessions:
                member_name = qualify(f"{private}.{self._client_counter}", self.pid)
            session = _ClientSession(member_name, writer, self.client_window_bytes)
            session.queue.start()
            self._sessions[member_name] = session
            session.queue.send(ipc.pack_welcome(member_name))
            while True:
                try:
                    opcode, body = await ipc.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    # A half-closed or reset connection: the client is
                    # gone (or was dropped for falling behind); clean up
                    # the session like a voluntary disconnect.
                    break
                self._handle_client_frame(session, opcode, body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # disconnect during the hello handshake
        finally:
            if session is not None:
                self._sessions.pop(session.member_name, None)
                for group in sorted(session.joined):
                    self._submit_envelope(
                        GroupLeave(member=session.member_name, group=group).encode(),
                        DeliveryService.AGREED,
                    )
                await session.queue.drain_and_close()
                if session.queue.dropped_slow:
                    self.clients_dropped_slow += 1
            else:
                writer.close()

    def _handle_client_frame(
        self, session: _ClientSession, opcode: int, body: bytes
    ) -> None:
        if opcode == ipc.OP_JOIN:
            group = ipc.unpack_group_op(body)
            session.joined.add(group)
            self._submit_envelope(
                GroupJoin(member=session.member_name, group=group).encode(),
                DeliveryService.AGREED,
            )
        elif opcode == ipc.OP_LEAVE:
            group = ipc.unpack_group_op(body)
            session.joined.discard(group)
            self._submit_envelope(
                GroupLeave(member=session.member_name, group=group).encode(),
                DeliveryService.AGREED,
            )
        elif opcode == ipc.OP_GROUPCAST:
            groups, service, payload = ipc.unpack_groupcast(body)
            envelope = AppData(
                sender=session.member_name, groups=tuple(groups), payload=payload
            ).encode()
            self._submit_envelope(envelope, service)
        else:
            raise CodecError(f"unexpected client opcode {opcode}")

    def _submit_envelope(self, envelope: bytes, service: DeliveryService) -> None:
        """Fragment if oversized, pack if small, then submit in order."""
        for piece in self.fragmenter.fragment(envelope):
            for packet in self.packer.add(piece):
                self.node.submit(payload=packet, service=service)
        # Flush eagerly: packing across client calls only pays off under
        # batching workloads; correctness requires order either way.
        for packet in self.packer.flush():
            self.node.submit(payload=packet, service=service)

    # ------------------------------------------------------------------
    # Ordered delivery side
    # ------------------------------------------------------------------

    def _ordered_delivery(self, message: DataMessage, config_id: int) -> None:
        for envelope_bytes in unpack_payload(message.payload):
            envelope = decode_envelope(envelope_bytes)
            if isinstance(envelope, Fragment):
                whole = self.reassembler.accept(message.pid, envelope)
                if whole is None:
                    continue
                envelope = decode_envelope(whole)
            self._apply_envelope(envelope, message)

    def _apply_envelope(self, envelope, message: DataMessage) -> None:
        if isinstance(envelope, AppData):
            self._deliver_app_data(envelope, message)
        elif isinstance(envelope, GroupJoin):
            self.directory.apply_join(envelope.member, envelope.group)
            self._notify_views()
        elif isinstance(envelope, GroupLeave):
            self.directory.apply_leave(envelope.member, envelope.group)
            self._notify_views()
        else:
            raise CodecError(f"unexpected inner envelope {type(envelope).__name__}")

    def _deliver_app_data(self, envelope: AppData, message: DataMessage) -> None:
        targets: Set[str] = set()
        for group in envelope.groups:
            targets.update(self.directory.members(group))
        frame = None
        for member in sorted(targets):
            session = self._sessions.get(member)
            if session is None:
                continue  # member lives at another daemon
            if frame is None:
                frame = ipc.pack_groupcast(
                    list(envelope.groups), message.service, envelope.payload
                )
            if session.queue.send(frame):
                self.messages_delivered_to_clients += 1

    def _config_changed(self, configuration: Configuration) -> None:
        if configuration.transitional:
            return
        self.directory.apply_configuration(configuration.members)
        self._notify_views()

    def _notify_views(self) -> None:
        for group in self.directory.take_dirty():
            members = list(self.directory.members(group))
            frame = ipc.pack_group_view(group, members)
            # Sorted so the write order to local sessions is the same on
            # every daemon and every run (set iteration is not).
            for member in sorted(set(members)):
                session = self._sessions.get(member)
                if session is not None:
                    session.queue.send(frame)
