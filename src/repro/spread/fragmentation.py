"""Application-level fragmentation of large messages.

Messages larger than the protocol-packet budget are split into ordered
fragments and reassembled at delivery.  Because fragments ride the total
order, a receiver sees every fragment of a message in index order, but
fragments from *different* senders may interleave, so reassembly is
keyed by (origin daemon, fragment id).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.spread.wire import Fragment, encode_fragment
from repro.util.errors import CodecError, ConfigurationError


class Fragmenter:
    """Splits oversized envelope bytes into Fragment envelopes."""

    def __init__(self, chunk_size: int = 1300) -> None:
        if chunk_size < 16:
            raise ConfigurationError(f"chunk_size too small: {chunk_size}")
        self.chunk_size = chunk_size
        self._ids = itertools.count(1)
        self.messages_fragmented = 0

    def needs_fragmentation(self, encoded: bytes) -> bool:
        return len(encoded) > self.chunk_size

    def fragment(self, encoded: bytes) -> List[bytes]:
        """Split one encoded envelope into fragment envelopes.

        Chunks are carved out through a ``memoryview``: each byte of the
        input is copied exactly once, into its fragment envelope, instead
        of once for the slice and again for the header concatenation.
        """
        if not self.needs_fragmentation(encoded):
            return [encoded]
        frag_id = next(self._ids)
        chunk_size = self.chunk_size
        total = -(-len(encoded) // chunk_size)
        self.messages_fragmented += 1
        view = memoryview(encoded)
        return [
            encode_fragment(
                frag_id,
                index,
                total,
                view[index * chunk_size : (index + 1) * chunk_size],
            )
            for index in range(total)
        ]


class FragmentReassembler:
    """Reassembles fragments back into the original envelope bytes."""

    def __init__(self) -> None:
        self._partial: Dict[Tuple[int, int], List[Optional[bytes]]] = {}
        self._missing: Dict[Tuple[int, int], int] = {}
        self.messages_reassembled = 0

    def accept(self, origin: int, fragment: Fragment) -> Optional[bytes]:
        """Feed one fragment; returns the whole envelope when complete."""
        if not 0 <= fragment.index < fragment.total:
            raise CodecError(
                f"fragment index {fragment.index} out of range (total {fragment.total})"
            )
        key = (origin, fragment.frag_id)
        slots = self._partial.get(key)
        if slots is None:
            slots = [None] * fragment.total
            self._partial[key] = slots
            self._missing[key] = fragment.total
        if len(slots) != fragment.total:
            raise CodecError("fragment total mismatch within one message")
        # A missing-slot counter replaces the all()-scan per fragment
        # (which made reassembling an n-fragment message O(n^2));
        # duplicate fragments overwrite their slot without recounting.
        if slots[fragment.index] is None:
            self._missing[key] -= 1
        slots[fragment.index] = fragment.chunk
        if self._missing[key] == 0:
            del self._partial[key]
            del self._missing[key]
            self.messages_reassembled += 1
            # join() performs the single final copy; the chunks were
            # never copied since decode.
            return b"".join(slots)  # type: ignore[arg-type]
        return None

    @property
    def partial_count(self) -> int:
        return len(self._partial)
